//! Unified metrics/trace plane for the cloudtrain stack.
//!
//! The paper's key evidence is time-breakdown instrumentation: Fig. 8
//! decomposes HiTopKComm into its four stages and Fig. 9 reports DataCache
//! tier hit rates. Before this crate the reproduction's counters were
//! scattered (`ScratchStats` in collectives, `FaultCounters` in simnet,
//! `MemStats` in datacache) with no single export surface. [`Registry`] is
//! that surface: every plane reports named **counters**, **gauges**, and
//! scoped **spans** into one registry, which exports a byte-stable JSONL
//! snapshot and a human-readable breakdown table.
//!
//! # Determinism
//!
//! Nothing in this crate reads a wall clock. Span timestamps are supplied
//! by the caller:
//!
//! * the performance plane (`cloudtrain-simnet`) charges spans from the
//!   simulator's **virtual time** (`NetSim::makespan`),
//! * the correctness plane (`cloudtrain-collectives`,
//!   `cloudtrain-compress`) charges spans from the registry's **logical
//!   clock** ([`Registry::advance`]), a monotone counter of deterministic
//!   work units (elements touched),
//! * the data plane (`cloudtrain-datacache`) charges the loader's modelled
//!   virtual seconds.
//!
//! Two runs of the same seeded workload therefore produce **byte-identical**
//! [`Registry::to_jsonl`] output — the same determinism bar the CI fault
//! gauntlet holds `timeline::event_log` to, and the property the gauntlet's
//! obs snapshot `cmp`s in CI.
//!
//! # JSONL schema
//!
//! One JSON object per line, counters first (sorted by name), then gauges
//! (sorted by name), then spans in open order:
//!
//! ```text
//! {"type":"counter","name":"<name>","value":<u64>}
//! {"type":"gauge","name":"<name>","value":<fixed-precision sci float>}
//! {"type":"span","name":"<name>","depth":<usize>,"start":<f>,"end":<f>}
//! ```
//!
//! Floats are rendered with the workspace-wide `{:.9e}` fixed-precision
//! convention so formatting can never introduce run-to-run drift.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

/// Handle to an open span, returned by [`Registry::span_open`] and consumed
/// by [`Registry::span_close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// One recorded (closed or still-open) span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span name, e.g. `"hitopk/intra reduce-scatter"`.
    pub name: String,
    /// Virtual time the span opened.
    pub start: f64,
    /// Virtual time the span closed (equals `start` while still open).
    pub end: f64,
    /// Nesting depth at open time (0 = top level).
    pub depth: usize,
}

impl Span {
    /// Duration of the span in virtual time units.
    pub fn seconds(&self) -> f64 {
        self.end - self.start
    }
}

/// A registry of named counters, gauges, and virtual-time spans.
///
/// Counters are monotone `u64` sums, gauges are last-write-wins `f64`
/// values, and spans are scoped timers whose timestamps the caller
/// supplies (see the crate docs for where each plane gets its clock).
///
/// # Examples
/// ```
/// use cloudtrain_obs::Registry;
///
/// let mut reg = Registry::new();
/// reg.counter_add("cache/hits", 3);
/// let id = reg.span_open("epoch", reg.now());
/// reg.advance(2.0);
/// let t = reg.now();
/// reg.span_close(id, t);
/// assert_eq!(reg.counter("cache/hits"), 3);
/// assert_eq!(reg.span_total("epoch"), 2.0);
/// // Byte-stable export: same inputs, same bytes — always.
/// assert_eq!(reg.to_jsonl(), reg.clone().to_jsonl());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    spans: Vec<Span>,
    depth: usize,
    clock: f64,
}

impl Registry {
    /// An empty registry with the logical clock at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Sets a gauge to `value` (last write wins).
    ///
    /// # Panics
    /// Panics on non-finite values — they would poison the byte-stable
    /// export (`NaN != NaN` breaks replay comparison).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        assert!(value.is_finite(), "gauge {name}: non-finite value {value}");
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Current reading of the logical clock.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Advances the logical clock by `units` (deterministic work units or
    /// virtual seconds — the caller picks the dimension and keeps it
    /// consistent within a plane).
    ///
    /// # Panics
    /// Panics if `units` is negative or non-finite (the clock is monotone).
    pub fn advance(&mut self, units: f64) {
        assert!(
            units.is_finite() && units >= 0.0,
            "advance: clock must move monotonically (got {units})"
        );
        self.clock += units;
    }

    /// Moves the logical clock forward to `t` (no-op if `t` is behind —
    /// the clock never rewinds, so interleaved planes stay monotone).
    pub fn sync_clock(&mut self, t: f64) {
        if t.is_finite() && t > self.clock {
            self.clock = t;
        }
    }

    /// Opens a span at virtual time `start`; nested opens record their
    /// depth. Close it with [`Registry::span_close`].
    pub fn span_open(&mut self, name: &str, start: f64) -> SpanId {
        let id = SpanId(self.spans.len());
        self.spans.push(Span {
            name: name.to_string(),
            start,
            end: start,
            depth: self.depth,
        });
        self.depth += 1;
        id
    }

    /// Closes a span at virtual time `end`.
    ///
    /// # Panics
    /// Panics if `end` precedes the span's start (spans never run
    /// backwards in virtual time).
    pub fn span_close(&mut self, id: SpanId, end: f64) {
        let span = &mut self.spans[id.0];
        assert!(
            end >= span.start,
            "span {}: end {end} precedes start {}",
            span.name,
            span.start
        );
        span.end = end;
        self.depth = self.depth.saturating_sub(1);
    }

    /// All recorded spans, in open order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total virtual time across all spans with this name.
    pub fn span_total(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(Span::seconds)
            .sum()
    }

    /// Folds another registry into this one: counters add, gauges
    /// last-write-win (other's values), spans append in order, and the
    /// logical clock jumps to the max. Used to merge a plane's detached
    /// registry (e.g. the one a `NetSim` carried) into the run-level one.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        self.spans.extend(other.spans.iter().cloned());
        self.clock = self.clock.max(other.clock);
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.spans.is_empty()
    }

    /// Serialises the registry as byte-stable JSONL (see the crate docs
    /// for the schema). Two identical registries always produce identical
    /// bytes: keys are BTreeMap-sorted, spans keep open order, and floats
    /// use fixed-precision scientific notation.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}\n",
                escape(name)
            ));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}\n",
                escape(name),
                fmt_f64(*v)
            ));
        }
        for s in &self.spans {
            out.push_str(&format!(
                "{{\"type\":\"span\",\"name\":\"{}\",\"depth\":{},\"start\":{},\"end\":{}}}\n",
                escape(&s.name),
                s.depth,
                fmt_f64(s.start),
                fmt_f64(s.end)
            ));
        }
        out
    }

    /// Renders a per-span-name breakdown table (the Fig. 8-style view):
    /// one row per distinct span name in first-appearance order, with
    /// invocation count, total virtual time, and the share of the summed
    /// top-level (depth 0) time.
    pub fn breakdown_table(&self) -> String {
        let mut names: Vec<&str> = Vec::new();
        for s in &self.spans {
            if !names.contains(&s.name.as_str()) {
                names.push(&s.name);
            }
        }
        let top_total: f64 = self
            .spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(Span::seconds)
            .sum();
        let mut out = format!(
            "{:<34} {:>7} {:>15} {:>7}\n",
            "span", "count", "total", "share"
        );
        for name in names {
            let count = self.spans.iter().filter(|s| s.name == name).count();
            let total = self.span_total(name);
            let share = if top_total > 0.0 {
                100.0 * total / top_total
            } else {
                0.0
            };
            out.push_str(&format!(
                "{name:<34} {count:>7} {total:>15.9e} {share:>6.1}%\n"
            ));
        }
        out
    }
}

/// Fixed-precision float rendering shared by every export path (the same
/// `{:.9e}` convention `timeline::event_log` established).
pub fn fmt_f64(v: f64) -> String {
    format!("{v:.9e}")
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nearest-rank percentile of `samples` (`q` in `[0, 1]`, e.g. `0.99` for
/// p99): the smallest sample such that at least `q · N` samples are `<=`
/// it. Deterministic — no interpolation, so the result is always one of
/// the inputs and byte-stable under [`fmt_f64`]. The tail-latency gate
/// (`BENCH_tails.json`) is built on this.
///
/// # Panics
/// Panics on an empty sample set or a `q` outside `[0, 1]`.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted_percentile(&sorted, q)
}

/// Nearest-rank lookup into samples already sorted ascending by
/// [`f64::total_cmp`] — the single rank computation behind [`percentile`]
/// and [`gauge_percentiles`], so a multi-rank query over one sorted copy
/// is byte-identical to independent `percentile` calls.
fn sorted_percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    assert!((0.0..=1.0).contains(&q), "percentile rank outside [0, 1]");
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// Records the p50/p95/p99 nearest-rank percentiles of `samples` as gauges
/// `<prefix>/p50`, `<prefix>/p95`, `<prefix>/p99` (plus `<prefix>/count`)
/// — the first-class export surface of the tail gauntlet. Sorts the
/// samples once and indexes all three ranks out of the sorted copy.
pub fn gauge_percentiles(reg: &mut Registry, prefix: &str, samples: &[f64]) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    for (tag, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        reg.gauge_set(&format!("{prefix}/{tag}"), sorted_percentile(&sorted, q));
    }
    reg.gauge_set(&format!("{prefix}/count"), samples.len() as f64);
}

/// Opens a span on an *optional* registry — the idiom for hot paths that
/// take `Option<&mut Registry>` so the uninstrumented call sites pay
/// nothing. Pair with [`span_end`].
pub fn span_begin(obs: &mut Option<&mut Registry>, name: &str) -> Option<SpanId> {
    obs.as_deref_mut().map(|reg| {
        let t = reg.now();
        reg.span_open(name, t)
    })
}

/// Closes a span opened by [`span_begin`], first advancing the logical
/// clock by `units` of deterministic work.
pub fn span_end(obs: &mut Option<&mut Registry>, id: Option<SpanId>, units: f64) {
    if let (Some(reg), Some(id)) = (obs.as_deref_mut(), id) {
        reg.advance(units);
        let t = reg.now();
        reg.span_close(id, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 0.5), 3.0);
        assert_eq!(percentile(&s, 0.95), 5.0);
        assert_eq!(percentile(&s, 1.0), 5.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        // Nearest-rank returns an actual sample, never an interpolation.
        let many: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&many, 0.50), 50.0);
        assert_eq!(percentile(&many, 0.95), 95.0);
        assert_eq!(percentile(&many, 0.99), 99.0);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn percentile_of_nothing_panics() {
        let _ = percentile(&[], 0.5);
    }

    #[test]
    fn gauge_percentiles_exports_the_three_quantiles() {
        let mut r = Registry::new();
        let s: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        gauge_percentiles(&mut r, "tails/dense", &s);
        assert_eq!(r.gauge("tails/dense/p50"), Some(10.0));
        assert_eq!(r.gauge("tails/dense/p95"), Some(19.0));
        assert_eq!(r.gauge("tails/dense/p99"), Some(20.0));
        assert_eq!(r.gauge("tails/dense/count"), Some(20.0));
    }

    /// The single-sort fast path must not change a byte of the export:
    /// gauges recorded by `gauge_percentiles` produce JSONL identical to a
    /// registry fed three independent `percentile` calls, including on
    /// duplicate-laden, negative, and sub-normal-ish samples.
    #[test]
    fn gauge_percentiles_jsonl_matches_independent_percentile_calls() {
        let samples: Vec<f64> = (0..97)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h % 2001) as f64 - 1000.0) * 1e-3
            })
            .chain([0.25, 0.25, 0.25, -0.0, 0.0])
            .collect();
        let mut fast = Registry::new();
        gauge_percentiles(&mut fast, "tails/x", &samples);
        let mut slow = Registry::new();
        for (tag, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            slow.gauge_set(&format!("tails/x/{tag}"), percentile(&samples, q));
        }
        slow.gauge_set("tails/x/count", samples.len() as f64);
        assert_eq!(fast.to_jsonl(), slow.to_jsonl());
    }

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = Registry::new();
        assert_eq!(r.counter("x"), 0);
        r.counter_add("x", 2);
        r.counter_add("x", 3);
        assert_eq!(r.counter("x"), 5);
        assert_eq!(r.counters().collect::<Vec<_>>(), vec![("x", 5)]);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut r = Registry::new();
        assert_eq!(r.gauge("g"), None);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        assert_eq!(r.gauge("g"), Some(2.5));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_gauge_panics() {
        Registry::new().gauge_set("g", f64::NAN);
    }

    #[test]
    fn spans_nest_and_total() {
        let mut r = Registry::new();
        let outer = r.span_open("outer", r.now());
        r.advance(1.0);
        let inner = r.span_open("inner", r.now());
        r.advance(2.0);
        let t = r.now();
        r.span_close(inner, t);
        r.advance(0.5);
        let t = r.now();
        r.span_close(outer, t);
        assert_eq!(r.spans()[0].depth, 0);
        assert_eq!(r.spans()[1].depth, 1);
        assert_eq!(r.span_total("outer"), 3.5);
        assert_eq!(r.span_total("inner"), 2.0);
    }

    #[test]
    fn sync_clock_never_rewinds() {
        let mut r = Registry::new();
        r.sync_clock(5.0);
        assert_eq!(r.now(), 5.0);
        r.sync_clock(2.0);
        assert_eq!(r.now(), 5.0);
    }

    #[test]
    fn jsonl_is_byte_stable_and_ordered() {
        let build = |flip: bool| {
            let mut r = Registry::new();
            // Insert in both orders: the export must not care.
            if flip {
                r.counter_add("b", 2);
                r.counter_add("a", 1);
            } else {
                r.counter_add("a", 1);
                r.counter_add("b", 2);
            }
            r.gauge_set("g", 0.25);
            let id = r.span_open("s", 1.0);
            r.span_close(id, 2.5);
            r.to_jsonl()
        };
        assert_eq!(build(false), build(true));
        let text = build(false);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"counter\",\"name\":\"a\",\"value\":1}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"gauge\",\"name\":\"g\",\"value\":2.500000000e-1}"
        );
        assert_eq!(
            lines[3],
            "{\"type\":\"span\",\"name\":\"s\",\"depth\":0,\"start\":1.000000000e0,\"end\":2.500000000e0}"
        );
    }

    #[test]
    fn jsonl_escapes_names() {
        let mut r = Registry::new();
        r.counter_add("a\"b\\c", 1);
        assert!(r.to_jsonl().contains("a\\\"b\\\\c"));
    }

    #[test]
    fn merge_folds_everything() {
        let mut a = Registry::new();
        a.counter_add("c", 1);
        a.gauge_set("g", 1.0);
        let id = a.span_open("s", 0.0);
        a.span_close(id, 1.0);
        a.advance(1.0);

        let mut b = Registry::new();
        b.counter_add("c", 2);
        b.gauge_set("g", 9.0);
        let id = b.span_open("t", 0.0);
        b.span_close(id, 4.0);
        b.advance(4.0);

        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.spans().len(), 2);
        assert_eq!(a.now(), 4.0);
    }

    #[test]
    fn breakdown_table_shares_sum_to_100() {
        let mut r = Registry::new();
        for (name, dur) in [("p1", 1.0), ("p2", 3.0)] {
            let id = r.span_open(name, r.now());
            r.advance(dur);
            let t = r.now();
            r.span_close(id, t);
        }
        let table = r.breakdown_table();
        assert!(table.contains("p1"));
        assert!(table.contains("25.0%"));
        assert!(table.contains("75.0%"));
    }

    #[test]
    fn optional_registry_helpers_are_noops_when_absent() {
        let mut none: Option<&mut Registry> = None;
        let id = span_begin(&mut none, "x");
        assert!(id.is_none());
        span_end(&mut none, id, 10.0);

        let mut reg = Registry::new();
        let mut some = Some(&mut reg);
        let id = span_begin(&mut some, "x");
        span_end(&mut some, id, 10.0);
        assert_eq!(reg.span_total("x"), 10.0);
    }
}
