//! Property-based tests for the DNN framework.

use cloudtrain_dnn::data::{SyntheticImages, SyntheticSeq};
use cloudtrain_dnn::loss::{softmax_cross_entropy, top_k_accuracy};
use cloudtrain_dnn::math::{matmul, matmul_bt, softmax_rows, transpose};
use cloudtrain_dnn::model::{Input, Model};
use cloudtrain_dnn::models::mlp;
use cloudtrain_tensor::init;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cross-entropy gradient rows always sum to ~0 (softmax simplex
    /// tangent) and the loss is non-negative.
    #[test]
    fn loss_gradient_rows_sum_to_zero(
        batch in 1usize..8,
        classes in 2usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = init::rng_from_seed(seed);
        let logits = init::uniform_tensor(batch * classes, -5.0, 5.0, &mut rng);
        let mut logits = logits;
        logits.reshape(vec![batch, classes]).unwrap();
        let labels: Vec<u32> = (0..batch as u32).map(|i| i % classes as u32).collect();
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        prop_assert!(loss >= 0.0);
        for row in grad.as_slice().chunks(classes) {
            prop_assert!(row.iter().sum::<f32>().abs() < 1e-5);
        }
    }

    /// Top-k accuracy is monotone non-decreasing in k and reaches 1 at
    /// k = classes.
    #[test]
    fn topk_accuracy_is_monotone(
        batch in 1usize..8,
        classes in 2usize..10,
        seed in 0u64..1000,
    ) {
        let mut rng = init::rng_from_seed(seed);
        let mut logits = init::uniform_tensor(batch * classes, -3.0, 3.0, &mut rng);
        logits.reshape(vec![batch, classes]).unwrap();
        let labels: Vec<u32> = (0..batch as u32).map(|i| i % classes as u32).collect();
        let mut prev = 0.0;
        for k in 1..=classes {
            let acc = top_k_accuracy(&logits, &labels, k);
            prop_assert!(acc >= prev - 1e-6);
            prev = acc;
        }
        prop_assert_eq!(prev, 1.0);
    }

    /// Model parameter save/restore is lossless: two replicas with synced
    /// parameters produce identical logits.
    #[test]
    fn param_roundtrip_syncs_replicas(seed in 0u64..500, other in 500u64..1000) {
        let mut a = mlp(12, 8, 3, &mut init::rng_from_seed(seed));
        let mut b = mlp(12, 8, 3, &mut init::rng_from_seed(other));
        let d = a.param_count();
        let mut buf = vec![0.0; d];
        a.read_params(&mut buf);
        b.write_params(&buf);
        let mut rng = init::rng_from_seed(seed ^ other);
        let mut x = init::uniform_tensor(2 * 12, -1.0, 1.0, &mut rng);
        x.reshape(vec![2, 12]).unwrap();
        let ya = a.forward(&Input::Dense(x.clone()), false);
        let yb = b.forward(&Input::Dense(x), false);
        prop_assert_eq!(ya, yb);
    }

    /// (A·B)ᵀ = Bᵀ·Aᵀ over random shapes.
    #[test]
    fn matmul_transpose_identity(
        m in 1usize..6,
        k in 1usize..6,
        n in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = init::rng_from_seed(seed);
        let a = init::uniform_tensor(m * k, -2.0, 2.0, &mut rng).into_vec();
        let b = init::uniform_tensor(k * n, -2.0, 2.0, &mut rng).into_vec();
        let mut ab = vec![0.0; m * n];
        matmul(&a, &b, &mut ab, m, k, n);
        // Bᵀ·Aᵀ via matmul_bt: (Bᵀ)(Aᵀ) where Bᵀ is n×k, Aᵀ is k×m.
        let bt = transpose(&b, k, n);
        let mut btat = vec![0.0; n * m];
        matmul_bt(&bt, &transpose(&transpose(&a, m, k), k, m), &mut btat, n, k, m);
        let abt = transpose(&ab, m, n);
        for (x, y) in abt.iter().zip(&btat) {
            prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    /// Softmax rows are probability vectors and order-preserving.
    #[test]
    fn softmax_rows_are_distributions(
        rows in 1usize..6,
        n in 2usize..10,
        seed in 0u64..1000,
    ) {
        let mut rng = init::rng_from_seed(seed);
        let x = init::uniform_tensor(rows * n, -10.0, 10.0, &mut rng).into_vec();
        let mut p = x.clone();
        softmax_rows(&mut p, rows, n);
        for (xr, pr) in x.chunks(n).zip(p.chunks(n)) {
            prop_assert!((pr.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            prop_assert!(pr.iter().all(|v| *v > 0.0));
            // Order preserved.
            for i in 0..n {
                for j in 0..n {
                    if xr[i] > xr[j] {
                        prop_assert!(pr[i] >= pr[j]);
                    }
                }
            }
        }
    }

    /// Synthetic datasets are deterministic and label-consistent.
    #[test]
    fn datasets_are_deterministic(idx in 0u64..10_000, seed in 0u64..100) {
        let img = SyntheticImages::new(7, 3, 8, 0.4, seed);
        let (xa, la) = img.sample(idx);
        let (xb, lb) = img.sample(idx);
        prop_assert_eq!(&xa, &xb);
        prop_assert_eq!(la, lb);
        prop_assert_eq!(la, (idx % 7) as u32);

        let seq = SyntheticSeq::new(4, 32, 12, seed);
        let (ta, ya) = seq.sample(idx);
        let (tb, yb) = seq.sample(idx);
        prop_assert_eq!(&ta, &tb);
        prop_assert_eq!(ya, yb);
        prop_assert!(ta.contains(&ya));
    }

    /// One gradient step on a fixed batch reduces the loss for any seed
    /// (the descent direction property, end to end through the MLP).
    #[test]
    fn gradient_step_descends(seed in 0u64..50) {
        let mut m = mlp(8, 16, 3, &mut init::rng_from_seed(seed));
        let d = m.param_count();
        let mut rng = init::rng_from_seed(seed + 777);
        let mut x = init::uniform_tensor(4 * 8, -1.0, 1.0, &mut rng);
        x.reshape(vec![4, 8]).unwrap();
        let input = Input::Dense(x);
        let labels = vec![0u32, 1, 2, 0];

        let y = m.forward(&input, true);
        let (l0, dy) = softmax_cross_entropy(&y, &labels);
        m.backward(dy);
        let mut params = vec![0.0; d];
        let mut grads = vec![0.0; d];
        m.read_params(&mut params);
        m.read_grads(&mut grads);
        cloudtrain_tensor::ops::axpy(-0.01, &grads, &mut params);
        m.write_params(&params);
        let y = m.forward(&input, true);
        let (l1, _) = softmax_cross_entropy(&y, &labels);
        prop_assert!(l1 <= l0 + 1e-6, "loss rose: {l0} -> {l1}");
    }
}
