//! Deterministic synthetic datasets (the ImageNet / WMT17 substitutes).
//!
//! Convergence experiments need a task where (a) gradients are real, (b)
//! accuracy is measurable, and (c) every worker can generate its shard
//! reproducibly without a 150 GB download. Both generators are
//! class-conditional with controllable noise, so models genuinely have to
//! learn the class structure.

use cloudtrain_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::model::Input;

/// A labelled batch ready for [`crate::Model::forward`].
#[derive(Debug, Clone)]
pub struct Batch {
    /// Model input.
    pub input: Input,
    /// Per-row labels.
    pub labels: Vec<u32>,
}

/// Class-conditional image generator: each class has a fixed prototype
/// image; samples are the prototype plus Gaussian noise, deterministic in
/// `(seed, sample_index)`.
#[derive(Debug, Clone)]
pub struct SyntheticImages {
    prototypes: Vec<Vec<f32>>,
    classes: usize,
    channels: usize,
    res: usize,
    noise: f32,
    seed: u64,
}

impl SyntheticImages {
    /// Creates a generator for `classes` classes of `channels × res × res`
    /// images with the given noise level (higher = harder task).
    pub fn new(classes: usize, channels: usize, res: usize, noise: f32, seed: u64) -> Self {
        let dim = channels * res * res;
        let mut rng = StdRng::seed_from_u64(seed);
        let prototypes = (0..classes)
            .map(|_| init::uniform_tensor(dim, -1.0, 1.0, &mut rng).into_vec())
            .collect();
        Self {
            prototypes,
            classes,
            channels,
            res,
            noise,
            seed,
        }
    }

    /// Per-sample input dimension.
    pub fn dim(&self) -> usize {
        self.channels * self.res * self.res
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Generates the sample with global index `idx` (deterministic).
    pub fn sample(&self, idx: u64) -> (Vec<f32>, u32) {
        let label = (idx % self.classes as u64) as u32;
        let mut rng = StdRng::seed_from_u64(self.seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut x = self.prototypes[label as usize].clone();
        let mut noise = vec![0.0; x.len()];
        init::fill_normal(&mut noise, 0.0, self.noise, &mut rng);
        for (v, n) in x.iter_mut().zip(&noise) {
            *v += n;
        }
        (x, label)
    }

    /// Builds the batch of samples `[start, start + batch)`.
    pub fn batch(&self, start: u64, batch: usize) -> Batch {
        let dim = self.dim();
        let mut data = Vec::with_capacity(batch * dim);
        let mut labels = Vec::with_capacity(batch);
        for i in 0..batch {
            let (x, y) = self.sample(start + i as u64);
            data.extend_from_slice(&x);
            labels.push(y);
        }
        let tensor = Tensor::from_vec(data, vec![batch, self.channels, self.res, self.res])
            .expect("batch shape");
        Batch {
            input: Input::Dense(tensor),
            labels,
        }
    }

    /// Builds a batch from explicit sample indices (for sharded sampling).
    pub fn batch_from_ids(&self, ids: &[u64]) -> Batch {
        let dim = self.dim();
        let mut data = Vec::with_capacity(ids.len() * dim);
        let mut labels = Vec::with_capacity(ids.len());
        for &id in ids {
            let (x, y) = self.sample(id);
            data.extend_from_slice(&x);
            labels.push(y);
        }
        let tensor = Tensor::from_vec(data, vec![ids.len(), self.channels, self.res, self.res])
            .expect("batch shape");
        Batch {
            input: Input::Dense(tensor),
            labels,
        }
    }
}

/// Class-conditional token sequences: each class has a set of "marker"
/// tokens; a sample is mostly noise tokens with the class markers planted
/// at random positions. The model must learn to spot the markers.
#[derive(Debug, Clone)]
pub struct SyntheticSeq {
    classes: usize,
    vocab: usize,
    seq: usize,
    markers_per_class: usize,
    seed: u64,
}

impl SyntheticSeq {
    /// Creates a generator over a `vocab`-token vocabulary and length-`seq`
    /// sequences.
    ///
    /// # Panics
    /// Panics unless `vocab >= 2 * classes` (markers must be distinct from
    /// noise space).
    pub fn new(classes: usize, vocab: usize, seq: usize, seed: u64) -> Self {
        assert!(vocab >= 2 * classes, "SyntheticSeq: vocab too small");
        Self {
            classes,
            vocab,
            seq,
            markers_per_class: 3,
            seed,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Generates sample `idx`: `(token ids, label)`.
    pub fn sample(&self, idx: u64) -> (Vec<u32>, u32) {
        let label = (idx % self.classes as u64) as u32;
        let mut rng = StdRng::seed_from_u64(self.seed ^ idx.wrapping_mul(0xD1B5_4A32_D192_ED03));
        // Noise tokens come from the upper vocab range; the class marker is
        // token `label` (lower range), planted at a few random positions.
        let mut ids: Vec<u32> = (0..self.seq)
            .map(|_| rng.random_range(self.classes as u32..self.vocab as u32))
            .collect();
        for _ in 0..self.markers_per_class {
            let pos = rng.random_range(0..self.seq);
            ids[pos] = label;
        }
        (ids, label)
    }

    /// Builds the batch of samples `[start, start + batch)`.
    pub fn batch(&self, start: u64, batch: usize) -> Batch {
        let mut ids = Vec::with_capacity(batch * self.seq);
        let mut labels = Vec::with_capacity(batch);
        for i in 0..batch {
            let (x, y) = self.sample(start + i as u64);
            ids.extend_from_slice(&x);
            labels.push(y);
        }
        Batch {
            input: Input::Tokens {
                ids,
                seq_len: self.seq,
            },
            labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_are_deterministic_and_class_structured() {
        let g = SyntheticImages::new(4, 3, 8, 0.3, 7);
        let (a, la) = g.sample(10);
        let (b, lb) = g.sample(10);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        // Same class, different samples: correlated but not identical.
        let (c, lc) = g.sample(14);
        assert_eq!(lc, 10 % 4);
        assert_ne!(a, c);
        // Samples of the same class are closer than cross-class samples.
        let dist =
            |x: &[f32], y: &[f32]| -> f32 { x.iter().zip(y).map(|(a, b)| (a - b).powi(2)).sum() };
        let (d, _) = g.sample(11); // different class
        assert!(dist(&a, &c) < dist(&a, &d));
    }

    #[test]
    fn image_batch_shapes() {
        let g = SyntheticImages::new(10, 3, 8, 0.2, 1);
        let b = g.batch(0, 5);
        let Input::Dense(t) = &b.input else { panic!() };
        assert_eq!(t.shape(), &[5, 3, 8, 8]);
        assert_eq!(b.labels, vec![0, 1, 2, 3, 4]);
        let b2 = g.batch_from_ids(&[3, 3, 7]);
        assert_eq!(b2.labels, vec![3, 3, 7]);
    }

    #[test]
    fn sequences_contain_their_class_marker() {
        let g = SyntheticSeq::new(4, 32, 16, 5);
        for idx in 0..20 {
            let (ids, label) = g.sample(idx);
            assert_eq!(ids.len(), 16);
            assert!(
                ids.contains(&label),
                "sample {idx} lacks marker {label}: {ids:?}"
            );
            assert!(ids.iter().all(|&t| (t as usize) < 32));
        }
    }

    #[test]
    fn seq_batch_shapes() {
        let g = SyntheticSeq::new(2, 16, 8, 3);
        let b = g.batch(4, 3);
        let Input::Tokens { ids, seq_len } = &b.input else {
            panic!()
        };
        assert_eq!(ids.len(), 24);
        assert_eq!(*seq_len, 8);
        assert_eq!(b.labels, vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "vocab too small")]
    fn tiny_vocab_panics() {
        SyntheticSeq::new(10, 12, 8, 0);
    }
}
