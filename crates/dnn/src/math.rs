//! Dense matrix kernels for the layer implementations.
//!
//! Row-major throughout. `matmul` uses a k-inner ikj loop order, which the
//! compiler vectorises over the contiguous `b` and `c` rows — fast enough
//! for the scaled-down models the convergence experiments train.

/// `c = a @ b` where `a` is `m×k`, `b` is `k×n`, `c` is `m×n` (overwritten).
///
/// # Panics
/// Panics if the buffer lengths do not match the given dimensions.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul: a has wrong length");
    assert_eq!(b.len(), k * n, "matmul: b has wrong length");
    assert_eq!(c.len(), m * n, "matmul: c has wrong length");
    c.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// `c = a @ b^T` where `a` is `m×k`, `b` is `n×k`, `c` is `m×n`.
///
/// # Panics
/// Panics on length mismatches.
pub fn matmul_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul_bt: a has wrong length");
    assert_eq!(b.len(), n * k, "matmul_bt: b has wrong length");
    assert_eq!(c.len(), m * n, "matmul_bt: c has wrong length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            c[i * n + j] = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
        }
    }
}

/// `c += a^T @ b` where `a` is `m×k`, `b` is `m×n`, `c` is `k×n`
/// (accumulating — the natural form for weight-gradient accumulation).
///
/// # Panics
/// Panics on length mismatches.
pub fn matmul_at_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul_at_acc: a has wrong length");
    assert_eq!(b.len(), m * n, "matmul_at_acc: b has wrong length");
    assert_eq!(c.len(), k * n, "matmul_at_acc: c has wrong length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let b_row = &b[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            let c_row = &mut c[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// Row-wise softmax in place over an `m×n` matrix (numerically stable).
///
/// # Panics
/// Panics if the buffer length is not `m * n`.
pub fn softmax_rows(x: &mut [f32], m: usize, n: usize) {
    assert_eq!(x.len(), m * n, "softmax_rows: wrong length");
    for row in x.chunks_mut(n) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Transposes an `m×n` matrix into a new `n×m` buffer.
pub fn transpose(x: &[f32], m: usize, n: usize) -> Vec<f32> {
    assert_eq!(x.len(), m * n, "transpose: wrong length");
    let mut out = vec![0.0; n * m];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = x[i * n + j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2x2() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        matmul(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a: Vec<f32> = (0..6).map(|i| i as f32).collect(); // 2x3
        let b: Vec<f32> = (0..12).map(|i| (i as f32).sin()).collect(); // 4x3
        let mut c1 = vec![0.0; 8];
        matmul_bt(&a, &b, &mut c1, 2, 3, 4);
        let bt = transpose(&b, 4, 3); // 3x4
        let mut c2 = vec![0.0; 8];
        matmul(&a, &bt, &mut c2, 2, 3, 4);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_at_acc_matches_explicit_transpose() {
        let a: Vec<f32> = (0..6).map(|i| i as f32 * 0.3).collect(); // 2x3 (m=2,k=3)
        let b: Vec<f32> = (0..8).map(|i| i as f32 * 0.7).collect(); // 2x4 (m=2,n=4)
        let mut c1 = vec![1.0; 12]; // accumulates onto existing
        matmul_at_acc(&a, &b, &mut c1, 2, 3, 4);
        let at = transpose(&a, 2, 3); // 3x2
        let mut c2 = vec![0.0; 12];
        matmul(&at, &b, &mut c2, 3, 2, 4);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - (y + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_normalises() {
        let mut x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut x, 2, 3);
        for row in x.chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|v| *v > 0.0));
        }
        // Larger logits get larger probabilities.
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut x = vec![1000.0, 1001.0];
        softmax_rows(&mut x, 1, 2);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[0] + x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transpose_roundtrip() {
        let x: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let t = transpose(&x, 3, 4);
        let tt = transpose(&t, 4, 3);
        assert_eq!(x, tt);
    }
}
