//! The layer abstraction and parameter storage.

use cloudtrain_tensor::Tensor;

/// One learnable parameter tensor with its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter values (flat, row-major).
    pub value: Vec<f32>,
    /// Gradient accumulator, same length as `value`.
    pub grad: Vec<f32>,
    /// Human-readable name (e.g. `"conv1.weight"`), used in diagnostics.
    pub name: String,
}

impl Param {
    /// Creates a parameter from initial values with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Vec<f32>) -> Self {
        let grad = vec![0.0; value.len()];
        Self {
            value,
            grad,
            name: name.into(),
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// A differentiable layer with manual backpropagation.
///
/// `forward` consumes the input and caches whatever it needs for
/// `backward`; `backward` consumes the output gradient and returns the
/// input gradient, accumulating parameter gradients along the way.
/// Layers are stateful between a forward and its matching backward —
/// callers must pair them 1:1.
pub trait Layer: Send {
    /// Forward pass. `train` selects training behaviour (batch statistics,
    /// dropout) where applicable.
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor;

    /// Backward pass: output gradient in, input gradient out.
    fn backward(&mut self, dy: Tensor) -> Tensor;

    /// Visits the layer's parameters in a stable order.
    fn visit_params(&self, f: &mut dyn FnMut(&Param));

    /// Visits the layer's parameters mutably, same order as
    /// [`Layer::visit_params`].
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Short layer kind name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Total scalar parameter count of a layer.
pub fn param_count(layer: &dyn Layer) -> usize {
    let mut n = 0;
    layer.visit_params(&mut |p| n += p.len());
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_basics() {
        let mut p = Param::new("w", vec![1.0, 2.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        p.grad = vec![3.0, 4.0];
        p.zero_grad();
        assert_eq!(p.grad, vec![0.0, 0.0]);
        assert_eq!(p.name, "w");
    }
}
