//! Fully connected layer.

use cloudtrain_tensor::{init, Tensor};
use rand::rngs::StdRng;

use crate::layer::{Layer, Param};
use crate::math::{matmul_at_acc, matmul_bt};

/// `y = x W^T + b` over a batch: `x` is `[batch, in]`, `W` is `[out, in]`,
/// `y` is `[batch, out]`.
#[derive(Debug)]
pub struct Linear {
    w: Param,
    b: Param,
    in_dim: usize,
    out_dim: usize,
    cached_x: Option<Tensor>,
}

impl Linear {
    /// Creates a Xavier-initialised layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let mut w = vec![0.0; out_dim * in_dim];
        init::fill_xavier(&mut w, in_dim, out_dim, rng);
        Self {
            w: Param::new(format!("linear{in_dim}x{out_dim}.weight"), w),
            b: Param::new(format!("linear{in_dim}x{out_dim}.bias"), vec![0.0; out_dim]),
            in_dim,
            out_dim,
            cached_x: None,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: Tensor, _train: bool) -> Tensor {
        let batch = x.len() / self.in_dim;
        assert_eq!(x.len(), batch * self.in_dim, "Linear: ragged input");
        let mut y = Tensor::zeros(vec![batch, self.out_dim]);
        matmul_bt(
            x.as_slice(),
            &self.w.value,
            y.as_mut_slice(),
            batch,
            self.in_dim,
            self.out_dim,
        );
        for row in y.as_mut_slice().chunks_mut(self.out_dim) {
            for (v, b) in row.iter_mut().zip(&self.b.value) {
                *v += b;
            }
        }
        self.cached_x = Some(x);
        y
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let x = self
            .cached_x
            .take()
            .expect("Linear: backward before forward");
        let batch = dy.len() / self.out_dim;

        // dW += dy^T @ x  (shape [out, in]).
        matmul_at_acc(
            dy.as_slice(),
            x.as_slice(),
            &mut self.w.grad,
            batch,
            self.out_dim,
            self.in_dim,
        );
        // db += column sums of dy.
        for row in dy.as_slice().chunks(self.out_dim) {
            for (g, v) in self.b.grad.iter_mut().zip(row) {
                *g += v;
            }
        }
        // dx = dy @ W  (shape [batch, in]).
        let mut dx = Tensor::zeros(vec![batch, self.in_dim]);
        crate::math::matmul(
            dy.as_slice(),
            &self.w.value,
            dx.as_mut_slice(),
            batch,
            self.out_dim,
            self.in_dim,
        );
        dx
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        f(&self.b);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::param_count;

    fn layer(in_d: usize, out_d: usize) -> Linear {
        let mut rng = init::rng_from_seed(1);
        Linear::new(in_d, out_d, &mut rng)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut l = layer(3, 2);
        // Zero weights, known bias -> output equals bias.
        l.w.value.iter_mut().for_each(|v| *v = 0.0);
        l.b.value = vec![1.5, -0.5];
        let x = Tensor::from_vec(vec![1.0; 6], vec![2, 3]).unwrap();
        let y = l.forward(x, true);
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.as_slice(), &[1.5, -0.5, 1.5, -0.5]);
    }

    #[test]
    fn gradcheck_weights_and_input() {
        // Finite-difference check of dL/dw and dL/dx with L = sum(y^2)/2.
        let mut l = layer(4, 3);
        let x =
            Tensor::from_vec(vec![0.3, -0.2, 0.5, 0.1, -0.4, 0.2, 0.0, 0.7], vec![2, 4]).unwrap();
        let y = l.forward(x.clone(), true);
        let dy = y.clone(); // dL/dy = y for L = sum(y^2)/2
        let dx = l.backward(dy);

        let eps = 1e-3;
        let loss = |l: &mut Linear, x: &Tensor| -> f32 {
            let y = l.forward(x.clone(), true);
            l.cached_x = None; // discard cache from probe
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };

        // Check a few weight coordinates.
        for idx in [0usize, 5, 11] {
            let analytic = l.w.grad[idx];
            l.w.value[idx] += eps;
            let lp = loss(&mut l, &x);
            l.w.value[idx] -= 2.0 * eps;
            let lm = loss(&mut l, &x);
            l.w.value[idx] += eps;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "w[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
        // Check an input coordinate.
        let mut xp = x.clone();
        xp.as_mut_slice()[2] += eps;
        let lp = loss(&mut l, &xp);
        xp.as_mut_slice()[2] -= 2.0 * eps;
        let lm = loss(&mut l, &xp);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (dx.as_slice()[2] - numeric).abs() < 1e-2,
            "dx[2]: {} vs {}",
            dx.as_slice()[2],
            numeric
        );
    }

    #[test]
    fn param_count_matches() {
        let l = layer(10, 7);
        assert_eq!(param_count(&l), 10 * 7 + 7);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut l = layer(2, 2);
        l.backward(Tensor::zeros_1d(4));
    }
}
