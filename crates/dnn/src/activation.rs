//! Activation and regularisation layers.

use cloudtrain_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::layer::{Layer, Param};

/// Rectified linear unit, `y = max(x, 0)`.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, mut x: Tensor, _train: bool) -> Tensor {
        self.mask.clear();
        self.mask.reserve(x.len());
        for v in x.as_mut_slice() {
            let pass = *v > 0.0;
            self.mask.push(pass);
            if !pass {
                *v = 0.0;
            }
        }
        x
    }

    fn backward(&mut self, mut dy: Tensor) -> Tensor {
        assert_eq!(dy.len(), self.mask.len(), "Relu: backward shape mismatch");
        for (g, &pass) in dy.as_mut_slice().iter_mut().zip(&self.mask) {
            if !pass {
                *g = 0.0;
            }
        }
        dy
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "relu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec_1d(vec![-1.0, 0.0, 2.0]);
        let y = r.forward(x, true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let _ = r.forward(Tensor::from_vec_1d(vec![-1.0, 0.5, 2.0]), true);
        let dx = r.backward(Tensor::from_vec_1d(vec![10.0, 10.0, 10.0]));
        assert_eq!(dx.as_slice(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn zero_input_has_zero_gradient() {
        // Subgradient convention: ReLU'(0) = 0.
        let mut r = Relu::new();
        let _ = r.forward(Tensor::from_vec_1d(vec![0.0]), true);
        let dx = r.backward(Tensor::from_vec_1d(vec![5.0]));
        assert_eq!(dx.as_slice(), &[0.0]);
    }
}

/// Gaussian error linear unit (tanh approximation), the Transformer's
/// standard activation.
#[derive(Debug, Default)]
pub struct Gelu {
    cached_x: Vec<f32>,
}

impl Gelu {
    /// Creates a GELU layer.
    pub fn new() -> Self {
        Self::default()
    }

    fn gelu(x: f32) -> f32 {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
    }

    fn dgelu(x: f32) -> f32 {
        const C: f32 = 0.797_884_6;
        let u = C * (x + 0.044715 * x * x * x);
        let t = u.tanh();
        let du = C * (1.0 + 3.0 * 0.044715 * x * x);
        0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
    }
}

impl Layer for Gelu {
    fn forward(&mut self, mut x: Tensor, _train: bool) -> Tensor {
        self.cached_x = x.as_slice().to_vec();
        for v in x.as_mut_slice() {
            *v = Self::gelu(*v);
        }
        x
    }

    fn backward(&mut self, mut dy: Tensor) -> Tensor {
        assert_eq!(
            dy.len(),
            self.cached_x.len(),
            "Gelu: backward shape mismatch"
        );
        for (g, &x) in dy.as_mut_slice().iter_mut().zip(&self.cached_x) {
            *g *= Self::dgelu(x);
        }
        dy
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "gelu"
    }
}

/// Inverted dropout: scales surviving activations by `1/(1-p)` in
/// training mode and is the identity in evaluation mode.
#[derive(Debug)]
pub struct Dropout {
    /// Drop probability.
    pub p: f32,
    rng: StdRng,
    mask: Vec<bool>,
}

impl Dropout {
    /// Creates dropout with probability `p` and a deterministic seed.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "Dropout: p must be in [0, 1)");
        Self {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: Vec::new(),
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, mut x: Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            // Identity: record a pass-through mask for a paired backward.
            self.mask = vec![true; x.len()];
            return x;
        }
        let scale = 1.0 / (1.0 - self.p);
        self.mask.clear();
        self.mask.reserve(x.len());
        for v in x.as_mut_slice() {
            let keep = self.rng.random::<f32>() >= self.p;
            self.mask.push(keep);
            *v = if keep { *v * scale } else { 0.0 };
        }
        x
    }

    fn backward(&mut self, mut dy: Tensor) -> Tensor {
        assert_eq!(
            dy.len(),
            self.mask.len(),
            "Dropout: backward shape mismatch"
        );
        let scale = 1.0 / (1.0 - self.p);
        for (g, &keep) in dy.as_mut_slice().iter_mut().zip(&self.mask) {
            *g = if keep { *g * scale } else { 0.0 };
        }
        dy
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod gelu_dropout_tests {
    use super::*;

    #[test]
    fn gelu_matches_known_values() {
        // gelu(0) = 0; gelu(x) -> x for large x; gelu(-large) -> 0.
        let mut g = Gelu::new();
        let y = g.forward(Tensor::from_vec_1d(vec![0.0, 5.0, -5.0, 1.0]), true);
        assert_eq!(y.as_slice()[0], 0.0);
        assert!((y.as_slice()[1] - 5.0).abs() < 1e-3);
        assert!(y.as_slice()[2].abs() < 1e-3);
        assert!((y.as_slice()[3] - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn gelu_gradcheck() {
        let mut g = Gelu::new();
        let xs = [-2.0f32, -0.5, 0.0, 0.3, 1.7];
        let y = g.forward(Tensor::from_vec_1d(xs.to_vec()), true);
        let dx = g.backward(y.clone()); // L = sum(y^2)/2
        let eps = 1e-3;
        for (i, &x) in xs.iter().enumerate() {
            let lp = Gelu::gelu(x + eps).powi(2) / 2.0;
            let lm = Gelu::gelu(x - eps).powi(2) / 2.0;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.as_slice()[i] - numeric).abs() < 1e-2,
                "x={x}: {} vs {numeric}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec_1d(vec![1.0, 2.0, 3.0]);
        let y = d.forward(x.clone(), false);
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2);
        let n = 100_000;
        let x = Tensor::from_vec_1d(vec![1.0; n]);
        let y = d.forward(x, true);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        // Dropped fraction near p.
        let dropped = y.as_slice().iter().filter(|v| **v == 0.0).count() as f32 / n as f32;
        assert!((dropped - 0.3).abs() < 0.02, "dropped {dropped}");
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let y = d.forward(Tensor::from_vec_1d(vec![1.0; 64]), true);
        let dx = d.backward(Tensor::from_vec_1d(vec![1.0; 64]));
        // Gradient flows exactly where activations survived.
        for (yv, gv) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
            if *yv != 0.0 {
                assert_eq!(*gv, 2.0); // 1/(1-0.5)
            }
        }
    }

    #[test]
    #[should_panic(expected = "p must be")]
    fn invalid_probability_panics() {
        Dropout::new(1.0, 0);
    }
}
