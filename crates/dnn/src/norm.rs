//! Normalisation layers: per-channel batch norm (for the CNNs) and
//! per-position layer norm (for the Transformer).

use cloudtrain_tensor::Tensor;

use crate::layer::{Layer, Param};

const EPS: f32 = 1e-5;

/// Batch normalisation over `[b, c, h, w]`, normalising each channel
/// across the batch and spatial positions. Keeps running statistics for
/// evaluation mode.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    channels: usize,
    // Backward cache.
    xhat: Vec<f32>,
    inv_std: Vec<f32>,
    in_shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` channels.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Param::new(format!("bn{channels}.gamma"), vec![1.0; channels]),
            beta: Param::new(format!("bn{channels}.beta"), vec![0.0; channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            channels,
            xhat: Vec::new(),
            inv_std: Vec::new(),
            in_shape: Vec::new(),
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, mut x: Tensor, train: bool) -> Tensor {
        let s = x.shape().to_vec();
        assert_eq!(s.len(), 4, "BatchNorm2d: expected [b,c,h,w]");
        let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert_eq!(c, self.channels, "BatchNorm2d: channel mismatch");
        let plane = h * w;
        let count = (b * plane) as f32;

        self.inv_std = vec![0.0; c];
        let mut means = vec![0.0f32; c];
        if train {
            for (ch, mean) in means.iter_mut().enumerate() {
                let mut sum = 0.0;
                for bi in 0..b {
                    let base = (bi * c + ch) * plane;
                    sum += x.as_slice()[base..base + plane].iter().sum::<f32>();
                }
                *mean = sum / count;
            }
            for (ch, &mean) in means.iter().enumerate() {
                let mut var = 0.0;
                for bi in 0..b {
                    let base = (bi * c + ch) * plane;
                    var += x.as_slice()[base..base + plane]
                        .iter()
                        .map(|v| (v - mean).powi(2))
                        .sum::<f32>();
                }
                let var = var / count;
                self.inv_std[ch] = 1.0 / (var + EPS).sqrt();
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
            }
        } else {
            for (ch, mean) in means.iter_mut().enumerate() {
                *mean = self.running_mean[ch];
                self.inv_std[ch] = 1.0 / (self.running_var[ch] + EPS).sqrt();
            }
        }

        self.xhat = vec![0.0; x.len()];
        for bi in 0..b {
            for (ch, &mean) in means.iter().enumerate() {
                let base = (bi * c + ch) * plane;
                let (g, bta) = (self.gamma.value[ch], self.beta.value[ch]);
                for i in base..base + plane {
                    let xh = (x.as_slice()[i] - mean) * self.inv_std[ch];
                    self.xhat[i] = xh;
                    x.as_mut_slice()[i] = g * xh + bta;
                }
            }
        }
        self.in_shape = s;
        x
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let (b, c, h, w) = (
            self.in_shape[0],
            self.in_shape[1],
            self.in_shape[2],
            self.in_shape[3],
        );
        let plane = h * w;
        let count = (b * plane) as f32;
        let mut dx = Tensor::zeros(self.in_shape.clone());

        for ch in 0..c {
            // Accumulate the channel sums needed by the batch-norm backward
            // formula: dxhat, sum(dxhat), sum(dxhat * xhat).
            let mut sum_dxh = 0.0f32;
            let mut sum_dxh_xh = 0.0f32;
            let g = self.gamma.value[ch];
            for bi in 0..b {
                let base = (bi * c + ch) * plane;
                for i in base..base + plane {
                    let dxh = dy.as_slice()[i] * g;
                    sum_dxh += dxh;
                    sum_dxh_xh += dxh * self.xhat[i];
                    self.gamma.grad[ch] += dy.as_slice()[i] * self.xhat[i];
                    self.beta.grad[ch] += dy.as_slice()[i];
                }
            }
            let inv_std = self.inv_std[ch];
            for bi in 0..b {
                let base = (bi * c + ch) * plane;
                for i in base..base + plane {
                    let dxh = dy.as_slice()[i] * g;
                    dx.as_mut_slice()[i] =
                        inv_std / count * (count * dxh - sum_dxh - self.xhat[i] * sum_dxh_xh);
                }
            }
        }
        dx
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }
}

/// Layer normalisation over the last dimension of `[rows, dim]`.
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    dim: usize,
    xhat: Vec<f32>,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a layer-norm over feature dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Param::new(format!("ln{dim}.gamma"), vec![1.0; dim]),
            beta: Param::new(format!("ln{dim}.beta"), vec![0.0; dim]),
            dim,
            xhat: Vec::new(),
            inv_std: Vec::new(),
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, mut x: Tensor, _train: bool) -> Tensor {
        let d = self.dim;
        assert_eq!(x.len() % d, 0, "LayerNorm: ragged input");
        let rows = x.len() / d;
        self.xhat = vec![0.0; x.len()];
        self.inv_std = vec![0.0; rows];
        for (r, row) in x.as_mut_slice().chunks_mut(d).enumerate() {
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + EPS).sqrt();
            self.inv_std[r] = inv_std;
            for (i, v) in row.iter_mut().enumerate() {
                let xh = (*v - mean) * inv_std;
                self.xhat[r * d + i] = xh;
                *v = self.gamma.value[i] * xh + self.beta.value[i];
            }
        }
        x
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let d = self.dim;
        let rows = dy.len() / d;
        let mut dx = Tensor::zeros(dy.shape().to_vec());
        for r in 0..rows {
            let dy_row = &dy.as_slice()[r * d..(r + 1) * d];
            let xh_row = &self.xhat[r * d..(r + 1) * d];
            let mut sum_dxh = 0.0;
            let mut sum_dxh_xh = 0.0;
            for i in 0..d {
                let dxh = dy_row[i] * self.gamma.value[i];
                sum_dxh += dxh;
                sum_dxh_xh += dxh * xh_row[i];
                self.gamma.grad[i] += dy_row[i] * xh_row[i];
                self.beta.grad[i] += dy_row[i];
            }
            let inv_std = self.inv_std[r];
            let dx_row = &mut dx.as_mut_slice()[r * d..(r + 1) * d];
            for i in 0..d {
                let dxh = dy_row[i] * self.gamma.value[i];
                dx_row[i] =
                    inv_std / d as f32 * (d as f32 * dxh - sum_dxh - xh_row[i] * sum_dxh_xh);
            }
        }
        dx
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "layernorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtrain_tensor::init;

    #[test]
    fn batchnorm_normalises_channels_in_train_mode() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = init::rng_from_seed(1);
        let mut x = init::normal_tensor(4 * 2 * 3 * 3, 5.0, 2.0, &mut rng);
        x.reshape(vec![4, 2, 3, 3]).unwrap();
        let y = bn.forward(x, true);
        // Per-channel mean ~0, var ~1 after normalisation.
        for ch in 0..2 {
            let mut vals = Vec::new();
            for bi in 0..4 {
                let base = (bi * 2 + ch) * 9;
                vals.extend_from_slice(&y.as_slice()[base..base + 9]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let mut rng = init::rng_from_seed(2);
        // A few training steps to build running stats.
        for _ in 0..50 {
            let mut x = init::normal_tensor(8 * 9, 3.0, 1.5, &mut rng);
            x.reshape(vec![8, 1, 3, 3]).unwrap();
            let _ = bn.forward(x, true);
        }
        // In eval mode, an input at the running mean maps near beta (0).
        let x = Tensor::full(vec![1, 1, 3, 3], 3.0);
        let y = bn.forward(x, false);
        assert!(
            y.as_slice().iter().all(|v| v.abs() < 0.2),
            "{:?}",
            y.as_slice()
        );
    }

    #[test]
    fn batchnorm_gradcheck() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = init::rng_from_seed(3);
        let mut x = init::uniform_tensor(2 * 2 * 2 * 2, -1.0, 1.0, &mut rng);
        x.reshape(vec![2, 2, 2, 2]).unwrap();
        let y = bn.forward(x.clone(), true);
        let dx = bn.backward(y); // L = sum(y^2)/2

        let eps = 1e-3;
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            // Fresh running stats don't matter for the loss value itself.
            let y = bn.forward(x.clone(), true);
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        for idx in [0usize, 5, 9] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let lp = loss(&mut bn, &xp);
            xp.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = loss(&mut bn, &xp);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.as_slice()[idx] - numeric).abs() < 0.05 * numeric.abs().max(0.5),
                "dx[{idx}]: {} vs {numeric}",
                dx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn layernorm_rows_are_normalised() {
        let mut ln = LayerNorm::new(8);
        let mut rng = init::rng_from_seed(4);
        let mut x = init::normal_tensor(3 * 8, -2.0, 3.0, &mut rng);
        x.reshape(vec![3, 8]).unwrap();
        let y = ln.forward(x, true);
        for row in y.as_slice().chunks(8) {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layernorm_gradcheck() {
        let mut ln = LayerNorm::new(4);
        let mut rng = init::rng_from_seed(5);
        let mut x = init::uniform_tensor(8, -1.0, 1.0, &mut rng);
        x.reshape(vec![2, 4]).unwrap();
        let y = ln.forward(x.clone(), true);
        let dx = ln.backward(y);

        let eps = 1e-3;
        let loss = |ln: &mut LayerNorm, x: &Tensor| -> f32 {
            let y = ln.forward(x.clone(), true);
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        for idx in 0..8 {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let lp = loss(&mut ln, &xp);
            xp.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = loss(&mut ln, &xp);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.as_slice()[idx] - numeric).abs() < 0.05 * numeric.abs().max(0.5),
                "dx[{idx}]: {} vs {numeric}",
                dx.as_slice()[idx]
            );
        }
    }
}
