//! 2-D convolution and pooling over `[batch, channels, h, w]` tensors.
//!
//! Two interchangeable convolution paths: direct loops (the verifiable
//! reference, checked by finite differences) and an im2col + matmul
//! lowering ([`Conv2d::fast`]) with better cache behaviour on wide layers
//! — equivalence between the two is asserted by tests.

use cloudtrain_tensor::{init, Tensor};
use rand::rngs::StdRng;

use crate::layer::{Layer, Param};
use crate::math::{matmul, matmul_at_acc};

/// Unrolls one image `[c, h, w]` into columns `[c*k*k, oh*ow]` for a
/// k×k same-padded convolution with the given stride — the classic
/// im2col lowering that turns convolution into one big matmul.
pub fn im2col(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
) -> (Vec<f32>, usize, usize) {
    let pad = k / 2;
    let oh = h.div_ceil(stride);
    let ow = w.div_ceil(stride);
    let rows = c * k * k;
    let cols_n = oh * ow;
    let mut cols = vec![0.0; rows * cols_n];
    for ic in 0..c {
        let plane = &x[ic * h * w..(ic + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ic * k + ky) * k + kx;
                let dst = &mut cols[row * cols_n..(row + 1) * cols_n];
                for oy in 0..oh {
                    let iy = oy * stride + ky;
                    if iy < pad || iy - pad >= h {
                        continue;
                    }
                    let iy = iy - pad;
                    for ox in 0..ow {
                        let ix = ox * stride + kx;
                        if ix < pad || ix - pad >= w {
                            continue;
                        }
                        dst[oy * ow + ox] = plane[iy * w + (ix - pad)];
                    }
                }
            }
        }
    }
    (cols, oh, ow)
}

/// Scatters column gradients back into an image gradient (the adjoint of
/// [`im2col`]): `dx[c, h, w] += fold(dcols)`.
pub fn col2im_acc(
    dcols: &[f32],
    dx: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
) {
    let pad = k / 2;
    let oh = h.div_ceil(stride);
    let ow = w.div_ceil(stride);
    let cols_n = oh * ow;
    for ic in 0..c {
        let plane = &mut dx[ic * h * w..(ic + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ic * k + ky) * k + kx;
                let src = &dcols[row * cols_n..(row + 1) * cols_n];
                for oy in 0..oh {
                    let iy = oy * stride + ky;
                    if iy < pad || iy - pad >= h {
                        continue;
                    }
                    let iy = iy - pad;
                    for ox in 0..ow {
                        let ix = ox * stride + kx;
                        if ix < pad || ix - pad >= w {
                            continue;
                        }
                        plane[iy * w + (ix - pad)] += src[oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// 3×3-style 2-D convolution with "same" padding and stride 1 or 2.
#[derive(Debug)]
pub struct Conv2d {
    w: Param, // [out_c, in_c, k, k]
    b: Param, // [out_c]
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    /// Lower to im2col + matmul instead of direct loops.
    fast: bool,
    cached_x: Option<Tensor>,
    cached_cols: Vec<Vec<f32>>,
}

impl Conv2d {
    /// Creates a He-initialised convolution.
    ///
    /// # Panics
    /// Panics if `k` is even (same-padding needs odd kernels) or
    /// `stride == 0`.
    pub fn new(in_c: usize, out_c: usize, k: usize, stride: usize, rng: &mut StdRng) -> Self {
        assert!(k % 2 == 1, "Conv2d: kernel must be odd for same padding");
        assert!(stride > 0, "Conv2d: stride must be positive");
        let mut w = vec![0.0; out_c * in_c * k * k];
        init::fill_he(&mut w, in_c * k * k, rng);
        Self {
            w: Param::new(format!("conv{in_c}x{out_c}k{k}.weight"), w),
            b: Param::new(format!("conv{in_c}x{out_c}k{k}.bias"), vec![0.0; out_c]),
            in_c,
            out_c,
            k,
            stride,
            fast: false,
            cached_x: None,
            cached_cols: Vec::new(),
        }
    }

    /// Switches to the im2col + matmul lowering (identical results, better
    /// cache behaviour on wider layers).
    pub fn fast(mut self) -> Self {
        self.fast = true;
        self
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h.div_ceil(self.stride), w.div_ceil(self.stride))
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: Tensor, _train: bool) -> Tensor {
        let (b, c, h, w) = unpack4(&x);
        assert_eq!(c, self.in_c, "Conv2d: channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        if self.fast {
            // im2col lowering: y[bi] = W @ cols(x[bi]) + bias.
            let mut y = Tensor::zeros(vec![b, self.out_c, oh, ow]);
            self.cached_cols.clear();
            let ck2 = self.in_c * self.k * self.k;
            for bi in 0..b {
                let (cols, coh, cow) = im2col(
                    &x.as_slice()[bi * c * h * w..(bi + 1) * c * h * w],
                    c,
                    h,
                    w,
                    self.k,
                    self.stride,
                );
                debug_assert_eq!((coh, cow), (oh, ow));
                let out = &mut y.as_mut_slice()
                    [bi * self.out_c * oh * ow..(bi + 1) * self.out_c * oh * ow];
                matmul(&self.w.value, &cols, out, self.out_c, ck2, oh * ow);
                for (oc, plane) in out.chunks_mut(oh * ow).enumerate() {
                    let bias = self.b.value[oc];
                    plane.iter_mut().for_each(|v| *v += bias);
                }
                self.cached_cols.push(cols);
            }
            self.cached_x = Some(x);
            return y;
        }
        let pad = self.k / 2;
        let mut y = Tensor::zeros(vec![b, self.out_c, oh, ow]);
        let xs = x.as_slice();
        let ys = y.as_mut_slice();
        for bi in 0..b {
            for oc in 0..self.out_c {
                let bias = self.b.value[oc];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let cy = oy * self.stride;
                        let cx = ox * self.stride;
                        let mut acc = bias;
                        for ic in 0..self.in_c {
                            let x_plane = &xs[(bi * c + ic) * h * w..];
                            let w_plane =
                                &self.w.value[((oc * self.in_c + ic) * self.k) * self.k..];
                            for ky in 0..self.k {
                                let iy = cy + ky;
                                if iy < pad || iy - pad >= h {
                                    continue;
                                }
                                let iy = iy - pad;
                                for kx in 0..self.k {
                                    let ix = cx + kx;
                                    if ix < pad || ix - pad >= w {
                                        continue;
                                    }
                                    let ix = ix - pad;
                                    acc += x_plane[iy * w + ix] * w_plane[ky * self.k + kx];
                                }
                            }
                        }
                        ys[((bi * self.out_c + oc) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        self.cached_x = Some(x);
        y
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let x = self
            .cached_x
            .take()
            .expect("Conv2d: backward before forward");
        let (b, c, h, w) = unpack4(&x);
        let (oh, ow) = self.out_hw(h, w);
        if self.fast {
            let ck2 = self.in_c * self.k * self.k;
            let mut dx = Tensor::zeros(vec![b, c, h, w]);
            for bi in 0..b {
                let dy_b =
                    &dy.as_slice()[bi * self.out_c * oh * ow..(bi + 1) * self.out_c * oh * ow];
                let cols = &self.cached_cols[bi];
                // dW += dY @ colsᵀ  (out_c × ck2). matmul_at_acc computes
                // aᵀ·b for a: m×k — use a = dY viewed as (out_c rows) via
                // transpose trick: dW[oc, r] = Σ_cols dy[oc, col] cols[r, col].
                for oc in 0..self.out_c {
                    let dy_row = &dy_b[oc * oh * ow..(oc + 1) * oh * ow];
                    self.b.grad[oc] += dy_row.iter().sum::<f32>();
                    let wg = &mut self.w.grad[oc * ck2..(oc + 1) * ck2];
                    for r in 0..ck2 {
                        let col_row = &cols[r * oh * ow..(r + 1) * oh * ow];
                        wg[r] += dy_row.iter().zip(col_row).map(|(a, b)| a * b).sum::<f32>();
                    }
                }
                // dcols = Wᵀ @ dY  (ck2 × oh*ow), then fold back to dx.
                let mut dcols = vec![0.0; ck2 * oh * ow];
                matmul_at_acc(&self.w.value, dy_b, &mut dcols, self.out_c, ck2, oh * ow);
                col2im_acc(
                    &dcols,
                    &mut dx.as_mut_slice()[bi * c * h * w..(bi + 1) * c * h * w],
                    c,
                    h,
                    w,
                    self.k,
                    self.stride,
                );
            }
            self.cached_cols.clear();
            return dx;
        }
        let pad = self.k / 2;
        let mut dx = Tensor::zeros(vec![b, c, h, w]);
        let xs = x.as_slice();
        let dys = dy.as_slice();
        let dxs = dx.as_mut_slice();
        for bi in 0..b {
            for oc in 0..self.out_c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = dys[((bi * self.out_c + oc) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        self.b.grad[oc] += g;
                        let cy = oy * self.stride;
                        let cx = ox * self.stride;
                        for ic in 0..self.in_c {
                            let x_plane = &xs[(bi * c + ic) * h * w..];
                            let dx_plane = &mut dxs[(bi * c + ic) * h * w..];
                            let w_base = (oc * self.in_c + ic) * self.k * self.k;
                            for ky in 0..self.k {
                                let iy = cy + ky;
                                if iy < pad || iy - pad >= h {
                                    continue;
                                }
                                let iy = iy - pad;
                                for kx in 0..self.k {
                                    let ix = cx + kx;
                                    if ix < pad || ix - pad >= w {
                                        continue;
                                    }
                                    let ix = ix - pad;
                                    self.w.grad[w_base + ky * self.k + kx] +=
                                        g * x_plane[iy * w + ix];
                                    dx_plane[iy * w + ix] +=
                                        g * self.w.value[w_base + ky * self.k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        f(&self.b);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

/// 2×2 max pooling with stride 2.
#[derive(Debug, Default)]
pub struct MaxPool2 {
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool2 {
    /// Creates a 2×2 max-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, x: Tensor, _train: bool) -> Tensor {
        let (b, c, h, w) = unpack4(&x);
        assert!(h % 2 == 0 && w % 2 == 0, "MaxPool2: odd input size");
        let (oh, ow) = (h / 2, w / 2);
        let mut y = Tensor::zeros(vec![b, c, oh, ow]);
        self.argmax.clear();
        self.argmax.reserve(y.len());
        let xs = x.as_slice();
        let ys = y.as_mut_slice();
        for plane in 0..b * c {
            let xp = &xs[plane * h * w..(plane + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let idx = (oy * 2 + dy) * w + ox * 2 + dx;
                            if xp[idx] > best {
                                best = xp[idx];
                                best_idx = plane * h * w + idx;
                            }
                        }
                    }
                    ys[(plane * oh + oy) * ow + ox] = best;
                    self.argmax.push(best_idx);
                }
            }
        }
        self.in_shape = vec![b, c, h, w];
        y
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let mut dx = Tensor::zeros(self.in_shape.clone());
        let dxs = dx.as_mut_slice();
        for (&src, &g) in self.argmax.iter().zip(dy.as_slice()) {
            dxs[src] += g;
        }
        dx
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "maxpool2"
    }
}

/// Global average pooling: `[b, c, h, w] -> [b, c]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    in_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: Tensor, _train: bool) -> Tensor {
        let (b, c, h, w) = unpack4(&x);
        let mut y = Tensor::zeros(vec![b, c]);
        let inv = 1.0 / (h * w) as f32;
        for (plane, out) in x.as_slice().chunks(h * w).zip(y.as_mut_slice().iter_mut()) {
            *out = plane.iter().sum::<f32>() * inv;
        }
        self.in_shape = vec![b, c, h, w];
        y
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let (h, w) = (self.in_shape[2], self.in_shape[3]);
        let mut dx = Tensor::zeros(self.in_shape.clone());
        let inv = 1.0 / (h * w) as f32;
        for (plane, &g) in dx
            .as_mut_slice()
            .chunks_mut(h * w)
            .zip(dy.as_slice().iter())
        {
            plane.iter_mut().for_each(|v| *v = g * inv);
        }
        dx
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "gap"
    }
}

fn unpack4(x: &Tensor) -> (usize, usize, usize, usize) {
    let s = x.shape();
    assert_eq!(s.len(), 4, "expected [b, c, h, w], got {s:?}");
    (s[0], s[1], s[2], s[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtrain_tensor::init::rng_from_seed;

    #[test]
    fn conv_identity_kernel_preserves_input() {
        let mut rng = rng_from_seed(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, &mut rng);
        conv.w.value.iter_mut().for_each(|v| *v = 0.0);
        conv.w.value[4] = 1.0; // center tap
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), vec![1, 1, 4, 4]).unwrap();
        let y = conv.forward(x.clone(), true);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv_stride2_halves_resolution() {
        let mut rng = rng_from_seed(1);
        let mut conv = Conv2d::new(2, 3, 3, 2, &mut rng);
        let x = Tensor::zeros(vec![2, 2, 8, 8]);
        let y = conv.forward(x, true);
        assert_eq!(y.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn conv_gradcheck() {
        let mut rng = rng_from_seed(2);
        let mut conv = Conv2d::new(2, 2, 3, 1, &mut rng);
        let x = {
            let mut rng = rng_from_seed(3);
            init::uniform_tensor(2 * 2 * 4 * 4, -1.0, 1.0, &mut rng)
        };
        let mut x = x;
        x.reshape(vec![2, 2, 4, 4]).unwrap();
        let y = conv.forward(x.clone(), true);
        let dy = y.clone(); // L = sum(y^2)/2
        let dx = conv.backward(dy);

        let eps = 1e-2;
        let loss = |c: &mut Conv2d, x: &Tensor| -> f32 {
            let y = c.forward(x.clone(), true);
            c.cached_x = None;
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        for idx in [0usize, 7, 17, 35] {
            let analytic = conv.w.grad[idx];
            conv.w.value[idx] += eps;
            let lp = loss(&mut conv, &x);
            conv.w.value[idx] -= 2.0 * eps;
            let lm = loss(&mut conv, &x);
            conv.w.value[idx] += eps;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 0.05 * analytic.abs().max(1.0),
                "w[{idx}]: {analytic} vs {numeric}"
            );
        }
        // One input coordinate.
        let mut xp = x.clone();
        xp.as_mut_slice()[10] += eps;
        let lp = loss(&mut conv, &xp);
        xp.as_mut_slice()[10] -= 2.0 * eps;
        let lm = loss(&mut conv, &xp);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (dx.as_slice()[10] - numeric).abs() < 0.05 * numeric.abs().max(1.0),
            "dx[10]: {} vs {numeric}",
            dx.as_slice()[10]
        );
    }

    #[test]
    fn im2col_path_matches_direct_forward_and_backward() {
        let mut rng = rng_from_seed(11);
        for stride in [1usize, 2] {
            let mut direct = Conv2d::new(3, 4, 3, stride, &mut rng);
            // Clone parameters into a fast twin.
            let mut fast = Conv2d::new(3, 4, 3, stride, &mut rng_from_seed(0)).fast();
            fast.w.value.copy_from_slice(&direct.w.value);
            fast.b.value.copy_from_slice(&direct.b.value);

            let mut x = init::uniform_tensor(2 * 3 * 6 * 6, -1.0, 1.0, &mut rng);
            x.reshape(vec![2, 3, 6, 6]).unwrap();
            let y1 = direct.forward(x.clone(), true);
            let y2 = fast.forward(x.clone(), true);
            assert_eq!(y1.shape(), y2.shape());
            for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
                assert!((a - b).abs() < 1e-4, "forward diverged: {a} vs {b}");
            }

            let dy = y1.clone();
            let dx1 = direct.backward(dy.clone());
            let dx2 = fast.backward(dy);
            for (a, b) in dx1.as_slice().iter().zip(dx2.as_slice()) {
                assert!((a - b).abs() < 1e-3, "dx diverged: {a} vs {b}");
            }
            for (a, b) in direct.w.grad.iter().zip(&fast.w.grad) {
                assert!((a - b).abs() < 1e-3, "dW diverged: {a} vs {b}");
            }
            for (a, b) in direct.b.grad.iter().zip(&fast.b.grad) {
                assert!((a - b).abs() < 1e-3, "db diverged: {a} vs {b}");
            }
        }
    }

    #[test]
    fn im2col_col2im_are_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint identity.
        let mut rng = rng_from_seed(12);
        let (c, h, w, k, stride) = (2usize, 5usize, 4usize, 3usize, 1usize);
        let x = init::uniform_tensor(c * h * w, -1.0, 1.0, &mut rng).into_vec();
        let (cols, oh, ow) = im2col(&x, c, h, w, k, stride);
        let y = init::uniform_tensor(c * k * k * oh * ow, -1.0, 1.0, &mut rng).into_vec();
        let lhs: f32 = cols.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut folded = vec![0.0; c * h * w];
        col2im_acc(&y, &mut folded, c, h, w, k, stride);
        let rhs: f32 = x.iter().zip(&folded).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn maxpool_selects_max_and_routes_gradient() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, -1.0, 0.0, 0.5,
            ],
            vec![1, 1, 4, 4],
        )
        .unwrap();
        let y = p.forward(x, true);
        assert_eq!(y.as_slice(), &[4.0, 8.0, 0.0, 1.0]);
        let dx = p.backward(Tensor::from_vec_1d(vec![1.0, 2.0, 3.0, 4.0]));
        // Gradient lands only on the argmax positions.
        assert_eq!(dx.as_slice()[5], 1.0); // 4.0 at (1,1)
        assert_eq!(dx.as_slice()[7], 2.0); // 8.0 at (1,3)
        assert_eq!(dx.as_slice()[10], 4.0); // 1.0 at (2,2)
        assert_eq!(dx.as_slice().iter().filter(|v| **v != 0.0).count(), 4);
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let mut g = GlobalAvgPool::new();
        let x = Tensor::from_vec(
            vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0],
            vec![1, 2, 2, 2],
        )
        .unwrap();
        let y = g.forward(x, true);
        assert_eq!(y.as_slice(), &[4.0, 2.0]);
        let dx = g.backward(Tensor::from_vec_1d(vec![4.0, 8.0]));
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }
}
