//! Token and positional embeddings for the Transformer.

use cloudtrain_tensor::{init, Tensor};
use rand::rngs::StdRng;

use crate::layer::Param;

/// Learned token embedding plus learned positional embedding:
/// `[batch, seq]` token ids → `[batch * seq, dim]` vectors.
///
/// Not a [`crate::Layer`] — its input is integer tokens, so the Transformer
/// model drives it directly.
#[derive(Debug)]
pub struct Embedding {
    /// Token table `[vocab, dim]`.
    pub tokens: Param,
    /// Positional table `[max_len, dim]`.
    pub positions: Param,
    vocab: usize,
    dim: usize,
    max_len: usize,
    cached_ids: Vec<u32>,
    cached_len: usize,
}

impl Embedding {
    /// Creates embedding tables with N(0, 0.02) init (the Transformer
    /// convention).
    pub fn new(vocab: usize, dim: usize, max_len: usize, rng: &mut StdRng) -> Self {
        let mut tok = vec![0.0; vocab * dim];
        init::fill_normal(&mut tok, 0.0, 0.02, rng);
        let mut pos = vec![0.0; max_len * dim];
        init::fill_normal(&mut pos, 0.0, 0.02, rng);
        Self {
            tokens: Param::new("embed.tokens", tok),
            positions: Param::new("embed.positions", pos),
            vocab,
            dim,
            max_len,
            cached_ids: Vec::new(),
            cached_len: 0,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up `ids` (batch-major, `seq_len` tokens per row).
    ///
    /// # Panics
    /// Panics if a token id is out of vocabulary or the sequence exceeds
    /// `max_len`.
    pub fn forward(&mut self, ids: &[u32], seq_len: usize) -> Tensor {
        assert!(seq_len <= self.max_len, "Embedding: sequence too long");
        assert_eq!(ids.len() % seq_len, 0, "Embedding: ragged batch");
        let rows = ids.len();
        let mut out = Tensor::zeros(vec![rows, self.dim]);
        for (r, &id) in ids.iter().enumerate() {
            assert!(
                (id as usize) < self.vocab,
                "Embedding: token {id} out of vocab"
            );
            let tok = &self.tokens.value[id as usize * self.dim..(id as usize + 1) * self.dim];
            let pos_idx = r % seq_len;
            let pos = &self.positions.value[pos_idx * self.dim..(pos_idx + 1) * self.dim];
            let dst = &mut out.as_mut_slice()[r * self.dim..(r + 1) * self.dim];
            for ((d, t), p) in dst.iter_mut().zip(tok).zip(pos) {
                *d = t + p;
            }
        }
        self.cached_ids = ids.to_vec();
        self.cached_len = seq_len;
        out
    }

    /// Accumulates gradients for the looked-up rows.
    pub fn backward(&mut self, dy: &Tensor) {
        assert_eq!(dy.len(), self.cached_ids.len() * self.dim);
        for (r, &id) in self.cached_ids.iter().enumerate() {
            let g = &dy.as_slice()[r * self.dim..(r + 1) * self.dim];
            let tok = &mut self.tokens.grad[id as usize * self.dim..(id as usize + 1) * self.dim];
            for (t, v) in tok.iter_mut().zip(g) {
                *t += v;
            }
            let pos_idx = r % self.cached_len;
            let pos = &mut self.positions.grad[pos_idx * self.dim..(pos_idx + 1) * self.dim];
            for (p, v) in pos.iter_mut().zip(g) {
                *p += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtrain_tensor::init::rng_from_seed;

    #[test]
    fn lookup_adds_token_and_position() {
        let mut rng = rng_from_seed(1);
        let mut e = Embedding::new(10, 4, 8, &mut rng);
        let out = e.forward(&[3, 7], 2);
        for i in 0..4 {
            assert_eq!(
                out.as_slice()[i],
                e.tokens.value[3 * 4 + i] + e.positions.value[i]
            );
            assert_eq!(
                out.as_slice()[4 + i],
                e.tokens.value[7 * 4 + i] + e.positions.value[4 + i]
            );
        }
    }

    #[test]
    fn backward_scatters_to_used_rows_only() {
        let mut rng = rng_from_seed(2);
        let mut e = Embedding::new(10, 2, 4, &mut rng);
        let _ = e.forward(&[5, 5], 2);
        let dy = Tensor::from_vec_1d(vec![1.0, 2.0, 3.0, 4.0]);
        e.backward(&dy);
        // Token 5 used twice: grads accumulate.
        assert_eq!(&e.tokens.grad[10..12], &[4.0, 6.0]);
        assert!(e.tokens.grad[..10].iter().all(|g| *g == 0.0));
        // Positions 0 and 1 each used once.
        assert_eq!(&e.positions.grad[0..2], &[1.0, 2.0]);
        assert_eq!(&e.positions.grad[2..4], &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn oov_token_panics() {
        let mut rng = rng_from_seed(3);
        let mut e = Embedding::new(4, 2, 4, &mut rng);
        e.forward(&[4], 1);
    }
}
