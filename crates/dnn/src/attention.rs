//! Single-head scaled dot-product self-attention.
//!
//! Operates on `[batch * seq, dim]` activations with a fixed sequence
//! length, attending within each sequence. A single head keeps the manual
//! backward tractable while exercising the same compute/communication
//! profile as the paper's Transformer (large dense projection matrices).

use cloudtrain_tensor::{init, Tensor};
use rand::rngs::StdRng;

use crate::layer::{Layer, Param};
use crate::math::{matmul, matmul_at_acc, matmul_bt, softmax_rows, transpose};

/// Self-attention with Q/K/V/O projections (`y = Attn(x) W_o^T`).
#[derive(Debug)]
pub struct SelfAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    dim: usize,
    seq: usize,
    // Backward caches (per forward call, all batches concatenated).
    x: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    attn: Vec<f32>, // softmax probabilities, [batch][s][s]
    o: Vec<f32>,
    batches: usize,
}

impl SelfAttention {
    /// Creates an attention layer over `dim`-dimensional tokens attending
    /// within length-`seq` windows.
    pub fn new(dim: usize, seq: usize, rng: &mut StdRng) -> Self {
        let mk = |name: &str, rng: &mut StdRng| {
            let mut w = vec![0.0; dim * dim];
            init::fill_xavier(&mut w, dim, dim, rng);
            Param::new(format!("attn.{name}"), w)
        };
        Self {
            wq: mk("wq", rng),
            wk: mk("wk", rng),
            wv: mk("wv", rng),
            wo: mk("wo", rng),
            dim,
            seq,
            x: Vec::new(),
            q: Vec::new(),
            k: Vec::new(),
            v: Vec::new(),
            attn: Vec::new(),
            o: Vec::new(),
            batches: 0,
        }
    }
}

impl Layer for SelfAttention {
    fn forward(&mut self, x: Tensor, _train: bool) -> Tensor {
        let (d, s) = (self.dim, self.seq);
        let rows = x.len() / d;
        assert_eq!(rows % s, 0, "SelfAttention: rows not a multiple of seq");
        let batches = rows / s;
        let xs = x.as_slice();

        let mut q = vec![0.0; rows * d];
        let mut k = vec![0.0; rows * d];
        let mut v = vec![0.0; rows * d];
        matmul_bt(xs, &self.wq.value, &mut q, rows, d, d);
        matmul_bt(xs, &self.wk.value, &mut k, rows, d, d);
        matmul_bt(xs, &self.wv.value, &mut v, rows, d, d);

        let scale = 1.0 / (d as f32).sqrt();
        let mut attn = vec![0.0; batches * s * s];
        let mut o = vec![0.0; rows * d];
        for b in 0..batches {
            let qb = &q[b * s * d..(b + 1) * s * d];
            let kb = &k[b * s * d..(b + 1) * s * d];
            let vb = &v[b * s * d..(b + 1) * s * d];
            let ab = &mut attn[b * s * s..(b + 1) * s * s];
            matmul_bt(qb, kb, ab, s, d, s);
            ab.iter_mut().for_each(|x| *x *= scale);
            softmax_rows(ab, s, s);
            matmul(ab, vb, &mut o[b * s * d..(b + 1) * s * d], s, s, d);
        }

        let mut y = Tensor::zeros(vec![rows, d]);
        matmul_bt(&o, &self.wo.value, y.as_mut_slice(), rows, d, d);

        self.x = xs.to_vec();
        self.q = q;
        self.k = k;
        self.v = v;
        self.attn = attn;
        self.o = o;
        self.batches = batches;
        y
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let (d, s) = (self.dim, self.seq);
        let batches = self.batches;
        let rows = batches * s;
        let dys = dy.as_slice();
        let scale = 1.0 / (d as f32).sqrt();

        // dO = dY @ Wo; dWo += dY^T @ O.
        let mut do_ = vec![0.0; rows * d];
        matmul(dys, &self.wo.value, &mut do_, rows, d, d);
        matmul_at_acc(dys, &self.o, &mut self.wo.grad, rows, d, d);

        let mut dq = vec![0.0; rows * d];
        let mut dk = vec![0.0; rows * d];
        let mut dv = vec![0.0; rows * d];
        for b in 0..batches {
            let ab = &self.attn[b * s * s..(b + 1) * s * s];
            let vb = &self.v[b * s * d..(b + 1) * s * d];
            let qb = &self.q[b * s * d..(b + 1) * s * d];
            let kb = &self.k[b * s * d..(b + 1) * s * d];
            let dob = &do_[b * s * d..(b + 1) * s * d];

            // dA = dO @ V^T; dV = A^T @ dO.
            let mut da = vec![0.0; s * s];
            matmul_bt(dob, vb, &mut da, s, d, s);
            matmul_at_acc(ab, dob, &mut dv[b * s * d..(b + 1) * s * d], s, s, d);

            // Softmax backward row-wise: dS = A ∘ (dA - rowsum(dA ∘ A)).
            let mut ds = vec![0.0; s * s];
            for r in 0..s {
                let a_row = &ab[r * s..(r + 1) * s];
                let da_row = &da[r * s..(r + 1) * s];
                let dot: f32 = a_row.iter().zip(da_row).map(|(a, g)| a * g).sum();
                for c in 0..s {
                    ds[r * s + c] = a_row[c] * (da_row[c] - dot) * scale;
                }
            }

            // dQ = dS @ K; dK = dS^T @ Q.
            matmul(&ds, kb, &mut dq[b * s * d..(b + 1) * s * d], s, s, d);
            let dst = transpose(&ds, s, s);
            matmul(&dst, qb, &mut dk[b * s * d..(b + 1) * s * d], s, s, d);
        }

        // Projection gradients and input gradient.
        matmul_at_acc(&dq, &self.x, &mut self.wq.grad, rows, d, d);
        matmul_at_acc(&dk, &self.x, &mut self.wk.grad, rows, d, d);
        matmul_at_acc(&dv, &self.x, &mut self.wv.grad, rows, d, d);

        let mut dx = Tensor::zeros(vec![rows, d]);
        let mut tmp = vec![0.0; rows * d];
        matmul(&dq, &self.wq.value, &mut tmp, rows, d, d);
        cloudtrain_tensor::ops::add_assign(dx.as_mut_slice(), &tmp);
        matmul(&dk, &self.wk.value, &mut tmp, rows, d, d);
        cloudtrain_tensor::ops::add_assign(dx.as_mut_slice(), &tmp);
        matmul(&dv, &self.wv.value, &mut tmp, rows, d, d);
        cloudtrain_tensor::ops::add_assign(dx.as_mut_slice(), &tmp);
        dx
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.wq);
        f(&self.wk);
        f(&self.wv);
        f(&self.wo);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
    }

    fn name(&self) -> &'static str {
        "self-attention"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtrain_tensor::init::rng_from_seed;

    #[test]
    fn attention_rows_mix_within_sequence_only() {
        let mut rng = rng_from_seed(1);
        let mut attn = SelfAttention::new(4, 2, &mut rng);
        // Two batches of two tokens; perturbing batch 0 must not affect
        // batch 1 outputs.
        let mut x = init::uniform_tensor(4 * 4, -1.0, 1.0, &mut rng);
        x.reshape(vec![4, 4]).unwrap();
        let y0 = attn.forward(x.clone(), true);
        let mut x2 = x.clone();
        x2.as_mut_slice()[0] += 1.0; // token 0 of batch 0
        let y1 = attn.forward(x2, true);
        // Batch 0 rows change...
        assert_ne!(&y0.as_slice()[..8], &y1.as_slice()[..8]);
        // ...batch 1 rows do not.
        assert_eq!(&y0.as_slice()[8..], &y1.as_slice()[8..]);
    }

    #[test]
    fn gradcheck_all_projections_and_input() {
        let mut rng = rng_from_seed(2);
        let mut attn = SelfAttention::new(3, 2, &mut rng);
        let mut x = init::uniform_tensor(2 * 2 * 3, -1.0, 1.0, &mut rng);
        x.reshape(vec![4, 3]).unwrap();

        let y = attn.forward(x.clone(), true);
        let dx = attn.backward(y);

        let eps = 1e-3;
        let loss = |a: &mut SelfAttention, x: &Tensor| -> f32 {
            let y = a.forward(x.clone(), true);
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };

        // Input gradient.
        for idx in [0usize, 4, 11] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let lp = loss(&mut attn, &xp);
            xp.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = loss(&mut attn, &xp);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.as_slice()[idx] - numeric).abs() < 0.05 * numeric.abs().max(0.2),
                "dx[{idx}]: {} vs {numeric}",
                dx.as_slice()[idx]
            );
        }

        // One coordinate of each projection. Re-run fwd/bwd to refresh
        // parameter gradients (they were consumed above).
        let grads: Vec<f32> = {
            let mut attn2 = SelfAttention::new(3, 2, &mut rng_from_seed(2));
            let y = attn2.forward(x.clone(), true);
            let _ = attn2.backward(y);
            let mut all = Vec::new();
            attn2.visit_params(&mut |p| all.push(p.grad[2]));
            all
        };
        let mut fresh = SelfAttention::new(3, 2, &mut rng_from_seed(2));
        for (pi, analytic) in grads.iter().enumerate() {
            let probe = |a: &mut SelfAttention, delta: f32| {
                let mut i = 0;
                a.visit_params_mut(&mut |p| {
                    if i == pi {
                        p.value[2] += delta;
                    }
                    i += 1;
                });
            };
            probe(&mut fresh, eps);
            let lp = loss(&mut fresh, &x);
            probe(&mut fresh, -2.0 * eps);
            let lm = loss(&mut fresh, &x);
            probe(&mut fresh, eps);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 0.05 * numeric.abs().max(0.2),
                "param {pi}[2]: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn attention_probabilities_sum_to_one() {
        let mut rng = rng_from_seed(3);
        let mut attn = SelfAttention::new(4, 3, &mut rng);
        let mut x = init::uniform_tensor(3 * 4, -1.0, 1.0, &mut rng);
        x.reshape(vec![3, 4]).unwrap();
        let _ = attn.forward(x, true);
        for row in attn.attn.chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}
