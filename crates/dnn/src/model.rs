//! The model abstraction: a network with flat parameter/gradient access.
//!
//! The distributed engine treats a model as one `d`-dimensional parameter
//! vector (what it compresses and aggregates) plus per-parameter-tensor
//! ranges (what LARS computes layer-wise learning rates over, Eq. 11).

use cloudtrain_tensor::Tensor;

use crate::layer::Layer;

/// A model input: dense activations (images) or token ids (sequences).
#[derive(Debug, Clone)]
pub enum Input {
    /// Dense input tensor (e.g. `[batch, c, h, w]` images).
    Dense(Tensor),
    /// Token sequences: `batch * seq_len` ids, row-major.
    Tokens {
        /// Token ids, `batch * seq_len` of them.
        ids: Vec<u32>,
        /// Sequence length per row.
        seq_len: usize,
    },
}

/// Flat range of one parameter tensor within the model's parameter vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamRange {
    /// Offset into the flat vector.
    pub offset: usize,
    /// Number of scalars.
    pub len: usize,
}

/// A trainable network.
pub trait Model: Send {
    /// Forward pass producing logits `[batch, classes]`.
    fn forward(&mut self, input: &Input, train: bool) -> Tensor;

    /// Backward pass from the logits gradient; accumulates parameter
    /// gradients.
    fn backward(&mut self, dlogits: Tensor);

    /// Total number of scalar parameters (`d`).
    fn param_count(&self) -> usize;

    /// The flat range of every parameter tensor, in a stable order; ranges
    /// tile `[0, param_count)`.
    fn layer_ranges(&self) -> Vec<ParamRange>;

    /// Copies all parameters into `out` (length `param_count`).
    fn read_params(&self, out: &mut [f32]);

    /// Overwrites all parameters from `src` (length `param_count`).
    fn write_params(&mut self, src: &[f32]);

    /// Copies all gradients into `out` (length `param_count`).
    fn read_grads(&self, out: &mut [f32]);

    /// Zeroes all gradient accumulators.
    fn zero_grads(&mut self);
}

/// A model made of a linear chain of [`Layer`]s over dense inputs.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    classes: usize,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .field("classes", &self.classes)
            .finish()
    }
}

impl Sequential {
    /// Builds a sequential model; `classes` is the logit dimension of the
    /// final layer (used only for shape reporting).
    pub fn new(layers: Vec<Box<dyn Layer>>, classes: usize) -> Self {
        Self { layers, classes }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Immutable access to the layer chain.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }
}

impl Model for Sequential {
    fn forward(&mut self, input: &Input, train: bool) -> Tensor {
        let Input::Dense(x) = input else {
            panic!("Sequential: expected dense input");
        };
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(h, train);
        }
        h
    }

    fn backward(&mut self, dlogits: Tensor) {
        let mut g = dlogits;
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(g);
        }
    }

    fn param_count(&self) -> usize {
        let mut n = 0;
        for l in &self.layers {
            l.visit_params(&mut |p| n += p.len());
        }
        n
    }

    fn layer_ranges(&self) -> Vec<ParamRange> {
        let mut ranges = Vec::new();
        let mut offset = 0;
        for l in &self.layers {
            l.visit_params(&mut |p| {
                ranges.push(ParamRange {
                    offset,
                    len: p.len(),
                });
                offset += p.len();
            });
        }
        ranges
    }

    fn read_params(&self, out: &mut [f32]) {
        let mut offset = 0;
        for l in &self.layers {
            l.visit_params(&mut |p| {
                out[offset..offset + p.len()].copy_from_slice(&p.value);
                offset += p.len();
            });
        }
        assert_eq!(offset, out.len(), "read_params: length mismatch");
    }

    fn write_params(&mut self, src: &[f32]) {
        let mut offset = 0;
        for l in &mut self.layers {
            l.visit_params_mut(&mut |p| {
                let n = p.len();
                p.value.copy_from_slice(&src[offset..offset + n]);
                offset += n;
            });
        }
        assert_eq!(offset, src.len(), "write_params: length mismatch");
    }

    fn read_grads(&self, out: &mut [f32]) {
        let mut offset = 0;
        for l in &self.layers {
            l.visit_params(&mut |p| {
                out[offset..offset + p.len()].copy_from_slice(&p.grad);
                offset += p.len();
            });
        }
        assert_eq!(offset, out.len(), "read_grads: length mismatch");
    }

    fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.visit_params_mut(&mut |p| p.zero_grad());
        }
    }
}

/// A human-readable summary of a model's parameter layout: total size and
/// the per-tensor distribution — what the communication layer actually
/// sees of a model.
pub fn summarize(model: &dyn Model) -> String {
    let ranges = model.layer_ranges();
    let total = model.param_count();
    let largest = ranges.iter().map(|r| r.len).max().unwrap_or(0);
    let mut out = format!(
        "{} parameters in {} tensors (largest {} = {:.1}%)\n",
        total,
        ranges.len(),
        largest,
        if total > 0 {
            100.0 * largest as f64 / total as f64
        } else {
            0.0
        }
    );
    for (i, r) in ranges.iter().enumerate() {
        out.push_str(&format!(
            "  tensor {:>3}: offset {:>9}, {:>9} params ({:>5.2}%)\n",
            i,
            r.offset,
            r.len,
            if total > 0 {
                100.0 * r.len as f64 / total as f64
            } else {
                0.0
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::linear::Linear;
    use cloudtrain_tensor::init::rng_from_seed;

    fn mlp() -> Sequential {
        let mut rng = rng_from_seed(1);
        Sequential::new(
            vec![
                Box::new(Linear::new(4, 8, &mut rng)),
                Box::new(Relu::new()),
                Box::new(Linear::new(8, 3, &mut rng)),
            ],
            3,
        )
    }

    #[test]
    fn param_roundtrip_preserves_forward() {
        let mut m = mlp();
        let d = m.param_count();
        assert_eq!(d, 4 * 8 + 8 + 8 * 3 + 3);
        let x = Input::Dense(Tensor::from_vec(vec![0.5; 8], vec![2, 4]).unwrap());
        let y1 = m.forward(&x, false);

        let mut params = vec![0.0; d];
        m.read_params(&mut params);
        let mut m2 = mlp();
        m2.write_params(&params);
        let y2 = m2.forward(&x, false);
        assert_eq!(y1, y2);
    }

    #[test]
    fn layer_ranges_tile_the_vector() {
        let m = mlp();
        let ranges = m.layer_ranges();
        assert_eq!(ranges.len(), 4); // 2 linears x (weight, bias)
        let mut pos = 0;
        for r in &ranges {
            assert_eq!(r.offset, pos);
            pos += r.len;
        }
        assert_eq!(pos, m.param_count());
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut m = mlp();
        let d = m.param_count();
        let x = Input::Dense(Tensor::from_vec(vec![0.5; 4], vec![1, 4]).unwrap());
        let y = m.forward(&x, true);
        m.backward(y);
        let mut g = vec![0.0; d];
        m.read_grads(&mut g);
        assert!(g.iter().any(|v| *v != 0.0));
        m.zero_grads();
        m.read_grads(&mut g);
        assert!(g.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn summarize_reports_layout() {
        let m = mlp();
        let s = summarize(&m);
        assert!(s.contains("4 tensors"), "{s}");
        assert!(s.contains(&m.param_count().to_string()), "{s}");
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "dense input")]
    fn sequential_rejects_tokens() {
        let mut m = mlp();
        m.forward(
            &Input::Tokens {
                ids: vec![0],
                seq_len: 1,
            },
            true,
        );
    }
}
