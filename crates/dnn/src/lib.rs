//! A minimal deep-learning framework: the training substrate of the
//! reproduction.
//!
//! The paper trains CNNs (ResNet-50, VGG-19) and a Transformer with
//! TensorFlow; convergence experiments here (Fig. 10, Table 2) need *real*
//! gradients flowing through real models, so this crate implements manual
//! backpropagation for the layer types those architectures are built from:
//!
//! * [`linear`] — fully connected layers,
//! * [`conv`] — 2-D convolutions and max pooling,
//! * [`norm`] — batch and layer normalisation,
//! * [`activation`] — ReLU,
//! * [`attention`] — single-head scaled dot-product self-attention,
//! * [`embedding`] — token + positional embeddings,
//! * [`loss`] — fused softmax cross-entropy and top-k accuracy,
//! * [`models`] — scaled-down reference models (ResNet-lite, VGG-lite,
//!   MLP, TinyTransformer) with the same *structure* as the paper's
//!   workloads,
//! * [`data`] — deterministic synthetic datasets (class-conditional images,
//!   patterned token sequences) standing in for ImageNet/WMT17.
//!
//! Models expose their parameters and gradients as **flat vectors** with
//! per-parameter-tensor ranges ([`model::Model::layer_ranges`]) — the
//! interface the distributed engine compresses, aggregates, and applies
//! LARS over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod attention;
pub mod conv;
pub mod data;
pub mod embedding;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod math;
pub mod model;
pub mod models;
pub mod norm;

pub use layer::{Layer, Param};
pub use model::{Input, Model, ParamRange};
