//! Reference models with the same *structure* as the paper's workloads,
//! scaled to sizes that train quickly on CPU:
//!
//! * [`resnet_lite`] — residual CNN (stand-in for ResNet-50): conv/BN
//!   stacks with identity and projection shortcuts, parameters dominated by
//!   convolutions spread over many small tensors;
//! * [`vgg_lite`] — plain CNN (stand-in for VGG-19): parameters dominated
//!   by a huge fully connected head, the communication profile that makes
//!   VGG the classic compression showcase;
//! * [`mlp`] — a baseline multi-layer perceptron;
//! * [`TransformerModel`] — embedding + pre-norm attention/FFN blocks +
//!   mean-pool classifier (stand-in for the WMT Transformer).

use cloudtrain_tensor::{ops, Tensor};
use rand::rngs::StdRng;

use crate::activation::Relu;
use crate::attention::SelfAttention;
use crate::conv::{Conv2d, GlobalAvgPool, MaxPool2};
use crate::embedding::Embedding;
use crate::layer::{Layer, Param};
use crate::linear::Linear;
use crate::model::{Input, Model, ParamRange, Sequential};
use crate::norm::{BatchNorm2d, LayerNorm};

/// A two-conv residual block with optional downsampling projection
/// shortcut: `y = relu(bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x))`.
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    out_mask: Vec<bool>,
    cached_x: Option<Tensor>,
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidualBlock")
            .field("projected", &self.shortcut.is_some())
            .finish()
    }
}

impl ResidualBlock {
    /// Creates a block mapping `in_c` to `out_c` channels with the given
    /// stride; a 1×1 projection shortcut is added whenever the shape
    /// changes.
    pub fn new(in_c: usize, out_c: usize, stride: usize, rng: &mut StdRng) -> Self {
        let shortcut = (in_c != out_c || stride != 1).then(|| {
            (
                Conv2d::new(in_c, out_c, 1, stride, rng).fast(),
                BatchNorm2d::new(out_c),
            )
        });
        Self {
            conv1: Conv2d::new(in_c, out_c, 3, stride, rng).fast(),
            bn1: BatchNorm2d::new(out_c),
            relu1: Relu::new(),
            conv2: Conv2d::new(out_c, out_c, 3, 1, rng).fast(),
            bn2: BatchNorm2d::new(out_c),
            shortcut,
            out_mask: Vec::new(),
            cached_x: None,
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let main = self.conv1.forward(x.clone(), train);
        let main = self.bn1.forward(main, train);
        let main = self.relu1.forward(main, train);
        let main = self.conv2.forward(main, train);
        let mut y = self.bn2.forward(main, train);

        let skip = match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(x.clone(), train);
                bn.forward(s, train)
            }
            None => x.clone(),
        };
        y.add_assign(&skip).expect("ResidualBlock: shape mismatch");

        // Final ReLU (mask recorded for backward).
        self.out_mask.clear();
        self.out_mask.reserve(y.len());
        for v in y.as_mut_slice() {
            let pass = *v > 0.0;
            self.out_mask.push(pass);
            if !pass {
                *v = 0.0;
            }
        }
        self.cached_x = Some(x);
        y
    }

    fn backward(&mut self, mut dy: Tensor) -> Tensor {
        let _ = self
            .cached_x
            .take()
            .expect("ResidualBlock: backward before forward");
        // Through the final ReLU.
        for (g, &pass) in dy.as_mut_slice().iter_mut().zip(&self.out_mask) {
            if !pass {
                *g = 0.0;
            }
        }
        // Main path.
        let g = self.bn2.backward(dy.clone());
        let g = self.conv2.backward(g);
        let g = self.relu1.backward(g);
        let g = self.bn1.backward(g);
        let mut dx = self.conv1.backward(g);
        // Skip path.
        let dskip = match &mut self.shortcut {
            Some((conv, bn)) => {
                let g = bn.backward(dy);
                conv.backward(g)
            }
            None => dy,
        };
        ops::add_assign(dx.as_mut_slice(), dskip.as_slice());
        dx
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((conv, bn)) = &self.shortcut {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params_mut(f);
        self.bn1.visit_params_mut(f);
        self.conv2.visit_params_mut(f);
        self.bn2.visit_params_mut(f);
        if let Some((conv, bn)) = &mut self.shortcut {
            conv.visit_params_mut(f);
            bn.visit_params_mut(f);
        }
    }

    fn name(&self) -> &'static str {
        "resblock"
    }
}

/// Flattens `[b, c, h, w]` to `[b, c*h*w]` (no-op on the data).
#[derive(Debug, Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, mut x: Tensor, _train: bool) -> Tensor {
        self.in_shape = x.shape().to_vec();
        let b = self.in_shape[0];
        let rest = x.len() / b;
        x.reshape(vec![b, rest]).expect("Flatten: reshape");
        x
    }

    fn backward(&mut self, mut dy: Tensor) -> Tensor {
        dy.reshape(self.in_shape.clone())
            .expect("Flatten: reshape back");
        dy
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "flatten"
    }
}

/// A residual CNN for `[b, 3, res, res]` inputs (ResNet-50 stand-in).
pub fn resnet_lite(width: usize, classes: usize, rng: &mut StdRng) -> Sequential {
    let w = width;
    Sequential::new(
        vec![
            Box::new(Conv2d::new(3, w, 3, 1, rng).fast()),
            Box::new(BatchNorm2d::new(w)),
            Box::new(Relu::new()),
            Box::new(ResidualBlock::new(w, w, 1, rng)),
            Box::new(ResidualBlock::new(w, 2 * w, 2, rng)),
            Box::new(ResidualBlock::new(2 * w, 2 * w, 1, rng)),
            Box::new(ResidualBlock::new(2 * w, 4 * w, 2, rng)),
            Box::new(GlobalAvgPool::new()),
            Box::new(Linear::new(4 * w, classes, rng)),
        ],
        classes,
    )
}

/// A plain CNN with a large fully connected head (VGG-19 stand-in) for
/// `[b, 3, res, res]` inputs with `res` divisible by 4.
pub fn vgg_lite(width: usize, res: usize, classes: usize, rng: &mut StdRng) -> Sequential {
    assert!(
        res.is_multiple_of(4),
        "vgg_lite: resolution must be divisible by 4"
    );
    let w = width;
    let flat = 2 * w * (res / 4) * (res / 4);
    Sequential::new(
        vec![
            Box::new(Conv2d::new(3, w, 3, 1, rng).fast()),
            Box::new(Relu::new()),
            Box::new(MaxPool2::new()),
            Box::new(Conv2d::new(w, 2 * w, 3, 1, rng).fast()),
            Box::new(Relu::new()),
            Box::new(MaxPool2::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(flat, 128, rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(128, classes, rng)),
        ],
        classes,
    )
}

/// A plain MLP over flat `[b, in_dim]` inputs.
pub fn mlp(in_dim: usize, hidden: usize, classes: usize, rng: &mut StdRng) -> Sequential {
    Sequential::new(
        vec![
            Box::new(Linear::new(in_dim, hidden, rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(hidden, hidden, rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(hidden, classes, rng)),
        ],
        classes,
    )
}

/// One pre-norm Transformer encoder block:
/// `a = x + Attn(LN1(x)); y = a + FFN(LN2(a))`.
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: SelfAttention,
    ln2: LayerNorm,
    ff1: Linear,
    ff_relu: Relu,
    ff2: Linear,
}

impl std::fmt::Debug for TransformerBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TransformerBlock")
    }
}

impl TransformerBlock {
    /// Creates a block over `dim`-dimensional tokens in length-`seq`
    /// sequences, with a 4× FFN expansion.
    pub fn new(dim: usize, seq: usize, rng: &mut StdRng) -> Self {
        Self {
            ln1: LayerNorm::new(dim),
            attn: SelfAttention::new(dim, seq, rng),
            ln2: LayerNorm::new(dim),
            ff1: Linear::new(dim, 4 * dim, rng),
            ff_relu: Relu::new(),
            ff2: Linear::new(4 * dim, dim, rng),
        }
    }
}

impl Layer for TransformerBlock {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let h = self.ln1.forward(x.clone(), train);
        let h = self.attn.forward(h, train);
        let mut a = x;
        a.add_assign(&h).expect("TransformerBlock: attn residual");

        let h = self.ln2.forward(a.clone(), train);
        let h = self.ff1.forward(h, train);
        let h = self.ff_relu.forward(h, train);
        let h = self.ff2.forward(h, train);
        let mut y = a;
        y.add_assign(&h).expect("TransformerBlock: ffn residual");
        y
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        // FFN branch.
        let g = self.ff2.backward(dy.clone());
        let g = self.ff_relu.backward(g);
        let g = self.ff1.backward(g);
        let mut da = self.ln2.backward(g);
        ops::add_assign(da.as_mut_slice(), dy.as_slice());
        // Attention branch.
        let g = self.attn.backward(da.clone());
        let mut dx = self.ln1.backward(g);
        ops::add_assign(dx.as_mut_slice(), da.as_slice());
        dx
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.ff1.visit_params(f);
        self.ff2.visit_params(f);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params_mut(f);
        self.attn.visit_params_mut(f);
        self.ln2.visit_params_mut(f);
        self.ff1.visit_params_mut(f);
        self.ff2.visit_params_mut(f);
    }

    fn name(&self) -> &'static str {
        "transformer-block"
    }
}

/// A token-sequence classifier: embedding → encoder blocks → mean pool →
/// linear head (the Transformer stand-in for the convergence experiments).
pub struct TransformerModel {
    embed: Embedding,
    blocks: Vec<TransformerBlock>,
    head: Linear,
    seq: usize,
    dim: usize,
    cached_batch: usize,
}

impl std::fmt::Debug for TransformerModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransformerModel")
            .field("blocks", &self.blocks.len())
            .field("dim", &self.dim)
            .field("seq", &self.seq)
            .finish()
    }
}

impl TransformerModel {
    /// Creates a model with `n_blocks` encoder blocks.
    pub fn new(
        vocab: usize,
        dim: usize,
        seq: usize,
        n_blocks: usize,
        classes: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            embed: Embedding::new(vocab, dim, seq, rng),
            blocks: (0..n_blocks)
                .map(|_| TransformerBlock::new(dim, seq, rng))
                .collect(),
            head: Linear::new(dim, classes, rng),
            seq,
            dim,
            cached_batch: 0,
        }
    }

    fn visit_all(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.embed.tokens);
        f(&self.embed.positions);
        for b in &self.blocks {
            b.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn visit_all_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.embed.tokens);
        f(&mut self.embed.positions);
        for b in &mut self.blocks {
            b.visit_params_mut(f);
        }
        self.head.visit_params_mut(f);
    }
}

impl Model for TransformerModel {
    fn forward(&mut self, input: &Input, train: bool) -> Tensor {
        let Input::Tokens { ids, seq_len } = input else {
            panic!("TransformerModel: expected token input");
        };
        assert_eq!(*seq_len, self.seq, "TransformerModel: seq length mismatch");
        let batch = ids.len() / self.seq;
        let mut h = self.embed.forward(ids, self.seq);
        for b in &mut self.blocks {
            h = b.forward(h, train);
        }
        // Mean-pool over the sequence: [batch*seq, dim] -> [batch, dim].
        let mut pooled = Tensor::zeros(vec![batch, self.dim]);
        for bi in 0..batch {
            let dst = &mut pooled.as_mut_slice()[bi * self.dim..(bi + 1) * self.dim];
            for t in 0..self.seq {
                let src = &h.as_slice()
                    [(bi * self.seq + t) * self.dim..(bi * self.seq + t + 1) * self.dim];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
            dst.iter_mut().for_each(|v| *v /= self.seq as f32);
        }
        self.cached_batch = batch;
        self.head.forward(pooled, train)
    }

    fn backward(&mut self, dlogits: Tensor) {
        let batch = self.cached_batch;
        let dpooled = self.head.backward(dlogits);
        // Un-pool: broadcast /seq to every position.
        let mut dh = Tensor::zeros(vec![batch * self.seq, self.dim]);
        let inv = 1.0 / self.seq as f32;
        for bi in 0..batch {
            let src = &dpooled.as_slice()[bi * self.dim..(bi + 1) * self.dim];
            for t in 0..self.seq {
                let dst = &mut dh.as_mut_slice()
                    [(bi * self.seq + t) * self.dim..(bi * self.seq + t + 1) * self.dim];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = s * inv;
                }
            }
        }
        let mut g = dh;
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(g);
        }
        self.embed.backward(&g);
    }

    fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_all(&mut |p| n += p.len());
        n
    }

    fn layer_ranges(&self) -> Vec<ParamRange> {
        let mut ranges = Vec::new();
        let mut offset = 0;
        self.visit_all(&mut |p| {
            ranges.push(ParamRange {
                offset,
                len: p.len(),
            });
            offset += p.len();
        });
        ranges
    }

    fn read_params(&self, out: &mut [f32]) {
        let mut offset = 0;
        self.visit_all(&mut |p| {
            out[offset..offset + p.len()].copy_from_slice(&p.value);
            offset += p.len();
        });
    }

    fn write_params(&mut self, src: &[f32]) {
        let mut offset = 0;
        self.visit_all_mut(&mut |p| {
            let n = p.len();
            p.value.copy_from_slice(&src[offset..offset + n]);
            offset += n;
        });
    }

    fn read_grads(&self, out: &mut [f32]) {
        let mut offset = 0;
        self.visit_all(&mut |p| {
            out[offset..offset + p.len()].copy_from_slice(&p.grad);
            offset += p.len();
        });
    }

    fn zero_grads(&mut self) {
        self.visit_all_mut(&mut |p| p.zero_grad());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use cloudtrain_tensor::init::{self, rng_from_seed};

    #[test]
    fn resnet_forward_shapes() {
        let mut rng = rng_from_seed(1);
        let mut m = resnet_lite(8, 10, &mut rng);
        let mut x = init::uniform_tensor(2 * 3 * 16 * 16, -1.0, 1.0, &mut rng);
        x.reshape(vec![2, 3, 16, 16]).unwrap();
        let y = m.forward(&Input::Dense(x), true);
        assert_eq!(y.shape(), &[2, 10]);
        assert!(m.param_count() > 10_000);
    }

    #[test]
    fn residual_block_gradcheck() {
        let mut rng = rng_from_seed(2);
        let mut blk = ResidualBlock::new(2, 4, 2, &mut rng);
        let mut x = init::uniform_tensor(2 * 4 * 4, -1.0, 1.0, &mut rng);
        x.reshape(vec![1, 2, 4, 4]).unwrap();
        let y = blk.forward(x.clone(), true);
        let dx = blk.backward(y);

        let eps = 1e-2;
        let loss = |b: &mut ResidualBlock, x: &Tensor| {
            let y = b.forward(x.clone(), true);
            b.cached_x = None;
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        for idx in [0usize, 9, 21, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let lp = loss(&mut blk, &xp);
            xp.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = loss(&mut blk, &xp);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.as_slice()[idx] - numeric).abs() < 0.08 * numeric.abs().max(1.0),
                "dx[{idx}]: {} vs {numeric}",
                dx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn vgg_params_dominated_by_fc() {
        let mut rng = rng_from_seed(3);
        let m = vgg_lite(8, 16, 10, &mut rng);
        let ranges = m.layer_ranges();
        let total = m.param_count();
        let largest = ranges.iter().map(|r| r.len).max().unwrap();
        // The first FC weight dwarfs everything else.
        assert!(largest as f64 > 0.6 * total as f64);
    }

    #[test]
    fn transformer_forward_shapes_and_param_access() {
        let mut rng = rng_from_seed(4);
        let mut m = TransformerModel::new(16, 8, 4, 2, 5, &mut rng);
        let input = Input::Tokens {
            ids: vec![1, 2, 3, 4, 5, 6, 7, 8],
            seq_len: 4,
        };
        let y = m.forward(&input, true);
        assert_eq!(y.shape(), &[2, 5]);

        let d = m.param_count();
        let ranges = m.layer_ranges();
        assert_eq!(ranges.iter().map(|r| r.len).sum::<usize>(), d);

        let (_, grad) = softmax_cross_entropy(&y, &[0, 1]);
        m.backward(grad);
        let mut g = vec![0.0; d];
        m.read_grads(&mut g);
        assert!(g.iter().any(|v| *v != 0.0));
    }

    #[test]
    fn models_learn_a_tiny_task() {
        // One SGD step on a fixed batch must reduce the loss (sanity that
        // gradients point downhill through the full stacks).
        let mut rng = rng_from_seed(5);
        let mut m = resnet_lite(4, 3, &mut rng);
        let mut x = init::uniform_tensor(6 * 3 * 8 * 8, -1.0, 1.0, &mut rng);
        x.reshape(vec![6, 3, 8, 8]).unwrap();
        let input = Input::Dense(x);
        let labels = [0u32, 1, 2, 0, 1, 2];

        let d = m.param_count();
        let mut params = vec![0.0; d];
        let mut grads = vec![0.0; d];

        let y = m.forward(&input, true);
        let (l0, dy) = softmax_cross_entropy(&y, &labels);
        m.backward(dy);
        m.read_params(&mut params);
        m.read_grads(&mut grads);
        ops::axpy(-0.05, &grads, &mut params);
        m.write_params(&params);
        m.zero_grads();

        let y = m.forward(&input, true);
        let (l1, _) = softmax_cross_entropy(&y, &labels);
        assert!(l1 < l0, "loss did not decrease: {l0} -> {l1}");
    }

    #[test]
    fn transformer_learns_a_tiny_task() {
        let mut rng = rng_from_seed(6);
        let mut m = TransformerModel::new(8, 8, 4, 1, 2, &mut rng);
        let input = Input::Tokens {
            ids: vec![1, 1, 1, 1, 2, 2, 2, 2],
            seq_len: 4,
        };
        let labels = [0u32, 1];
        let d = m.param_count();
        let mut params = vec![0.0; d];
        let mut grads = vec![0.0; d];
        let mut losses = Vec::new();
        for _ in 0..30 {
            let y = m.forward(&input, true);
            let (l, dy) = softmax_cross_entropy(&y, &labels);
            losses.push(l);
            m.backward(dy);
            m.read_params(&mut params);
            m.read_grads(&mut grads);
            ops::axpy(-0.5, &grads, &mut params);
            m.write_params(&params);
            m.zero_grads();
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "transformer failed to learn: {losses:?}"
        );
    }
}
