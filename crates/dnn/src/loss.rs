//! Fused softmax cross-entropy loss and accuracy metrics.

use cloudtrain_tensor::Tensor;

use crate::math::softmax_rows;

/// Mean softmax cross-entropy over a batch of logits `[batch, classes]`.
///
/// Returns `(loss, dlogits)` where `dlogits` is the gradient of the mean
/// loss with respect to the logits (`(p - onehot) / batch`).
///
/// # Panics
/// Panics if a label is out of range or shapes are inconsistent.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[u32]) -> (f32, Tensor) {
    let classes = *logits.shape().last().expect("logits need a class dim");
    let batch = logits.len() / classes;
    assert_eq!(batch, labels.len(), "softmax_cross_entropy: batch mismatch");

    let mut probs = logits.clone();
    softmax_rows(probs.as_mut_slice(), batch, classes);

    let mut loss = 0.0;
    for (row, &label) in probs.as_slice().chunks(classes).zip(labels) {
        assert!((label as usize) < classes, "label {label} out of range");
        loss -= row[label as usize].max(1e-12).ln();
    }
    loss /= batch as f32;

    let inv_b = 1.0 / batch as f32;
    let mut grad = probs;
    for (row, &label) in grad.as_mut_slice().chunks_mut(classes).zip(labels) {
        row[label as usize] -= 1.0;
        row.iter_mut().for_each(|v| *v *= inv_b);
    }
    (loss, grad)
}

/// Fraction of rows whose top-1 prediction matches the label.
pub fn accuracy(logits: &Tensor, labels: &[u32]) -> f32 {
    top_k_accuracy(logits, labels, 1)
}

/// Fraction of rows whose label appears in the top-`k` predictions — the
/// paper's CNN metric is top-5.
pub fn top_k_accuracy(logits: &Tensor, labels: &[u32], k: usize) -> f32 {
    let classes = *logits.shape().last().expect("logits need a class dim");
    let batch = logits.len() / classes;
    assert_eq!(batch, labels.len(), "top_k_accuracy: batch mismatch");
    if batch == 0 {
        return 0.0;
    }
    let mut hits = 0;
    for (row, &label) in logits.as_slice().chunks(classes).zip(labels) {
        let target = row[label as usize];
        // Rank = number of strictly larger logits; ties resolved toward the
        // target (optimistic, matching tf.nn.in_top_k).
        let rank = row.iter().filter(|v| **v > target).count();
        if rank < k {
            hits += 1;
        }
    }
    hits as f32 / batch as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_log_classes_for_uniform_logits() {
        let logits = Tensor::zeros(vec![4, 10]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
        // Gradient: (0.1 - onehot)/4.
        assert!((grad.as_slice()[0] - (0.1 - 1.0) / 4.0).abs() < 1e-6);
        assert!((grad.as_slice()[1] - 0.1 / 4.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.0], vec![2, 3]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        for row in grad.as_slice().chunks(3) {
            assert!(row.iter().sum::<f32>().abs() < 1e-6);
        }
    }

    #[test]
    fn loss_gradcheck() {
        let logits = Tensor::from_vec(vec![0.2, -0.3, 0.7, 1.1, -0.5, 0.0], vec![2, 3]).unwrap();
        let labels = [1u32, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let (up, _) = softmax_cross_entropy(&lp, &labels);
            lp.as_mut_slice()[idx] -= 2.0 * eps;
            let (dn, _) = softmax_cross_entropy(&lp, &labels);
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (grad.as_slice()[idx] - numeric).abs() < 1e-3,
                "idx {idx}: {} vs {numeric}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn topk_accuracy_ranks_correctly() {
        let logits = Tensor::from_vec(
            vec![
                0.1, 0.9, 0.5, 0.3, // label 0: rank 3 (worst-ish)
                0.9, 0.1, 0.5, 0.3, // label 0: rank 1
            ],
            vec![2, 4],
        )
        .unwrap();
        let labels = [0u32, 0];
        assert_eq!(accuracy(&logits, &labels), 0.5);
        // Row 0's label sits at rank 3 (three larger logits), so it only
        // counts once k reaches 4.
        assert_eq!(top_k_accuracy(&logits, &labels, 3), 0.5);
        assert_eq!(top_k_accuracy(&logits, &labels, 4), 1.0);
    }

    #[test]
    fn correct_prediction_decreases_loss() {
        let good = Tensor::from_vec(vec![5.0, 0.0], vec![1, 2]).unwrap();
        let bad = Tensor::from_vec(vec![0.0, 5.0], vec![1, 2]).unwrap();
        let (lg, _) = softmax_cross_entropy(&good, &[0]);
        let (lb, _) = softmax_cross_entropy(&bad, &[0]);
        assert!(lg < lb);
    }
}
