//! Criterion: real read-path cost of the DataCache tiers (blob synthesis +
//! decode vs disk hit vs memory hit).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cloudtrain::datacache::decode::decode;
use cloudtrain::datacache::disk::DiskCache;
use cloudtrain::datacache::loader::LoaderConfig;
use cloudtrain::datacache::memcache::MemoryCache;
use cloudtrain::datacache::nfs::{synth_blob, SyntheticNfs};
use cloudtrain::datacache::timing::CpuModel;
use cloudtrain::datacache::CachedLoader;
use std::sync::Arc;

const PIXELS: usize = 96 * 96 * 3;

fn bench_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_tiers");

    group.bench_function("blob_synthesis", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            black_box(synth_blob(id, PIXELS, 1))
        })
    });

    group.bench_function("decode", |b| {
        let blob = synth_blob(7, PIXELS, 1);
        let cpu = CpuModel::default();
        b.iter(|| black_box(decode(&blob, &cpu).unwrap()))
    });

    group.bench_function("memcache_hit", |b| {
        let mut cache = MemoryCache::new(1 << 30);
        let blob = synth_blob(7, PIXELS, 1);
        let (sample, _) = decode(&blob, &CpuModel::default()).unwrap();
        cache.put(7, Arc::new(sample));
        b.iter(|| black_box(cache.get(7).unwrap().0.label))
    });

    group.bench_function("disk_hit", |b| {
        let dir = std::env::temp_dir().join(format!("ct-bench-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = DiskCache::open(&dir).unwrap();
        cache.put(7, &synth_blob(7, PIXELS, 1)).unwrap();
        b.iter(|| black_box(cache.get(7).unwrap().0.len()));
        let _ = std::fs::remove_dir_all(&dir);
    });

    group.bench_function("loader_steady_state", |b| {
        let mut loader = CachedLoader::new(
            SyntheticNfs::new(PIXELS, 1),
            None,
            LoaderConfig {
                use_disk: false,
                ..LoaderConfig::default()
            },
        );
        // Warm the memory tier.
        for id in 0..64 {
            loader.load(id);
        }
        let mut id = 0u64;
        b.iter(|| {
            id = (id + 1) % 64;
            black_box(loader.load(id).0.label)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_tiers);
criterion_main!(benches);
