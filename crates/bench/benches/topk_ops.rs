//! Criterion: real CPU wall time of the top-k operators (the Fig. 6
//! implementations) across vector sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cloudtrain::compress::dgc::Dgc;
use cloudtrain::compress::exact::{QuickTopK, SortTopK};
use cloudtrain::compress::quantize::{Qsgd, Quantizer, ScaledSign, TernGrad};
use cloudtrain::compress::randomk::RandomK;
use cloudtrain::compress::{Compressor, MsTopK, MsTopKNaive};
use cloudtrain::tensor::init;

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_ops");
    let mut rng = init::rng_from_seed(1);
    for d in [262_144usize, 1 << 21] {
        let x = init::gradient_like_tensor(d, &mut rng).into_vec();
        let k = (d / 1000).max(1);
        group.throughput(Throughput::Elements(d as u64));

        group.bench_with_input(BenchmarkId::new("sort_topk", d), &x, |b, x| {
            b.iter(|| black_box(SortTopK.compress(x, k)))
        });
        group.bench_with_input(BenchmarkId::new("quickselect_topk", d), &x, |b, x| {
            b.iter(|| black_box(QuickTopK.compress(x, k)))
        });
        group.bench_with_input(BenchmarkId::new("dgc", d), &x, |b, x| {
            let mut op = Dgc::new(0.01, 2);
            b.iter(|| black_box(op.compress(x, k)))
        });
        group.bench_with_input(BenchmarkId::new("mstopk_n30", d), &x, |b, x| {
            let mut op = MsTopK::new(30, 3);
            b.iter(|| black_box(op.compress(x, k)))
        });
        group.bench_with_input(BenchmarkId::new("mstopk_n10", d), &x, |b, x| {
            let mut op = MsTopK::new(10, 3);
            b.iter(|| black_box(op.compress(x, k)))
        });
        group.bench_with_input(BenchmarkId::new("randomk", d), &x, |b, x| {
            let mut op = RandomK::new(4);
            b.iter(|| black_box(op.compress(x, k)))
        });
    }
    group.finish();
}

/// Histogram-search MSTopK against the N-pass bisection it replaced, at
/// the paper's gradient scales (1M and 25M parameters). Both run the same
/// threshold refinement, so the gap is purely the count_ge pass count;
/// `scripts/bench_snapshot.sh` records the same comparison to
/// `BENCH_topk.json`.
fn bench_mstopk_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("mstopk_search");
    // The naive searcher needs ~1 s per 25M-element call; keep samples low.
    group.sample_size(3);
    let mut rng = init::rng_from_seed(7);
    for d in [1 << 20, 25_000_000usize] {
        let x = init::gradient_like_tensor(d, &mut rng).into_vec();
        let k = (d / 1000).max(1);
        group.throughput(Throughput::Elements(d as u64));

        group.bench_with_input(BenchmarkId::new("histogram_n30", d), &x, |b, x| {
            let mut op = MsTopK::new(30, 3);
            b.iter(|| black_box(op.compress(x, k)))
        });
        group.bench_with_input(BenchmarkId::new("naive_n30", d), &x, |b, x| {
            let mut op = MsTopKNaive::new(30, 3);
            b.iter(|| black_box(op.compress(x, k)))
        });
    }
    group.finish();
}

fn bench_quantizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantizers");
    let mut rng = init::rng_from_seed(2);
    let d = 1 << 20;
    let x = init::gradient_like_tensor(d, &mut rng).into_vec();
    group.throughput(Throughput::Elements(d as u64));

    group.bench_function("qsgd_127", |b| {
        let mut q = Qsgd::new(127, 1);
        b.iter(|| black_box(q.quantize(&x)))
    });
    group.bench_function("terngrad", |b| {
        let mut q = TernGrad::new(1);
        b.iter(|| black_box(q.quantize(&x)))
    });
    group.bench_function("scaled_sign", |b| {
        let mut q = ScaledSign;
        b.iter(|| black_box(q.quantize(&x)))
    });
    group.bench_function("decode", |b| {
        let g = Qsgd::new(127, 1).quantize(&x);
        b.iter(|| black_box(g.decode()))
    });
    group.finish();
}

criterion_group!(benches, bench_topk, bench_mstopk_search, bench_quantizers);
criterion_main!(benches);
