//! Criterion: LARS rate computation — single-worker full computation vs
//! PTO-partitioned over real worker threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cloudtrain::collectives::group::run_on_group;
use cloudtrain::dnn::model::ParamRange;
use cloudtrain::optim::lars::compute_rates;
use cloudtrain::optim::LarsConfig;
use cloudtrain::tensor::init;

/// Builds a ResNet-50-like layout: 161 layers over ~25M parameters.
fn layout(d: usize, layers: usize) -> Vec<ParamRange> {
    let base = d / layers;
    let mut ranges = Vec::with_capacity(layers);
    let mut off = 0;
    for l in 0..layers {
        let len = if l == layers - 1 { d - off } else { base };
        ranges.push(ParamRange { offset: off, len });
        off += len;
    }
    ranges
}

fn bench_lars(c: &mut Criterion) {
    let mut group = c.benchmark_group("pto_lars");
    group.sample_size(20);
    let d = 2_000_000;
    let layers = 161;
    let mut rng = init::rng_from_seed(9);
    let params = init::gradient_like_tensor(d, &mut rng).into_vec();
    let grads = init::gradient_like_tensor(d, &mut rng).into_vec();
    let ranges = layout(d, layers);
    let cfg = LarsConfig::default();

    group.bench_function("full_rates_single_worker", |b| {
        b.iter(|| black_box(compute_rates(&params, &grads, &ranges, &cfg)))
    });

    for workers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("pto_rates", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    run_on_group(workers, |peer| {
                        black_box(
                            cloudtrain::pto::lars_rates(peer, &params, &grads, &ranges, &cfg).len(),
                        )
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lars);
criterion_main!(benches);
