//! Criterion: the hot tensor kernels (the streaming passes MSTopK and the
//! collectives are built from).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cloudtrain::tensor::half::roundtrip_f16;
use cloudtrain::tensor::{init, ops};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_kernels");
    let mut rng = init::rng_from_seed(3);
    for d in [1usize << 16, 1 << 20] {
        let x = init::gradient_like_tensor(d, &mut rng).into_vec();
        let y = init::gradient_like_tensor(d, &mut rng).into_vec();
        group.throughput(Throughput::Elements(d as u64));

        group.bench_with_input(BenchmarkId::new("count_ge", d), &x, |b, x| {
            let thres = ops::mean_abs(x);
            b.iter(|| black_box(ops::count_ge(x, thres)))
        });
        group.bench_with_input(BenchmarkId::new("mean_abs", d), &x, |b, x| {
            b.iter(|| black_box(ops::mean_abs(x)))
        });
        group.bench_with_input(BenchmarkId::new("axpy", d), &x, |b, x| {
            let mut acc = y.clone();
            b.iter(|| {
                ops::axpy(0.5, x, &mut acc);
                black_box(acc[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("l2_norm", d), &x, |b, x| {
            b.iter(|| black_box(ops::l2_norm(x)))
        });
        group.bench_with_input(BenchmarkId::new("f16_roundtrip", d), &x, |b, x| {
            let mut buf = x.clone();
            b.iter(|| {
                buf.copy_from_slice(x);
                roundtrip_f16(&mut buf);
                black_box(buf[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("scatter_add_1pct", d), &x, |b, x| {
            let k = d / 100;
            let idx: Vec<u32> = (0..k as u32).map(|i| i * 100).collect();
            let vals: Vec<f32> = x.iter().step_by(100).take(k).copied().collect();
            let mut acc = vec![0.0f32; d];
            b.iter(|| {
                ops::scatter_add(&mut acc, &idx, &vals);
                black_box(acc[0])
            })
        });
    }
    group.finish();
}

/// Scalar vs simd lane tier, head to head in one binary. Both modules are
/// always compiled (the cargo feature only switches which one the
/// dispatching wrappers call), so the tier contrast is measurable
/// regardless of the feature set — and the tiers being bitwise identical,
/// any gap is pure throughput.
fn bench_lane_tiers(c: &mut Criterion) {
    use cloudtrain::compress::quantize::lanes;

    let mut group = c.benchmark_group("lane_tiers");
    let mut rng = init::rng_from_seed(5);
    let d = 1usize << 20;
    let x = init::gradient_like_tensor(d, &mut rng).into_vec();
    group.throughput(Throughput::Elements(d as u64));

    // scatter_add at 1% density: the HiTopK accumulation hot loop.
    let k = d / 100;
    let idx: Vec<u32> = (0..k as u32).map(|i| i * 100).collect();
    let vals: Vec<f32> = x.iter().step_by(100).take(k).copied().collect();
    type ScatterFn = fn(&mut [f32], &[u32], &[f32]);
    for (tier, scatter) in [
        ("scalar", ops::scalar::scatter_add as ScatterFn),
        ("simd", ops::simd::scatter_add as ScatterFn),
    ] {
        group.bench_function(&format!("scatter_add_1pct/{tier}"), |b| {
            let mut acc = vec![0.0f32; d];
            b.iter(|| {
                scatter(&mut acc, &idx, &vals);
                black_box(acc[0])
            })
        });
    }

    // Quantize (sign encode) and dequantize (code decode + fused
    // decode-accumulate): the ScaledSign / QSGD wire hot loops.
    let codes = lanes::scalar::sign_codes(&x);
    type SignFn = fn(&[f32]) -> Vec<i8>;
    type DecodeFn = fn(&[i8], f32) -> Vec<f32>;
    type AddDecodedFn = fn(&mut [f32], &[i8], f32);
    for (tier, sign, decode, add_decoded) in [
        (
            "scalar",
            lanes::scalar::sign_codes as SignFn,
            lanes::scalar::decode as DecodeFn,
            lanes::scalar::add_decoded as AddDecodedFn,
        ),
        (
            "simd",
            lanes::simd::sign_codes as SignFn,
            lanes::simd::decode as DecodeFn,
            lanes::simd::add_decoded as AddDecodedFn,
        ),
    ] {
        group.bench_function(&format!("quantize_sign/{tier}"), |b| {
            b.iter(|| black_box(sign(&x)))
        });
        group.bench_function(&format!("dequantize_decode/{tier}"), |b| {
            b.iter(|| black_box(decode(&codes, 0.25)))
        });
        group.bench_function(&format!("dequantize_accumulate/{tier}"), |b| {
            let mut acc = vec![0.0f32; d];
            b.iter(|| {
                add_decoded(&mut acc, &codes, 0.25);
                black_box(acc[0])
            })
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    use cloudtrain::dnn::conv::Conv2d;
    use cloudtrain::dnn::layer::Layer;
    use cloudtrain::tensor::Tensor;
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(20);
    let mut rng = init::rng_from_seed(8);
    let mut x = init::uniform_tensor(4 * 8 * 16 * 16, -1.0, 1.0, &mut rng);
    x.reshape(vec![4, 8, 16, 16]).unwrap();
    group.bench_function("direct_8x16_16x16", |b| {
        let mut conv = Conv2d::new(8, 16, 3, 1, &mut init::rng_from_seed(9));
        b.iter(|| {
            let y: Tensor = conv.forward(x.clone(), true);
            black_box(y.as_slice()[0])
        })
    });
    group.bench_function("im2col_8x16_16x16", |b| {
        let mut conv = Conv2d::new(8, 16, 3, 1, &mut init::rng_from_seed(9)).fast();
        b.iter(|| {
            let y: Tensor = conv.forward(x.clone(), true);
            black_box(y.as_slice()[0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_lane_tiers, bench_conv);
criterion_main!(benches);
