//! Criterion: the hot tensor kernels (the streaming passes MSTopK and the
//! collectives are built from).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cloudtrain::tensor::half::roundtrip_f16;
use cloudtrain::tensor::{init, ops};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_kernels");
    let mut rng = init::rng_from_seed(3);
    for d in [1usize << 16, 1 << 20] {
        let x = init::gradient_like_tensor(d, &mut rng).into_vec();
        let y = init::gradient_like_tensor(d, &mut rng).into_vec();
        group.throughput(Throughput::Elements(d as u64));

        group.bench_with_input(BenchmarkId::new("count_ge", d), &x, |b, x| {
            let thres = ops::mean_abs(x);
            b.iter(|| black_box(ops::count_ge(x, thres)))
        });
        group.bench_with_input(BenchmarkId::new("mean_abs", d), &x, |b, x| {
            b.iter(|| black_box(ops::mean_abs(x)))
        });
        group.bench_with_input(BenchmarkId::new("axpy", d), &x, |b, x| {
            let mut acc = y.clone();
            b.iter(|| {
                ops::axpy(0.5, x, &mut acc);
                black_box(acc[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("l2_norm", d), &x, |b, x| {
            b.iter(|| black_box(ops::l2_norm(x)))
        });
        group.bench_with_input(BenchmarkId::new("f16_roundtrip", d), &x, |b, x| {
            let mut buf = x.clone();
            b.iter(|| {
                buf.copy_from_slice(x);
                roundtrip_f16(&mut buf);
                black_box(buf[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("scatter_add_1pct", d), &x, |b, x| {
            let k = d / 100;
            let idx: Vec<u32> = (0..k as u32).map(|i| i * 100).collect();
            let vals: Vec<f32> = x.iter().step_by(100).take(k).copied().collect();
            let mut acc = vec![0.0f32; d];
            b.iter(|| {
                ops::scatter_add(&mut acc, &idx, &vals);
                black_box(acc[0])
            })
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    use cloudtrain::dnn::conv::Conv2d;
    use cloudtrain::dnn::layer::Layer;
    use cloudtrain::tensor::Tensor;
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(20);
    let mut rng = init::rng_from_seed(8);
    let mut x = init::uniform_tensor(4 * 8 * 16 * 16, -1.0, 1.0, &mut rng);
    x.reshape(vec![4, 8, 16, 16]).unwrap();
    group.bench_function("direct_8x16_16x16", |b| {
        let mut conv = Conv2d::new(8, 16, 3, 1, &mut init::rng_from_seed(9));
        b.iter(|| {
            let y: Tensor = conv.forward(x.clone(), true);
            black_box(y.as_slice()[0])
        })
    });
    group.bench_function("im2col_8x16_16x16", |b| {
        let mut conv = Conv2d::new(8, 16, 3, 1, &mut init::rng_from_seed(9)).fast();
        b.iter(|| {
            let y: Tensor = conv.forward(x.clone(), true);
            black_box(y.as_slice()[0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_conv);
criterion_main!(benches);
