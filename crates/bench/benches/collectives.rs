//! Criterion: the real in-process collectives (ring/tree/torus/HiTopKComm)
//! moving real bytes across 8 worker threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cloudtrain::collectives::group::run_on_group;
use cloudtrain::collectives::hierarchical::hitopk_all_reduce;
use cloudtrain::collectives::rhd::rhd_all_reduce;
use cloudtrain::collectives::ring::ring_all_reduce;
use cloudtrain::collectives::torus::torus_all_reduce;
use cloudtrain::collectives::tree::tree_all_reduce;
use cloudtrain::compress::MsTopK;
use cloudtrain::tensor::init;

const WORLD: usize = 8;
const M: usize = 2;
const N: usize = 4;

fn data_for(rank: usize, d: usize) -> Vec<f32> {
    let mut rng = init::rng_from_seed(5000 + rank as u64);
    init::uniform_tensor(d, -1.0, 1.0, &mut rng).into_vec()
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(20);
    for d in [1 << 14, 1 << 18] {
        group.throughput(Throughput::Elements((d * WORLD) as u64));

        group.bench_with_input(BenchmarkId::new("ring_all_reduce", d), &d, |b, &d| {
            let members: Vec<usize> = (0..WORLD).collect();
            b.iter(|| {
                run_on_group(WORLD, |peer| {
                    let mut x = data_for(peer.rank(), d);
                    ring_all_reduce(peer, &mut x, &members);
                    black_box(x[0])
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("tree_all_reduce", d), &d, |b, &d| {
            let members: Vec<usize> = (0..WORLD).collect();
            b.iter(|| {
                run_on_group(WORLD, |peer| {
                    let mut x = data_for(peer.rank(), d);
                    tree_all_reduce(peer, &mut x, &members);
                    black_box(x[0])
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("rhd_all_reduce", d), &d, |b, &d| {
            b.iter(|| {
                run_on_group(WORLD, |peer| {
                    let mut x = data_for(peer.rank(), d);
                    rhd_all_reduce(peer, &mut x);
                    black_box(x[0])
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("torus_all_reduce", d), &d, |b, &d| {
            b.iter(|| {
                run_on_group(WORLD, |peer| {
                    let mut x = data_for(peer.rank(), d);
                    torus_all_reduce(peer, &mut x, M, N);
                    black_box(x[0])
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("hitopk_rho01", d), &d, |b, &d| {
            b.iter(|| {
                run_on_group(WORLD, |peer| {
                    let mut x = data_for(peer.rank(), d);
                    let mut c = MsTopK::new(30, peer.rank() as u64);
                    hitopk_all_reduce(peer, &mut x, M, N, 0.01, &mut c);
                    black_box(x[0])
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
