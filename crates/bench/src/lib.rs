//! Shared helpers for the table/figure harness binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index) and prints (a) a
//! human-readable table and (b) a machine-readable JSON record via
//! [`emit_json`], so EXPERIMENTS.md can cite exact numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;

/// Prints a section header in a consistent style.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a `key: value` JSON record on one line, prefixed so it is easy
/// to grep out of the harness output.
pub fn emit_json<T: Serialize>(experiment: &str, value: &T) {
    match serde_json::to_string(value) {
        Ok(json) => println!("JSON {experiment} {json}"),
        Err(e) => eprintln!("JSON {experiment} serialization failed: {e}"),
    }
}

/// Formats seconds adaptively (s / ms / µs).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_picks_units() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5 us");
    }
}
