//! Table 4: system throughput at each DAWNBench input resolution
//! (96/128/224/288) with the per-stage strategy the paper uses, plus
//! single-GPU baselines and scaling efficiency.

use cloudtrain::engine::dawnbench::{evaluate_schedule, paper_schedule};
use cloudtrain::prelude::*;
use cloudtrain_bench::{emit_json, header};

fn main() {
    header("Table 4: throughput per DAWNBench resolution stage (128 GPUs)");
    println!(
        "{:<22} {:>7} {:>6} {:>12} {:>16} {:>7}",
        "input", "epochs", "BS", "single-GPU", "128-GPU", "SE"
    );
    let result = evaluate_schedule(clouds::tencent(16), &paper_schedule());
    for (stage, sched) in result.stages.iter().zip(paper_schedule()) {
        println!(
            "{:<22} {:>7} {:>6} {:>12.0} {:>16.0} {:>6.0}%",
            stage.name,
            stage.epochs,
            sched.profile.local_batch,
            stage.single_gpu,
            stage.system_throughput,
            stage.scaling_efficiency * 100.0
        );
    }
    println!(
        "\npaper anchors (Table 4): 366,208 (65%) @96; 269,696 (70%) @128;\n\
         131,712 (83%) @224; 72,960 (80%) @288."
    );
    emit_json("table4_resolutions", &result.stages);
}
