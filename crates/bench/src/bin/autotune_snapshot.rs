//! Deterministic autotuner snapshot: per-layer scheme decisions and
//! crossover points for every workload × topology cell, plus a *measured*
//! validation of the O(k)-vs-HiTopKComm traffic crossover on the real
//! collectives.
//!
//! Everything here is model-driven or byte-counting — no wall clock — so
//! two invocations must be byte-identical; `scripts/ci.sh gauntlet` runs
//! the binary twice, `cmp`s the full output, and snapshots
//! `BENCH_autotune.json`. The traffic-validation rows are the CI teeth:
//! at every (m, n, k̃) point where the cost model predicts an O(k) win
//! under overlapping selections, the real `ok_sparse_all_reduce_ef` must
//! move strictly fewer inter-node bytes than `hitopk_all_reduce_ef` on
//! the same heavy-hitter payloads.
//!
//! Output markers: the deterministic section sits between
//! `AUTOTUNE-BEGIN` / `AUTOTUNE-END`; the snapshot JSON rides a
//! `JSON autotune_snapshot {...}` line.

use cloudtrain::collectives::group::run_on_group;
use cloudtrain::collectives::hierarchical::hitopk_all_reduce_ef;
use cloudtrain::collectives::sparse_allreduce::ok_sparse_all_reduce_ef;
use cloudtrain::compress::exact::SortTopK;
use cloudtrain::compress::ErrorFeedback;
use cloudtrain::engine::autotune::{
    autotune_layers, wfbp_model_for, AutotuneConfig, CommModel, CommScheme, SCHEMES,
};
use cloudtrain::engine::trainer::{workload_layer_ranges, Workload};
use cloudtrain::prelude::*;
use cloudtrain::tensor::{init, partition};
use cloudtrain_bench::{emit_json, header};
use serde::Serialize;

#[derive(Serialize)]
struct CellRecord {
    workload: String,
    nodes: usize,
    gpus_per_node: usize,
    counts: [usize; 4],
    forced_totals_ms: [f64; 4],
    autotuned_total_ms: f64,
    global_choice: String,
    fused_compress_reduce: bool,
    sparse_min_params: Option<usize>,
    fused_max_shard_params: Option<usize>,
    oksparse_min_overlap: Option<f64>,
    wfbp_total_ms: f64,
}

#[derive(Serialize)]
struct TrafficRecord {
    nodes: usize,
    gpus_per_node: usize,
    dim: usize,
    rho: f64,
    k_per_shard: usize,
    predicted_hitopk_bytes: usize,
    predicted_oksparse_bytes: usize,
    measured_hitopk_bytes: usize,
    measured_oksparse_bytes: usize,
    oksparse_wins: bool,
}

#[derive(Serialize)]
struct Snapshot {
    benchmark: String,
    cells: Vec<CellRecord>,
    traffic: Vec<TrafficRecord>,
    crossover_points_validated: usize,
}

/// Gradient-like noise plus shared structural heavy hitters: every rank
/// boosts the same coordinate set, so the per-node top-k selections
/// overlap — the regime the autotuner's ω parameter models and the one
/// where O(k)'s merged lists stay O(k̃).
fn heavy_hitter_vec(rank: usize, d: usize) -> Vec<f32> {
    let mut rng = init::rng_from_seed(31_000 + rank as u64);
    let mut v = init::gradient_like_tensor(d, &mut rng).into_vec();
    for j in 0..d / 10 {
        let i = (j * 613) % d;
        let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
        v[i] += sign * 10.0 * ((j % 7) as f32 + 1.0);
    }
    v
}

/// Runs both sparse collectives on identical heavy-hitter payloads and
/// returns each family's per-GPU inter-node bytes (rank 0's; the tests
/// prove all ranks agree).
fn measure_traffic(m: usize, n: usize, d: usize, rho: f64) -> (usize, usize, usize) {
    let reports = run_on_group(m * n, move |peer| {
        let shard_len = partition::shards(d, n)[peer.rank() % n].len();
        let mut x = heavy_hitter_vec(peer.rank(), d);
        let mut c = SortTopK;
        let mut ef = ErrorFeedback::new(shard_len);
        let ok = ok_sparse_all_reduce_ef(peer, &mut x, m, n, rho, &mut c, &mut ef);
        let mut y = heavy_hitter_vec(peer.rank(), d);
        let mut ef2 = ErrorFeedback::new(shard_len);
        let hi = hitopk_all_reduce_ef(peer, &mut y, m, n, rho, &mut c, &mut ef2);
        (ok.inter_bytes_sent, hi.inter_bytes_sent, ok.k_per_shard)
    });
    reports[0]
}

fn main() {
    header("Per-layer autotuner snapshot (model-driven, deterministic)");

    let workloads = [
        ("mlp", Workload::Mlp),
        ("resnet", Workload::ResNetLite),
        ("vgg", Workload::VggLite),
        ("transformer", Workload::Transformer),
    ];
    let topologies = [(2usize, 4usize), (4, 4), (8, 8)];
    let cfg = AutotuneConfig::default();

    let mut cells = Vec::new();
    println!(
        "{:<12} {:>5} {:>5} {:>7} {:>7} {:>7} {:>7} {:>14} {:>7}",
        "workload", "m", "n", "dense", "staged", "fused", "ok", "choice", "fuse?"
    );
    for (name, workload) in workloads {
        let ranges = workload_layer_ranges(workload);
        for (m, n) in topologies {
            let mut spec = clouds::tencent(m);
            spec.gpus_per_node = n;
            let model = CommModel::new(spec);
            let report = autotune_layers(&ranges, &model, &cfg);
            let counts = report.counts();
            let wfbp = report.iteration_time(&wfbp_model_for(&ranges, &spec));
            println!(
                "{:<12} {:>5} {:>5} {:>7} {:>7} {:>7} {:>7} {:>14} {:>7}",
                name,
                m,
                n,
                counts[0],
                counts[1],
                counts[2],
                counts[3],
                report.global_choice().label(),
                report.fused_compress_reduce()
            );
            cells.push(CellRecord {
                workload: name.to_string(),
                nodes: m,
                gpus_per_node: n,
                counts,
                forced_totals_ms: [
                    report.forced_totals[0] * 1e3,
                    report.forced_totals[1] * 1e3,
                    report.forced_totals[2] * 1e3,
                    report.forced_totals[3] * 1e3,
                ],
                autotuned_total_ms: report.autotuned_total * 1e3,
                global_choice: report.global_choice().label().to_string(),
                fused_compress_reduce: report.fused_compress_reduce(),
                sparse_min_params: report.crossovers.sparse_min_params,
                fused_max_shard_params: report.crossovers.fused_max_shard_params,
                oksparse_min_overlap: report.crossovers.oksparse_min_overlap,
                wfbp_total_ms: wfbp.total * 1e3,
            });
        }
    }

    header("O(k) vs HiTopKComm traffic at model-predicted crossover points");
    println!(
        "{:>3} {:>3} {:>6} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "m", "n", "d", "rho", "k", "pred hi", "pred ok", "meas hi", "meas ok", "wins"
    );
    // Past the ω > 1/(m−1) crossover the model predicts an O(k) traffic
    // win from m ≥ 3; the heavy-hitter payloads realize high overlap, so
    // the measured byte counts must agree with the prediction's sign.
    let points = [
        (3usize, 2usize, 480usize, 0.05f64),
        (4, 2, 480, 0.05),
        (6, 2, 600, 0.05),
    ];
    let mut traffic = Vec::new();
    let mut validated = 0usize;
    for (m, n, d, rho) in points {
        let mut spec = clouds::tencent(m);
        spec.gpus_per_node = n;
        let model = CommModel::new(spec);
        let high_overlap = AutotuneConfig {
            rho,
            overlap: 0.9,
            ..cfg
        };
        let predicted_hi = model.inter_bytes(CommScheme::HiTopKStaged, d, &high_overlap) as usize;
        let predicted_ok = model.inter_bytes(CommScheme::OkSparse, d, &high_overlap) as usize;
        let (measured_ok, measured_hi, k) = measure_traffic(m, n, d, rho);
        let wins = measured_ok < measured_hi;
        println!(
            "{:>3} {:>3} {:>6} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>6}",
            m, n, d, rho, k, predicted_hi, predicted_ok, measured_hi, measured_ok, wins
        );
        assert!(
            predicted_ok < predicted_hi,
            "model must predict an O(k) win at (m={m}, overlap 0.9)"
        );
        assert!(
            wins,
            "measured O(k) bytes {measured_ok} not below hitopk {measured_hi} at (m={m}, n={n}, d={d})"
        );
        validated += 1;
        traffic.push(TrafficRecord {
            nodes: m,
            gpus_per_node: n,
            dim: d,
            rho,
            k_per_shard: k,
            predicted_hitopk_bytes: predicted_hi,
            predicted_oksparse_bytes: predicted_ok,
            measured_hitopk_bytes: measured_hi,
            measured_oksparse_bytes: measured_ok,
            oksparse_wins: wins,
        });
    }

    // Deterministic fingerprint section for the CI double-run `cmp` (the
    // whole stdout is compared; the markers make the contract explicit).
    println!("AUTOTUNE-BEGIN");
    for c in &cells {
        println!(
            "{} m={} n={} counts={:?} choice={} fused={}",
            c.workload,
            c.nodes,
            c.gpus_per_node,
            c.counts,
            c.global_choice,
            c.fused_compress_reduce
        );
    }
    for t in &traffic {
        println!(
            "traffic m={} n={} d={} hi={} ok={} wins={}",
            t.nodes,
            t.gpus_per_node,
            t.dim,
            t.measured_hitopk_bytes,
            t.measured_oksparse_bytes,
            t.oksparse_wins
        );
    }
    println!("schemes={:?}", SCHEMES.map(|s| s.label()));
    println!("AUTOTUNE-END");

    let snapshot = Snapshot {
        benchmark: "autotune_snapshot".to_string(),
        cells,
        traffic,
        crossover_points_validated: validated,
    };
    emit_json("autotune_snapshot", &snapshot);
}
