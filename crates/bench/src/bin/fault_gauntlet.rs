//! CI fault gauntlet: deterministic fault injection across seeds and
//! fault families.
//!
//! Three fault families (drops, latency spikes, stragglers) are each
//! replayed under 8 seeds against both resilience policies, checking on
//! every run that
//!
//! * the simulated timeline event log is **byte-identical** when the same
//!   `(plan, schedule)` pair is replayed,
//! * faults never make a schedule faster,
//! * the degrade policy's fault delay never exceeds the retry ladder's,
//! * the resilient collectives complete with all ranks bitwise in
//!   agreement, and the error-feedback ledger conserves gradient mass.
//!
//! The BSP-penalty-vs-resilience ablation rows (dense 2DTAR under the
//! retry ladder vs MSTopK/HiTopKComm under graceful degradation) are
//! emitted as JSON for the snapshot artifact.

use cloudtrain::prelude::*;
use cloudtrain::simnet::timeline::event_log;
use cloudtrain_bench::{emit_json, header};
use serde::Serialize;

const SEEDS: u64 = 8;

/// One fault family of the gauntlet.
struct Family {
    name: &'static str,
    plan: fn(u64) -> FaultPlan,
}

const FAMILIES: [Family; 3] = [
    Family {
        name: "drops",
        plan: |seed| FaultPlan::new(seed).with_drops(0.05),
    },
    Family {
        name: "spikes",
        plan: |seed| FaultPlan::new(seed).with_spikes(0.10, 2e-3),
    },
    Family {
        name: "stragglers",
        plan: |seed| {
            FaultPlan::new(seed)
                .straggle(0, 1.5)
                .straggle(1, 1.2)
                .degrade_link(0, 2.0, 0.0, 0.05)
        },
    },
];

#[derive(Serialize)]
struct Row {
    family: String,
    seed: u64,
    strategy: String,
    policy: String,
    makespan: f64,
    fault_delay: f64,
    drops: u64,
    retries: u64,
    escalations: u64,
    degraded: u64,
    spikes: u64,
    slowed: u64,
    straggler_seconds: f64,
    deterministic: bool,
}

/// Runs one (plan, policy, strategy) cell on the simulator and returns the
/// event log plus the makespan and counters.
fn run_sim(
    plan: &FaultPlan,
    policy: SimResilience,
    sparse: bool,
) -> (String, f64, cloudtrain::simnet::FaultCounters) {
    use cloudtrain::simnet::collectives::{sim_hitopk, sim_torus_all_reduce};
    let spec = clouds::tencent(4);
    let mut sim = NetSim::new(spec);
    sim.enable_trace();
    sim.inject_faults(plan.clone(), policy);
    if sparse {
        sim_hitopk(&mut sim, &spec, 1 << 18, 4, 0.01, 1e-4);
    } else {
        sim_torus_all_reduce(&mut sim, &spec, 1 << 20);
    }
    let log = event_log(sim.trace(), sim.fault_events());
    (log, sim.makespan(), sim.fault_counters())
}

/// Collectives-plane checks under the same seed: the resilient HiTopKComm
/// and O(k) sparse twins complete, ranks agree bitwise, re-runs are
/// identical, the two twins agree bitwise with each other, and the
/// error-feedback ledger conserves mass.
fn check_collectives(seed: u64) {
    use cloudtrain::collectives::resilience::{
        hitopk_all_reduce_ef_resilient, ResiliencePolicy, ResilientPeer,
    };
    use cloudtrain::collectives::sparse_allreduce::ok_sparse_all_reduce_ef_resilient;
    use cloudtrain::collectives::{CommFaults, CommScratch};
    use cloudtrain::compress::exact::SortTopK;
    use cloudtrain::tensor::{init, ops};

    let (m, n, d, rounds) = (2usize, 4usize, 256usize, 3usize);
    let faults = CommFaults::new(seed)
        .with_drops(0.01)
        .straggle(1, 0.7)
        .straggle(5, 0.7);
    let run = |ok_path: bool| {
        cloudtrain::collectives::group::run_on_group(m * n, |peer| {
            let mut rp = ResilientPeer::new(peer, faults.clone(), ResiliencePolicy::default());
            let shard_len = cloudtrain::tensor::partition::shard_for(d, n, peer.rank() % n).len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let mut applied = vec![0.0f32; d];
            for round in 0..rounds {
                let mut rng =
                    init::rng_from_seed(seed ^ ((peer.rank() as u64) << 8) ^ round as u64);
                let mut x = init::gradient_like_tensor(d, &mut rng).into_vec();
                if ok_path {
                    ok_sparse_all_reduce_ef_resilient(
                        &mut rp,
                        &mut x,
                        m,
                        n,
                        0.1,
                        &mut c,
                        &mut ef,
                        &mut scratch,
                    );
                } else {
                    hitopk_all_reduce_ef_resilient(
                        &mut rp,
                        &mut x,
                        m,
                        n,
                        0.1,
                        &mut c,
                        &mut ef,
                        &mut scratch,
                    );
                }
                ops::add_assign(&mut applied, &x);
            }
            (applied, ef.residual().to_vec(), rp.report())
        })
    };
    let a = run(false);
    let b = run(false);
    let o = run(true);
    let o2 = run(true);
    for (rank, (r1, r2)) in a.iter().zip(&b).enumerate() {
        assert_eq!(r1.0, r2.0, "seed {seed} rank {rank}: re-run diverged");
        assert_eq!(
            r1.1, r2.1,
            "seed {seed} rank {rank}: residual re-run diverged"
        );
    }
    for (rank, (r1, r2)) in o.iter().zip(&o2).enumerate() {
        assert_eq!(r1.0, r2.0, "seed {seed} rank {rank}: O(k) re-run diverged");
        assert_eq!(
            r1.1, r2.1,
            "seed {seed} rank {rank}: O(k) residual re-run diverged"
        );
    }
    // The O(k) twin replays the same compressor selections over the same
    // fault schedule, so its aggregate and residuals must match the
    // HiTopKComm path bit for bit — the mass ledger below covers both.
    for (rank, (rh, ro)) in a.iter().zip(&o).enumerate() {
        assert_eq!(
            rh.0, ro.0,
            "seed {seed} rank {rank}: O(k) aggregate differs from HiTopKComm"
        );
        assert_eq!(
            rh.1, ro.1,
            "seed {seed} rank {rank}: O(k) residual differs from HiTopKComm"
        );
    }
    for (rank, r) in a.iter().enumerate() {
        assert_eq!(
            r.0, a[0].0,
            "seed {seed}: rank {rank} disagrees with rank 0"
        );
    }
    // Mass ledger over the shards (see the resilience property tests).
    let chunks = cloudtrain::tensor::partition::shards(d, n);
    let mut entered = vec![0.0f32; d];
    for round in 0..rounds {
        for rank in 0..m * n {
            let mut rng = init::rng_from_seed(seed ^ ((rank as u64) << 8) ^ round as u64);
            let g = init::gradient_like_tensor(d, &mut rng).into_vec();
            ops::add_assign(&mut entered, &g);
        }
    }
    let mut left = a[0].0.clone();
    for i in 0..m {
        for (j, chunk) in chunks.iter().enumerate() {
            ops::add_assign(chunk.slice_mut(&mut left), &a[i * n + j].1);
        }
    }
    for (idx, (e, l)) in entered.iter().zip(&left).enumerate() {
        assert!(
            (e - l).abs() <= 1e-3 * (1.0 + e.abs()),
            "seed {seed}: mass leaked at coordinate {idx}: {e} vs {l}"
        );
    }
}

fn main() {
    header("CI fault gauntlet: 8 seeds x {drops, spikes, stragglers}");
    println!(
        "{:<12} {:>4} {:<8} {:<8} {:>11} {:>10} {:>6} {:>6} {:>8} {:>8}",
        "family",
        "seed",
        "strategy",
        "policy",
        "makespan",
        "fault ms",
        "drops",
        "retry",
        "escalate",
        "degrade"
    );
    let mut rows = Vec::new();
    for family in &FAMILIES {
        for seed in 0..SEEDS {
            let plan = (family.plan)(seed);
            for (strategy, policy, sparse) in [
                ("2dtar", SimResilience::default(), false),
                ("mstopk", SimResilience::degrading(), true),
            ] {
                let (log1, makespan, counters) = run_sim(&plan, policy, sparse);
                let (log2, makespan2, _) = run_sim(&plan, policy, sparse);
                assert_eq!(
                    log1, log2,
                    "{} seed {seed} {strategy}: timeline not byte-identical",
                    family.name
                );
                assert_eq!(makespan, makespan2);
                let (_, clean_makespan, _) = run_sim(&FaultPlan::new(seed), policy, sparse);
                assert!(
                    makespan >= clean_makespan - 1e-12,
                    "{} seed {seed} {strategy}: faults sped the schedule up",
                    family.name
                );
                let policy_name = match policy.mode {
                    DeadlineMode::Retry => "retry",
                    DeadlineMode::Degrade => "degrade",
                };
                println!(
                    "{:<12} {:>4} {:<8} {:<8} {:>10.4}s {:>10.3} {:>6} {:>6} {:>8} {:>8}",
                    family.name,
                    seed,
                    strategy,
                    policy_name,
                    makespan,
                    counters.fault_delay * 1e3,
                    counters.drops,
                    counters.retries,
                    counters.escalations,
                    counters.degraded
                );
                rows.push(Row {
                    family: family.name.to_string(),
                    seed,
                    strategy: strategy.to_string(),
                    policy: policy_name.to_string(),
                    makespan,
                    fault_delay: counters.fault_delay,
                    drops: counters.drops,
                    retries: counters.retries,
                    escalations: counters.escalations,
                    degraded: counters.degraded,
                    spikes: counters.spikes,
                    slowed: counters.slowed,
                    straggler_seconds: counters.straggler_seconds,
                    deterministic: true,
                });
            }
            // On the *same* schedule, abandoning a dropped hop after one
            // timeout can never pay more than retrying it to completion.
            let (_, _, retry) = run_sim(&plan, SimResilience::default(), false);
            let (_, _, degrade) = run_sim(&plan, SimResilience::degrading(), false);
            assert!(
                degrade.fault_delay <= retry.fault_delay + 1e-12,
                "{} seed {seed}: degrade delay {} > retry delay {}",
                family.name,
                degrade.fault_delay,
                retry.fault_delay
            );
        }
    }
    for seed in 0..SEEDS {
        check_collectives(seed);
    }
    println!(
        "collectives plane: {SEEDS} seeds passed completion, rank-agreement,\n\
         re-run determinism, O(k)-vs-HiTopKComm bitwise identity and\n\
         mass-conservation checks"
    );
    emit_json("fault_gauntlet", &rows);
}
