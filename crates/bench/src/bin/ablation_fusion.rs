//! Ablation: tensor-fusion threshold under wait-free backprop.
//!
//! Sweeps the bucket threshold for ResNet-50's 161 layers on the 25GbE
//! cluster (2DTAR-class collective cost) and prints the classic U-shape:
//! per-layer collectives drown in latency, one giant bucket forfeits all
//! overlap, and a megabyte-scale threshold sits at the bottom.

use cloudtrain::engine::fusion::{plan_buckets, WfbpModel};
use cloudtrain::prelude::*;
use cloudtrain::simnet::collectives::sim_torus_all_reduce;
use cloudtrain_bench::{emit_json, fmt_secs, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    threshold_bytes: usize,
    buckets: usize,
    total_s: f64,
    exposed_comm_s: f64,
}

fn main() {
    header("Ablation: tensor fusion threshold (ResNet-50, 16x8 GPUs, 2DTAR)");

    let profile = ModelProfile::resnet50_224();
    let spec = clouds::tencent(16);

    // Synthesise 161 layer ranges with ResNet-like skew (conv layers of
    // growing width plus one fat FC layer at the end of forward order).
    let mut ranges = Vec::new();
    let mut off = 0usize;
    for l in 0..profile.layers {
        let len = if l == profile.layers - 1 {
            profile.params - off
        } else {
            // Growing channel widths through the network.
            20_000 + l * 1_500
        };
        ranges.push(cloudtrain::dnn::model::ParamRange { offset: off, len });
        off += len;
    }

    // Calibrate the per-bucket collective cost from the simulator: fit
    // alpha/beta from two sizes of the 2DTAR collective (FP16).
    let time_of = |bytes: usize| {
        let mut sim = NetSim::new(spec);
        sim_torus_all_reduce(&mut sim, &spec, bytes).total
    };
    let (b1, b2) = (1 << 20, 32 << 20);
    let (t1, t2) = (time_of(b1), time_of(b2));
    let beta = (t2 - t1) / (b2 - b1) as f64;
    // The per-collective cost is the network alpha plus the framework's
    // per-tensor overhead (Horovod negotiates every tensor across all
    // workers before launching NCCL — the ~1 ms/op cost that motivated
    // tensor fusion in the first place).
    const FRAMEWORK_OP_OVERHEAD: f64 = 1e-3;
    let alpha = (t1 - beta * b1 as f64) + FRAMEWORK_OP_OVERHEAD;

    // Backward pass ≈ 2/3 of FF&BP.
    let backward = profile.iter_compute_seconds() * 2.0 / 3.0;
    let model = WfbpModel::uniform(profile.layers, backward, alpha, beta);

    println!(
        "{:>14} {:>9} {:>12} {:>14}",
        "threshold", "buckets", "iteration", "exposed comm"
    );
    let mut rows = Vec::new();
    for threshold in [
        1usize, // per-layer (no fusion)
        256 << 10,
        1 << 20,
        4 << 20,
        16 << 20,
        usize::MAX, // single bucket (full fusion)
    ] {
        let buckets = plan_buckets(&ranges, 2, threshold);
        let t = model.iteration_time(&buckets);
        let label = if threshold == usize::MAX {
            "full".to_string()
        } else if threshold == 1 {
            "per-layer".to_string()
        } else {
            format!("{} KiB", threshold >> 10)
        };
        println!(
            "{:>14} {:>9} {:>12} {:>14}",
            label,
            t.collectives,
            fmt_secs(t.total),
            fmt_secs(t.exposed_comm)
        );
        rows.push(Row {
            threshold_bytes: threshold,
            buckets: t.collectives,
            total_s: t.total,
            exposed_comm_s: t.exposed_comm,
        });
    }
    let best = rows
        .iter()
        .min_by(|a, b| a.total_s.partial_cmp(&b.total_s).unwrap())
        .unwrap();
    println!(
        "\nshape check: the sweet spot sits at a megabyte-scale threshold\n\
         (best here: {} buckets, {}), between the latency-bound per-layer\n\
         schedule and the overlap-free single bucket — the tensor-fusion\n\
         result the paper inherits from MG-WFBP.",
        best.buckets,
        fmt_secs(best.total_s)
    );
    emit_json("ablation_fusion", &rows);
}
