//! Table 3: system throughput (samples/s) and scaling efficiency of
//! Dense-SGD, 2DTAR-SGD and MSTopK-SGD on the 128-GPU cluster for
//! ResNet-50 (224 and 96), VGG-19 and the Transformer.

use cloudtrain::prelude::*;
use cloudtrain_bench::{emit_json, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    throughput: [f64; 3],
    scaling_eff: [f64; 3],
}

fn main() {
    header("Table 3: 128-GPU throughput and scaling efficiency");
    println!(
        "{:<22} | {:>9} {:>9} {:>9} | {:>7} {:>7} {:>7}",
        "model", "Dense", "2DTAR", "MSTopK", "SE-D%", "SE-2D%", "SE-MS%"
    );
    let cluster = clouds::tencent(16);
    let strategies = [
        Strategy::DenseTreeAr,
        Strategy::DenseTorus,
        Strategy::mstopk_default(),
    ];
    let mut rows = Vec::new();
    for profile in [
        ModelProfile::resnet50_224(),
        ModelProfile::resnet50_96(),
        ModelProfile::vgg19(),
        ModelProfile::transformer(),
    ] {
        let mut throughput = [0.0; 3];
        let mut se = [0.0; 3];
        for (i, strategy) in strategies.iter().enumerate() {
            let system = SystemConfig {
                strategy: *strategy,
                datacache: true,
                pto: true,
            };
            let m = IterationModel::new(cluster, system, profile.clone());
            throughput[i] = m.throughput();
            se[i] = m.scaling_efficiency();
        }
        println!(
            "{:<22} | {:>9.0} {:>9.0} {:>9.0} | {:>6.1} {:>6.1} {:>6.1}",
            profile.name,
            throughput[0],
            throughput[1],
            throughput[2],
            se[0] * 100.0,
            se[1] * 100.0,
            se[2] * 100.0
        );
        rows.push(Row {
            model: profile.name.clone(),
            throughput,
            scaling_eff: se,
        });
    }
    println!(
        "\npaper anchors (Table 3, SE%): ResNet-224 43.5/91.4/90.6; ResNet-96\n\
         20.1/56.7/70.5; VGG-19 25/66.4/80.4; Transformer 16.5/61.6/87.8.\n\
         shape: MSTopK-SGD wins everywhere except ResNet-224, where compute\n\
         hides 2DTAR's communication and the compression overhead tips the\n\
         balance (paper: \"2DTAR-SGD is slightly faster ... because the\n\
         computing time is long enough to overlap some communication\")."
    );
    emit_json("table3_throughput", &rows);
}
