//! Ablation: MSTopK's sampling count `N` (the paper fixes N = 30).
//!
//! Sweeps N and reports (a) selection quality — how much of the exact
//! top-k magnitude mass the approximate selection captures and how tight
//! the threshold bracket [k1, k2] is — and (b) the modelled GPU cost,
//! which grows linearly in N. N ≈ 30 sits where quality saturates.

use cloudtrain::compress::exact::topk_sort;
use cloudtrain::compress::gpu_cost::{mstopk_cost, GpuRates};
use cloudtrain::compress::MsTopK;
use cloudtrain::tensor::init;
use cloudtrain_bench::{emit_json, fmt_secs, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    samplings: usize,
    mass_ratio: f32,
    bracket_k1: usize,
    bracket_k2: usize,
    modelled_gpu_s: f64,
}

fn main() {
    header("Ablation: MSTopK sampling count N (d = 4M, k = 0.001 d)");
    let d = 4_000_000;
    let k = d / 1000;
    let mut rng = init::rng_from_seed(77);
    let x = init::gradient_like_tensor(d, &mut rng).into_vec();
    let exact_mass = topk_sort(&x, k).abs_mass();
    let rates = GpuRates::default();

    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>14}",
        "N", "mass ratio", "k1", "k2", "GPU model"
    );
    let mut rows = Vec::new();
    for n in [2usize, 5, 10, 20, 30, 60] {
        let mut op = MsTopK::new(n, 7);
        let (sel, stats) = op.select_with_stats(&x, k);
        let mass_ratio = sel.abs_mass() / exact_mass;
        let cost = mstopk_cost(d, k, n, &rates).seconds;
        println!(
            "{:>4} {:>11.4} {:>12} {:>12} {:>14}",
            n,
            mass_ratio,
            stats.k1,
            stats.k2,
            fmt_secs(cost)
        );
        rows.push(Row {
            samplings: n,
            mass_ratio,
            bracket_k1: stats.k1,
            bracket_k2: stats.k2,
            modelled_gpu_s: cost,
        });
    }
    println!(
        "\nshape check: the bracket tightens and the captured mass saturates by\n\
         N ≈ 20–30 while cost keeps growing linearly — N = 30 (the paper's\n\
         choice) buys near-exact selections at negligible cost."
    );
    emit_json("ablation_mstopk_n", &rows);
}
