//! Figure 10: convergence comparison of Dense-SGD (2DTAR), TopK-SGD and
//! MSTopK-SGD — real distributed training (8 workers as 2 nodes × 4) on
//! the synthetic CNN and Transformer tasks, printing per-epoch validation
//! accuracy curves.

use cloudtrain::prelude::*;
use cloudtrain_bench::{emit_json, header};
use serde::Serialize;

#[derive(Serialize)]
struct Curve {
    workload: String,
    strategy: String,
    val_top1: Vec<f32>,
    val_top5: Vec<f32>,
    train_loss: Vec<f32>,
}

fn run(workload: Workload, name: &str, epochs: usize, lr: f32) -> Vec<Curve> {
    header(&format!("Figure 10: convergence on {name}"));
    println!("{:<12} per-epoch validation top-1 (%)", "strategy");
    let mut curves = Vec::new();
    for strategy in [
        Strategy::DenseTorus,
        Strategy::TopKNaiveAg { rho: 0.03 },
        Strategy::MsTopKHiTopK {
            rho: 0.03,
            samplings: 30,
        },
    ] {
        let cfg = DistConfig {
            epochs,
            iters_per_epoch: 12,
            lr,
            ..DistConfig::small(strategy, workload)
        };
        let report = DistTrainer::new(cfg).run();
        let accs: Vec<String> = report
            .epochs
            .iter()
            .map(|e| format!("{:5.1}", e.val_top1 * 100.0))
            .collect();
        println!("{:<12} {}", report.strategy, accs.join(" "));
        curves.push(Curve {
            workload: name.to_string(),
            strategy: report.strategy.clone(),
            val_top1: report.epochs.iter().map(|e| e.val_top1).collect(),
            val_top5: report.epochs.iter().map(|e| e.val_top5).collect(),
            train_loss: report.epochs.iter().map(|e| e.train_loss).collect(),
        });
    }
    curves
}

fn main() {
    let mut all = Vec::new();
    all.extend(run(Workload::ResNetLite, "ResNet-lite (CNN)", 5, 0.08));
    all.extend(run(Workload::VggLite, "VGG-lite (CNN)", 5, 0.08));
    all.extend(run(Workload::Transformer, "TinyTransformer", 5, 0.02));
    println!(
        "\nshape check: all three algorithms converge; the sparsified runs\n\
         trail the dense run in early epochs and close most of the gap\n\
         (paper Fig. 10 / Table 2)."
    );
    emit_json("fig10_convergence", &all);
}
