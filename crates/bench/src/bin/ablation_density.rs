//! Ablation: density ρ. Sweeps ρ over the end-to-end throughput model
//! (MSTopK-SGD on ResNet-50 @96 and the Transformer) and over real
//! convergence (MLP task), exposing the accuracy/throughput trade-off
//! behind the paper's ρ = 0.01 and behind its decision to switch to dense
//! aggregation for the high-resolution DAWNBench epochs.

use cloudtrain::prelude::*;
use cloudtrain_bench::{emit_json, header};
use serde::Serialize;

#[derive(Serialize)]
struct PerfRow {
    model: String,
    rho: f64,
    scaling_eff: f64,
}

#[derive(Serialize)]
struct ConvRow {
    rho: f64,
    epoch1_top1: f32,
    final_top1: f32,
}

fn main() {
    header("Ablation: density vs scaling efficiency (MSTopK-SGD, 128 GPUs)");
    println!("{:<22} {:>8} {:>8}", "model", "rho", "SE");
    let cluster = clouds::tencent(16);
    let mut perf_rows = Vec::new();
    for profile in [ModelProfile::resnet50_96(), ModelProfile::transformer()] {
        for rho in [0.001, 0.01, 0.05, 0.1, 0.25] {
            let m = IterationModel::new(
                cluster,
                SystemConfig {
                    strategy: Strategy::MsTopKHiTopK { rho, samplings: 30 },
                    datacache: true,
                    pto: true,
                },
                profile.clone(),
            );
            let se = m.scaling_efficiency();
            println!("{:<22} {:>8} {:>7.1}%", profile.name, rho, se * 100.0);
            perf_rows.push(PerfRow {
                model: profile.name.clone(),
                rho,
                scaling_eff: se,
            });
        }
    }
    emit_json("ablation_density_perf", &perf_rows);

    header("Ablation: density vs convergence (real training, 8 workers)");
    println!("{:>8} {:>14} {:>12}", "rho", "epoch-1 top1", "final top1");
    let mut conv_rows = Vec::new();
    for rho in [0.01, 0.03, 0.1, 0.3] {
        let cfg = DistConfig {
            epochs: 4,
            iters_per_epoch: 12,
            ..DistConfig::small(Strategy::MsTopKHiTopK { rho, samplings: 30 }, Workload::Mlp)
        };
        let report = DistTrainer::new(cfg).run();
        let first = report.epochs.first().unwrap().val_top1;
        let last = report.final_top1();
        println!(
            "{:>8} {:>13.1}% {:>11.1}%",
            rho,
            first * 100.0,
            last * 100.0
        );
        conv_rows.push(ConvRow {
            rho,
            epoch1_top1: first,
            final_top1: last,
        });
    }
    println!(
        "\nshape check: lower density -> higher scaling efficiency but slower\n\
         early convergence — the trade the paper navigates by using MSTopK\n\
         only for the warmup epochs of the DAWNBench run."
    );
    emit_json("ablation_density_conv", &conv_rows);
}
