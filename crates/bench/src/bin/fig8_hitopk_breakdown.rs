//! Figure 8: time breakdown of HiTopKComm's four steps for the two models
//! the paper highlights — ResNet-50 (25M parameters) and the Transformer
//! (110M parameters) — at several densities, FP32 elements.

use cloudtrain::compress::gpu_cost::{mstopk_cost, GpuRates};
use cloudtrain::prelude::*;
use cloudtrain::simnet::collectives::sim_hitopk;
use cloudtrain_bench::{emit_json, fmt_secs, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    rho: f64,
    intra_reduce_scatter: f64,
    topk: f64,
    inter_all_gather: f64,
    intra_all_gather: f64,
    total: f64,
}

fn main() {
    header("Figure 8: HiTopKComm step breakdown (16 nodes x 8 GPUs, FP32)");
    println!(
        "{:<24} {:>7} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "model", "rho", "intra RS", "top-k", "inter AG", "intra AG", "total"
    );
    let spec = clouds::tencent(16);
    let rates = GpuRates::default();
    let mut rows = Vec::new();
    for (model, d) in [
        ("ResNet-50 (25M)", 25_000_000usize),
        ("Transformer (110M)", 110_000_000),
    ] {
        for rho in [0.001, 0.01, 0.05] {
            let shard = d / 8;
            let k = ((d as f64 * rho / 8.0) as usize).max(1);
            let topk_s = mstopk_cost(shard, k, 30, &rates).seconds;
            let mut sim = NetSim::new(spec);
            let t = sim_hitopk(&mut sim, &spec, d, 4, rho, topk_s);
            let p: Vec<f64> = t.phases.iter().map(|p| p.seconds).collect();
            println!(
                "{:<24} {:>7} {:>12} {:>10} {:>12} {:>12} {:>10}",
                model,
                rho,
                fmt_secs(p[0]),
                fmt_secs(p[1]),
                fmt_secs(p[2]),
                fmt_secs(p[3]),
                fmt_secs(t.total)
            );
            rows.push(Row {
                model: model.to_string(),
                rho,
                intra_reduce_scatter: p[0],
                topk: p[1],
                inter_all_gather: p[2],
                intra_all_gather: p[3],
                total: t.total,
            });
        }
    }
    println!(
        "\nshape check: the inter-node AllGather dominates at every density;\n\
         MSTopK compression and the intra-node steps are negligible (paper Fig. 8)."
    );
    emit_json("fig8_hitopk_breakdown", &rows);
}
