//! Differential gates for the O(k) sparse allreduce variants: reordered,
//! deadline-bounded, and quantized-wire.
//!
//! Each variant ships with an equivalence contract against the plain EF
//! twin, and this harness checks them end-to-end on a simulated `m * n`
//! group:
//!
//! * `ef_reordered` with the identity node order is bitwise identical to
//!   the plain EF collective (any other order may permute float reduction
//!   order, never the selected set);
//! * `ef_deadline` under a clean plan (generous budget, no jitter) is
//!   bitwise identical to the plain EF collective and misses nothing;
//! * `ef_quantized` keeps all replicas bitwise identical, is itself
//!   deterministic across two runs, and never charges more inter-node
//!   bytes than the FP32 split it replaces.

use cloudtrain::collectives::deadline::{DeadlineFaults, DeadlinePolicy};
use cloudtrain::collectives::sparse_allreduce::{
    ok_sparse_all_reduce_ef, ok_sparse_all_reduce_ef_deadline, ok_sparse_all_reduce_ef_quantized,
    ok_sparse_all_reduce_ef_reordered,
};
use cloudtrain::collectives::CommScratch;
use cloudtrain::compress::exact::SortTopK;
use cloudtrain::compress::quantize::Qsgd;
use cloudtrain::compress::ErrorFeedback;
use cloudtrain::prelude::run_on_group;
use cloudtrain::tensor::partition::shard_for;
use cloudtrain::tensor::{init, ops};
use cloudtrain_bench::{emit_json, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: &'static str,
    gate: &'static str,
    m: usize,
    n: usize,
    d: usize,
    passed: bool,
}

fn vec_for(rank: usize, d: usize) -> Vec<f32> {
    let mut rng = init::rng_from_seed(14_000 + rank as u64);
    init::gradient_like_tensor(d, &mut rng).into_vec()
}

fn shard_len(d: usize, n: usize, rank: usize) -> usize {
    shard_for(d, n, rank % n).len()
}

fn plain_ef(m: usize, n: usize, d: usize, rho: f64) -> Vec<(Vec<f32>, Vec<f32>)> {
    run_on_group(m * n, move |peer| {
        let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
        let mut c = SortTopK;
        let mut x = vec_for(peer.rank(), d);
        ok_sparse_all_reduce_ef(peer, &mut x, m, n, rho, &mut c, &mut ef);
        (x, ef.residual().to_vec())
    })
}

fn main() {
    header("O(k) sparse allreduce variant gates (reordered / deadline / quantized)");
    let (m, n, d, rho) = (3usize, 2usize, 480usize, 0.1f64);
    let mut rows = Vec::new();

    let baseline = plain_ef(m, n, d, rho);

    // Gate 1: identity-order reordered twin is the plain EF twin, bitwise.
    let identity: Vec<usize> = (0..m).collect();
    let reordered = run_on_group(m * n, move |peer| {
        let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
        let mut c = SortTopK;
        let mut scratch = CommScratch::new();
        let mut x = vec_for(peer.rank(), d);
        ok_sparse_all_reduce_ef_reordered(
            peer,
            &mut x,
            m,
            n,
            rho,
            &mut c,
            &mut ef,
            &identity,
            &mut scratch,
        );
        (x, ef.residual().to_vec())
    });
    let ok = reordered == baseline;
    println!("  reordered identity-order == plain ef (bitwise): {ok}");
    assert!(
        ok,
        "identity-order reordered diverged from the plain EF twin"
    );
    rows.push(Row {
        variant: "ef_reordered",
        gate: "identity_order_bitwise",
        m,
        n,
        d,
        passed: ok,
    });

    // Gate 2: clean-plan deadline twin is the plain EF twin, bitwise, with
    // zero misses.
    let policy = DeadlinePolicy::from_link(5e-5, 4e-10, 8 * d, 1e6);
    let faults = DeadlineFaults::new(3);
    let deadline = run_on_group(m * n, move |peer| {
        let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
        let mut c = SortTopK;
        let mut scratch = CommScratch::new();
        let mut x = vec_for(peer.rank(), d);
        let (_, drep) = ok_sparse_all_reduce_ef_deadline(
            peer,
            &mut x,
            m,
            n,
            rho,
            &mut c,
            &mut ef,
            0,
            &faults,
            &policy,
            &mut scratch,
        );
        assert_eq!(drep.missed, 0, "clean plan must not miss");
        (x, ef.residual().to_vec())
    });
    let ok = deadline == baseline;
    println!("  deadline clean-plan  == plain ef (bitwise): {ok}");
    assert!(ok, "clean-plan deadline diverged from the plain EF twin");
    rows.push(Row {
        variant: "ef_deadline",
        gate: "clean_plan_bitwise",
        m,
        n,
        d,
        passed: ok,
    });

    // Gate 3: quantized twin — replica agreement, two-run determinism, and
    // a wire bill no larger than the FP32 split it replaces.
    let run_quantized = || {
        run_on_group(m * n, move |peer| {
            let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
            let mut c = SortTopK;
            let mut q = Qsgd::new(127, 77);
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            let rep = ok_sparse_all_reduce_ef_quantized(
                peer,
                &mut x,
                m,
                n,
                rho,
                &mut c,
                &mut q,
                &mut ef,
                &mut scratch,
            );
            (x, rep.inter_bytes_sent)
        })
    };
    let first = run_quantized();
    let second = run_quantized();
    let replicas_agree = (1..m * n).all(|r| first[0].0 == first[r].0);
    let deterministic = first == second;
    println!("  quantized replicas bitwise identical: {replicas_agree}");
    println!("  quantized two-run determinism:        {deterministic}");
    assert!(replicas_agree, "quantized replicas diverged");
    assert!(
        deterministic,
        "quantized twin is not run-to-run deterministic"
    );
    let exact_rep = run_on_group(m * n, move |peer| {
        let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
        let mut c = SortTopK;
        let mut x = vec_for(peer.rank(), d);
        ok_sparse_all_reduce_ef(peer, &mut x, m, n, rho, &mut c, &mut ef)
    });
    let cheaper = first[0].1 <= exact_rep[0].inter_bytes_sent;
    println!(
        "  quantized wire bytes {} <= fp32 split {}: {cheaper}",
        first[0].1, exact_rep[0].inter_bytes_sent
    );
    assert!(cheaper, "quantized wire format costs more than FP32");
    // The lossy wire defers mass, it does not lose it: the aggregate stays
    // close to the exact-valued one.
    let norm = ops::l2_norm(&baseline[0].0).max(1e-6);
    let diff: f32 = baseline[0]
        .0
        .iter()
        .zip(&first[0].0)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt();
    println!("  quantized rel error vs exact: {:.4}", diff / norm);
    assert!(
        diff / norm < 0.15,
        "quantized aggregate drifted off the exact one"
    );
    rows.push(Row {
        variant: "ef_quantized",
        gate: "replicas_determinism_wire",
        m,
        n,
        d,
        passed: replicas_agree && deterministic && cheaper,
    });

    emit_json("oksparse_variants", &rows);
    println!("\nall variant gates hold: the reordered/deadline/quantized twins keep\ntheir equivalence contracts against the plain EF collective.");
}
