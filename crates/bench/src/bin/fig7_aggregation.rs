//! Figure 7: data-aggregation time of NaiveAG, TreeAR, 2DTAR and
//! HiTopKComm on the 16-node / 128-GPU cluster, FP16 elements, ρ = 0.01,
//! across message sizes. Also prints the Table 1 cloud presets the
//! simulation is parameterised by.

use cloudtrain::prelude::*;
use cloudtrain::simnet::collectives as simc;
use cloudtrain_bench::{emit_json, fmt_secs, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    elements: usize,
    naive_ag: f64,
    tree_ar: f64,
    torus_ar: f64,
    hitopk: f64,
}

fn main() {
    header("Table 1: cloud instance presets behind the simulation");
    println!(
        "{:<10} {:>18} {:>14} {:>16}",
        "cloud", "instance", "network", "eff. inter bw"
    );
    for (cloud, instance, gbps, spec) in [
        ("AWS", "p3.16xlarge", 25.0, clouds::aws(16)),
        ("Aliyun", "gn6e (32GbE)", 32.0, clouds::aliyun(16)),
        ("Tencent", "18XLARGE320", 25.0, clouds::tencent(16)),
    ] {
        println!(
            "{:<10} {:>18} {:>11} Gbps {:>12.2} GB/s",
            cloud,
            instance,
            gbps,
            1.0 / spec.inter.beta / 1e9
        );
    }

    header("Figure 7: aggregation time (16 nodes x 8 GPUs, FP16, rho = 0.01)");
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12}",
        "elements", "NaiveAG", "TreeAR", "2DTAR", "HiTopKComm"
    );
    let spec = clouds::tencent(16);
    let mut rows = Vec::new();
    let mut d = 1usize << 21;
    while d <= 1 << 27 {
        let mut sim = NetSim::new(spec);
        let naive = simc::sim_naive_sparse_all_gather(&mut sim, &spec, (d / 100).max(1)).total;
        sim.reset();
        let tree = simc::sim_tree_all_reduce_hier(&mut sim, &spec, d * 2).total;
        sim.reset();
        let torus = simc::sim_torus_all_reduce(&mut sim, &spec, d * 2).total;
        sim.reset();
        let hitopk = simc::sim_hitopk(&mut sim, &spec, d, 2, 0.01, 1e-3).total;
        println!(
            "{:>12} {:>12} {:>12} {:>12} {:>12}",
            d,
            fmt_secs(naive),
            fmt_secs(tree),
            fmt_secs(torus),
            fmt_secs(hitopk)
        );
        rows.push(Row {
            elements: d,
            naive_ag: naive,
            tree_ar: tree,
            torus_ar: torus,
            hitopk,
        });
        d *= 2;
    }
    println!(
        "\nshape check: HiTopKComm < 2DTAR < TreeAR < NaiveAG at every size\n\
         (the paper's Fig. 7 ordering)."
    );
    emit_json("fig7_aggregation", &rows);
}
