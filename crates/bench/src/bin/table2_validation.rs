//! Table 2: final validation performance of 2DTAR-SGD (dense), TopK-SGD
//! and MSTopK-SGD on the CNN and Transformer workloads — real distributed
//! training to (near-)convergence on the synthetic tasks.
//!
//! Substitution note (DESIGN.md): the paper reports ImageNet top-5 and WMT
//! BLEU; the synthetic stand-ins report top-5/top-1 accuracy on held-out
//! samples. The *comparison* across algorithms is what Fig. 10 / Table 2
//! establish, and it transfers: dense ≥ MSTopK ≈ TopK, with the sparse
//! methods slightly behind at a fixed epoch budget.

use cloudtrain::prelude::*;
use cloudtrain_bench::{emit_json, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    dense_2dtar: f32,
    topk: f32,
    mstopk: f32,
}

fn final_acc(strategy: Strategy, workload: Workload, epochs: usize, lr: f32) -> f32 {
    let cfg = DistConfig {
        epochs,
        iters_per_epoch: 12,
        lr,
        ..DistConfig::small(strategy, workload)
    };
    // Top-1 at a fixed epoch budget: the synthetic tasks saturate quickly,
    // so the paper's "slight accuracy loss at a fixed budget" effect is
    // visible in top-1 before saturation (the budgets below stop there).
    DistTrainer::new(cfg).run().final_top1()
}

fn main() {
    header("Table 2: validation performance at a fixed epoch budget (top-1)");
    println!(
        "{:<18} {:>12} {:>12} {:>12}",
        "model", "2DTAR-SGD", "TopK-SGD", "MSTopK-SGD"
    );
    let mut rows = Vec::new();
    for (workload, name, epochs, lr) in [
        (Workload::ResNetLite, "ResNet-lite", 3, 0.08),
        (Workload::VggLite, "VGG-lite", 3, 0.08),
        (Workload::Transformer, "TinyTransformer", 4, 0.02),
    ] {
        let dense = final_acc(Strategy::DenseTorus, workload, epochs, lr);
        let topk = final_acc(Strategy::TopKNaiveAg { rho: 0.03 }, workload, epochs, lr);
        let mstopk = final_acc(
            Strategy::MsTopKHiTopK {
                rho: 0.03,
                samplings: 30,
            },
            workload,
            epochs,
            lr,
        );
        println!(
            "{:<18} {:>11.2}% {:>11.2}% {:>11.2}%",
            name,
            dense * 100.0,
            topk * 100.0,
            mstopk * 100.0
        );
        rows.push(Row {
            workload: name.to_string(),
            dense_2dtar: dense,
            topk,
            mstopk,
        });
    }
    println!(
        "\npaper anchors (Table 2): ResNet-50 93.31 / 92.68 / 93.12; the dense run\n\
         leads slightly and MSTopK-SGD matches or beats TopK-SGD on CNNs thanks to\n\
         dense intra-node aggregation."
    );
    emit_json("table2_validation", &rows);
}
