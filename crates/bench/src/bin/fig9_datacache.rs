//! Figure 9: training iteration time with and without DataCache on
//! ResNet-50 at 96×96 — reported from *both* planes:
//!
//! * the iteration model (the Fig. 9 numbers proper), and
//! * the real cache implementation (`cloudtrain-datacache`): a full
//!   two-epoch run through the NFS → disk → memory path with virtual-time
//!   accounting, demonstrating the same >10× I/O collapse mechanically.

use cloudtrain::datacache::loader::LoaderConfig;
use cloudtrain::datacache::pipeline::overlapped_iteration_time;
use cloudtrain::datacache::CachedLoader;
use cloudtrain::datacache::SyntheticNfs;
use cloudtrain::prelude::*;
use cloudtrain_bench::{emit_json, fmt_secs, header};
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    naive_io_s: f64,
    naive_total_s: f64,
    cached_io_s: f64,
    cached_total_s: f64,
    io_reduction: f64,
    throughput_gain: f64,
}

fn main() {
    header("Figure 9 (iteration model): ResNet-50 @ 96x96, single V100");
    let cluster = clouds::tencent(1);
    let profile = ModelProfile::resnet50_96();
    let run = |datacache: bool| {
        IterationModel::new(
            cluster,
            SystemConfig {
                strategy: Strategy::DenseTorus,
                datacache,
                pto: false,
            },
            profile.clone(),
        )
        .breakdown()
    };
    let naive = run(false);
    let cached = run(true);
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "variant", "I/O", "compute", "iteration"
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "Naive",
        fmt_secs(naive.io),
        fmt_secs(naive.ffbp),
        fmt_secs(naive.total)
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "DataCache",
        fmt_secs(cached.io),
        fmt_secs(cached.ffbp),
        fmt_secs(cached.total)
    );
    // Raw pipeline time of the cached path (it is fully hidden behind
    // compute, so the *visible* column above shows zero).
    let cached_pipeline = profile.local_batch as f64 * 4.0 * profile.sample_bytes as f64
        / cloudtrain::engine::perf::MEMCACHE_BW;
    let summary = Summary {
        naive_io_s: naive.io,
        naive_total_s: naive.total,
        cached_io_s: cached_pipeline,
        cached_total_s: cached.total,
        io_reduction: naive.io / cached_pipeline,
        throughput_gain: naive.total / cached.total,
    };
    println!(
        "raw I/O reduced {:.0}x (and fully hidden), throughput improved {:.2}x\n\
         (paper: >10x and ~2x)",
        summary.io_reduction, summary.throughput_gain
    );
    emit_json("fig9_model", &summary);

    header("Figure 9 (real cache implementation): 2 epochs x 512 samples");
    let pixels = 96 * 96 * 3;
    let cache_dir = std::env::temp_dir().join(format!("cloudtrain-fig9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let run_real = |use_cache: bool| -> Vec<f64> {
        let cfg = LoaderConfig {
            use_disk: use_cache,
            use_memory: use_cache,
            ..LoaderConfig::default()
        };
        let disk = use_cache
            .then(|| cloudtrain::datacache::disk::DiskCache::open(&cache_dir).expect("cache dir"));
        let mut loader = CachedLoader::new(SyntheticNfs::new(pixels, 9), disk, cfg);
        let mut epochs = Vec::new();
        for _epoch in 0..2 {
            loader.reset_stats();
            for id in 0..512u64 {
                loader.load(id);
            }
            epochs.push(loader.stats().total_seconds());
        }
        epochs
    };
    let naive_epochs = run_real(false);
    let cached_epochs = run_real(true);
    println!(
        "{:<12} {:>14} {:>14}",
        "variant", "epoch 1 I/O", "epoch 2 I/O"
    );
    println!(
        "{:<12} {:>14} {:>14}",
        "Naive",
        fmt_secs(naive_epochs[0]),
        fmt_secs(naive_epochs[1])
    );
    println!(
        "{:<12} {:>14} {:>14}",
        "DataCache",
        fmt_secs(cached_epochs[0]),
        fmt_secs(cached_epochs[1])
    );
    let compute = 512.0 / profile.single_gpu_throughput;
    println!(
        "steady-state iteration (512-sample window, overlapped): naive {} vs cached {}",
        fmt_secs(overlapped_iteration_time(naive_epochs[1], compute)),
        fmt_secs(overlapped_iteration_time(cached_epochs[1], compute)),
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
}
