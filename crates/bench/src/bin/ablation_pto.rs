//! Ablation: the parallel tensor operator. Reproduces §5.4's LARS
//! numbers (11 ms → 7 ms on ResNet-50, 30 ms → 14 ms on the Transformer)
//! and sweeps worker count / compute size to locate the crossover where
//! the AllGather stops paying for itself.

use cloudtrain::engine::perf::PTO_ALL_GATHER_SECONDS;
use cloudtrain::prelude::*;
use cloudtrain::pto::cost::PtoCost;
use cloudtrain_bench::{emit_json, fmt_secs, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    without_pto_s: f64,
    with_pto_s: f64,
    speedup: f64,
}

fn main() {
    header("PTO for LARS on 128 GPUs (paper §5.4)");
    println!(
        "{:<22} {:>12} {:>12} {:>9}",
        "model", "plain LARS", "PTO LARS", "speedup"
    );
    let mut rows = Vec::new();
    for profile in [ModelProfile::resnet50_224(), ModelProfile::transformer()] {
        let c = PtoCost {
            full_compute: profile.lars_seconds,
            workers: 128,
            all_gather: PTO_ALL_GATHER_SECONDS,
        };
        println!(
            "{:<22} {:>12} {:>12} {:>8.2}x",
            profile.name,
            fmt_secs(c.without_pto()),
            fmt_secs(c.with_pto()),
            c.speedup()
        );
        rows.push(Row {
            model: profile.name.clone(),
            without_pto_s: c.without_pto(),
            with_pto_s: c.with_pto(),
            speedup: c.speedup(),
        });
    }
    println!(
        "paper anchors: 11 ms -> 7 ms (ResNet-50) and 30 ms -> 14 ms\n\
         (Transformer), both ~2x."
    );
    emit_json("ablation_pto_lars", &rows);

    header("PTO crossover: when does the AllGather stop paying off?");
    println!(
        "{:>9} {:>14} {:>14} {:>10}",
        "workers", "compute", "break-even AG", "PTO wins?"
    );
    for workers in [2usize, 8, 32, 128] {
        for compute in [1e-3, 11e-3, 30e-3] {
            let c = PtoCost {
                full_compute: compute,
                workers,
                all_gather: PTO_ALL_GATHER_SECONDS,
            };
            println!(
                "{:>9} {:>14} {:>14} {:>10}",
                workers,
                fmt_secs(compute),
                fmt_secs(c.break_even_all_gather()),
                if c.pto_wins() { "yes" } else { "no" }
            );
        }
    }
    println!(
        "\nshape check: PTO loses for millisecond-scale ops on small clusters\n\
         (the AllGather dominates) and wins once the replicated compute\n\
         exceeds the collective's cost — exactly Eq. 13/14's condition."
    );
}
