//! Figure 1: time breakdown of one training iteration under the existing
//! training schemes (Dense-SGD and TopK-SGD, no DataCache / no PTO) on the
//! 128-GPU cloud cluster, for ResNet-50 at 224x224 and 96x96.

use cloudtrain::prelude::*;
use cloudtrain_bench::{emit_json, fmt_secs, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheme: String,
    resolution: &'static str,
    io: f64,
    ffbp: f64,
    compression: f64,
    comm_visible: f64,
    lars: f64,
    total: f64,
}

fn main() {
    header("Figure 1: iteration time breakdown of existing training schemes");
    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "input", "I/O", "FF&BP", "top-k", "comm", "LARS", "total"
    );

    let cluster = clouds::tencent(16);
    let mut rows = Vec::new();
    for (profile, resolution) in [
        (ModelProfile::resnet50_224(), "224x224"),
        (ModelProfile::resnet50_96(), "96x96"),
    ] {
        // TopK-SGD in Fig. 1 runs at the classic DGC density rho = 0.001
        // (the density §5.2 benchmarks), which is what makes its
        // communication far cheaper than the dense baseline's.
        for strategy in [Strategy::DenseTreeAr, Strategy::TopKNaiveAg { rho: 0.001 }] {
            // Fig. 1 shows the *baseline* systems: no DataCache, no PTO.
            let system = SystemConfig {
                strategy,
                datacache: false,
                pto: false,
            };
            let b = IterationModel::new(cluster, system, profile.clone()).breakdown();
            println!(
                "{:<12} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                strategy.label(),
                resolution,
                fmt_secs(b.io),
                fmt_secs(b.ffbp),
                fmt_secs(b.compression),
                fmt_secs(b.comm_visible),
                fmt_secs(b.lars),
                fmt_secs(b.total)
            );
            rows.push(Row {
                scheme: strategy.label().to_string(),
                resolution,
                io: b.io,
                ffbp: b.ffbp,
                compression: b.compression,
                comm_visible: b.comm_visible,
                lars: b.lars,
                total: b.total,
            });
        }
    }

    println!(
        "\npaper anchors: FF&BP 0.204 s and top-k overhead 0.239 s at 224x224;\n\
         I/O and communication dominate; LARS becomes relatively significant at 96x96."
    );
    emit_json("fig1_breakdown", &rows);
}
