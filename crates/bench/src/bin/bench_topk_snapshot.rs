//! Snapshot benchmark for the tentpole MSTopK change: single-pass
//! histogram threshold search vs the seed's N-pass bisection
//! (`MsTopKNaive`), at the paper's gradient scales (1M and 25M elements,
//! k = 0.001 d, N = 30 refinement steps).
//!
//! Run via `scripts/bench_snapshot.sh`; writes a machine-readable record
//! to `BENCH_topk.json` (or the path given as the first argument). The
//! acceptance bar for the PR is a >= 5x histogram speedup at d = 25M.

use cloudtrain::compress::{Compressor, MsTopK, MsTopKNaive, SparseGrad};
use cloudtrain::tensor::init;
use cloudtrain_bench::{fmt_secs, header};
use serde::Serialize;
use std::time::Instant;

const SAMPLINGS: usize = 30;
const SEED: u64 = 3;

#[derive(Serialize)]
struct SizeRecord {
    elements: usize,
    k: usize,
    samplings: usize,
    reps: usize,
    naive_best_s: f64,
    histogram_best_s: f64,
    speedup: f64,
    selections_identical: bool,
}

#[derive(Serialize)]
struct Snapshot {
    benchmark: String,
    note: String,
    sizes: Vec<SizeRecord>,
}

/// Best-of-`reps` wall time of `f` after one warmup call.
fn best_of<F: FnMut() -> SparseGrad>(reps: usize, mut f: F) -> (f64, SparseGrad) {
    let mut sel = f(); // warmup (also the value we hand back)
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        sel = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, sel)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_topk.json".to_string());

    header("MSTopK threshold search: histogram (1 pass) vs naive (N passes)");
    println!(
        "{:>12} {:>10} {:>14} {:>14} {:>9} {:>10}",
        "elements", "k", "naive", "histogram", "speedup", "identical"
    );

    let mut rng = init::rng_from_seed(11);
    let mut sizes = Vec::new();
    for d in [1_000_000usize, 25_000_000] {
        let x = init::gradient_like_tensor(d, &mut rng).into_vec();
        let k = d / 1000;
        let reps = 3;

        let (t_naive, sel_naive) = best_of(reps, || {
            let mut op = MsTopKNaive::new(SAMPLINGS, SEED);
            op.compress(&x, k)
        });
        let (t_hist, sel_hist) = best_of(reps, || {
            let mut op = MsTopK::new(SAMPLINGS, SEED);
            op.compress(&x, k)
        });

        // The histogram search is designed to be bitwise identical to the
        // naive bisection; record that the snapshot run confirms it.
        let identical =
            sel_naive.indices == sel_hist.indices && sel_naive.values == sel_hist.values;
        let speedup = t_naive / t_hist;
        println!(
            "{:>12} {:>10} {:>14} {:>14} {:>8.1}x {:>10}",
            d,
            k,
            fmt_secs(t_naive),
            fmt_secs(t_hist),
            speedup,
            identical
        );
        sizes.push(SizeRecord {
            elements: d,
            k,
            samplings: SAMPLINGS,
            reps,
            naive_best_s: t_naive,
            histogram_best_s: t_hist,
            speedup,
            selections_identical: identical,
        });
    }

    let snapshot = Snapshot {
        benchmark: "mstopk_histogram_vs_naive".to_string(),
        note: format!(
            "best-of-3 wall time, fresh operator per call (seed {SEED}), \
             N = {SAMPLINGS} refinement steps, k = 0.001 d"
        ),
        sizes,
    };
    match serde_json::to_string(&snapshot) {
        Ok(json) => {
            std::fs::write(&out_path, json + "\n").expect("write snapshot file");
            println!("\nwrote {out_path}");
        }
        Err(e) => {
            eprintln!("snapshot serialization failed: {e}");
            std::process::exit(1);
        }
    }

    let worst = snapshot_floor(&snapshot);
    println!("minimum speedup across sizes: {worst:.1}x");
}

/// Smallest speedup over the measured sizes (the acceptance number).
fn snapshot_floor(s: &Snapshot) -> f64 {
    s.sizes
        .iter()
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min)
}
