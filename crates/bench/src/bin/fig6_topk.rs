//! Figure 6: top-k operator time — `nn.topk` (exact) vs DGC
//! (double sampling) vs MSTopK — for vector lengths 256K to 128M with
//! k = 0.001 d.
//!
//! Two views are reported:
//! * the **V100 cost model** (the Fig. 6 substitute: pass counts at each
//!   access pattern's effective bandwidth — see
//!   `cloudtrain_compress::gpu_cost`), and
//! * **real CPU wall time** of this crate's implementations on smaller
//!   sizes, confirming the same ordering holds mechanically.

use cloudtrain::compress::dgc::Dgc;
use cloudtrain::compress::exact::SortTopK;
use cloudtrain::compress::gpu_cost::{dgc_cost, exact_topk_cost, mstopk_cost, GpuRates};
use cloudtrain::compress::{Compressor, MsTopK};
use cloudtrain::tensor::init;
use cloudtrain_bench::{emit_json, fmt_secs, header};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ModelRow {
    elements: usize,
    exact_s: f64,
    dgc_s: f64,
    mstopk_s: f64,
}

fn main() {
    header("Figure 6 (modelled V100): top-k operator time, k = 0.001 d, N = 30");
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "elements", "nn.topk", "DGC", "MSTopK"
    );
    let rates = GpuRates::default();
    let mut rows = Vec::new();
    let mut d = 256_000usize;
    while d <= 132_000_000 {
        let k = (d / 1000).max(1);
        let exact = exact_topk_cost(d, &rates).seconds;
        let dgc = dgc_cost(d, k, 0.01, &rates).seconds;
        let ms = mstopk_cost(d, k, 30, &rates).seconds;
        println!(
            "{:>12} {:>14} {:>14} {:>14}",
            d,
            fmt_secs(exact),
            fmt_secs(dgc),
            fmt_secs(ms)
        );
        rows.push(ModelRow {
            elements: d,
            exact_s: exact,
            dgc_s: dgc,
            mstopk_s: ms,
        });
        d *= 2;
    }
    emit_json("fig6_gpu_model", &rows);

    header("Figure 6 (real CPU wall time of this crate's implementations)");
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>10}",
        "elements", "sort-topk", "DGC", "MSTopK", "mass ratio"
    );
    let mut rng = init::rng_from_seed(6);
    for d in [256_000usize, 1_000_000, 4_000_000] {
        let x = init::gradient_like_tensor(d, &mut rng).into_vec();
        let k = d / 1000;

        let time_of = |f: &mut dyn FnMut() -> cloudtrain::compress::SparseGrad| {
            let start = Instant::now();
            let s = f();
            (start.elapsed().as_secs_f64(), s)
        };
        let (t_sort, exact_sel) = time_of(&mut || SortTopK.compress(&x, k));
        let mut dgc = Dgc::new(0.01, 1);
        let (t_dgc, _) = time_of(&mut || dgc.compress(&x, k));
        let mut ms = MsTopK::new(30, 2);
        let (t_ms, ms_sel) = time_of(&mut || ms.compress(&x, k));
        println!(
            "{:>12} {:>14} {:>14} {:>14} {:>9.3}",
            d,
            fmt_secs(t_sort),
            fmt_secs(t_dgc),
            fmt_secs(t_ms),
            ms_sel.abs_mass() / exact_sel.abs_mass()
        );
    }
    println!(
        "\nnote: on CPU the exact-selection penalty is much smaller than on a GPU\n\
         (quickselect is cache-friendly; there is no coalescing to lose), so DGC's\n\
         tiny sampled selection beats MSTopK's 32 full passes here — the paper's\n\
         ordering (MSTopK < DGC < nn.topk) is a GPU-memory-access effect, which\n\
         the cost model above reproduces. The full sort (`nn.topk`) is slowest\n\
         everywhere, and MSTopK captures ~100% of the exact top-k mass."
    );
}
