//! The DAWNBench argument executed end to end with *real learning*:
//! combine the convergence plane (actual multi-phase training) with the
//! performance plane (modelled per-iteration time at cluster scale) and
//! measure virtual time-to-accuracy for three schedules:
//!
//! * **paper**  — MSTopK-SGD warmup, then dense 2DTAR (the §5.6 recipe),
//! * **dense**  — 2DTAR throughout (fast convergence per epoch, slow epochs
//!   in the warmup regime),
//! * **sparse** — MSTopK throughout (fast epochs, slower convergence).
//!
//! The paper schedule should reach the accuracy target in the least
//! virtual time — the mechanism behind Table 5, now with real gradients.

use cloudtrain::prelude::*;
use cloudtrain_bench::{emit_json, header};
use serde::Serialize;

const TARGET: f32 = 0.90;
const WARMUP_EPOCHS: usize = 2;
const TOTAL_EPOCHS: usize = 8;

#[derive(Serialize)]
struct Row {
    schedule: String,
    epochs_to_target: Option<usize>,
    virtual_seconds_to_target: Option<f64>,
    final_top1: f32,
}

/// Modelled per-iteration seconds at cluster scale for a phase: the warmup
/// epochs stand in for the low-resolution stage (96²), the rest for the
/// full-resolution stage (224²).
///
/// Scale substitution: the small synthetic task needs ρ = 0.05 to converge
/// (its gradients are far less redundant than ImageNet's), while the
/// cluster-scale run uses the paper's ρ = 0.01 — so the time model charges
/// the paper density.
fn iter_seconds(strategy: Strategy, warmup: bool) -> f64 {
    let profile = if warmup {
        ModelProfile::resnet50_96()
    } else {
        ModelProfile::resnet50_224()
    };
    let modelled = match strategy {
        Strategy::MsTopKHiTopK { .. } => Strategy::mstopk_default(),
        other => other,
    };
    IterationModel::new(
        clouds::tencent(16),
        SystemConfig {
            strategy: modelled,
            datacache: true,
            pto: true,
        },
        profile,
    )
    .breakdown()
    .total
}

fn main() {
    header("DAWNBench with real learning: virtual time to 90% top-1");
    let mstopk = Strategy::MsTopKHiTopK {
        rho: 0.05,
        samplings: 30,
    };
    let schedules: Vec<(&str, Vec<(Strategy, usize)>)> = vec![
        (
            "paper (sparse warmup -> dense)",
            vec![
                (mstopk, WARMUP_EPOCHS),
                (Strategy::DenseTorus, TOTAL_EPOCHS - WARMUP_EPOCHS),
            ],
        ),
        (
            "dense-only (2DTAR)",
            vec![(Strategy::DenseTorus, TOTAL_EPOCHS)],
        ),
        ("sparse-only (MSTopK)", vec![(mstopk, TOTAL_EPOCHS)]),
    ];

    // The Transformer task converges slowly enough that the target lands
    // *after* the warmup — which is where the three schedules genuinely
    // diverge (sparse-only keeps paying its convergence tax, dense-only
    // already paid for expensive warmup epochs).
    let base_cfg = DistConfig {
        epochs: TOTAL_EPOCHS,
        iters_per_epoch: 10,
        lr: 0.02,
        ..DistConfig::small(Strategy::DenseTorus, Workload::Transformer)
    };

    println!(
        "{:<32} {:>8} {:>14} {:>10}",
        "schedule", "epochs", "virtual time", "final"
    );
    let mut rows = Vec::new();
    for (name, phases) in schedules {
        let report = DistTrainer::new(base_cfg.clone()).run_phases(&phases);

        // Accumulate virtual wall-clock: each epoch charges its phase's
        // modelled iteration time x iterations.
        let mut elapsed = 0.0f64;
        let mut hit: Option<(usize, f64)> = None;
        for (epoch, metrics) in report.epochs.iter().enumerate() {
            let (strategy, _) = phases
                .iter()
                .scan(0usize, |acc, &(s, e)| {
                    *acc += e;
                    Some((s, *acc))
                })
                .find(|&(_, end)| epoch < end)
                .expect("epoch within phases");
            let warmup = epoch < WARMUP_EPOCHS;
            elapsed += base_cfg.iters_per_epoch as f64 * iter_seconds(strategy, warmup);
            if hit.is_none() && metrics.val_top1 >= TARGET {
                hit = Some((epoch + 1, elapsed));
            }
        }
        match hit {
            Some((e, t)) => println!(
                "{:<32} {:>8} {:>12.1} s {:>9.1}%",
                name,
                e,
                t,
                report.final_top1() * 100.0
            ),
            None => println!(
                "{:<32} {:>8} {:>14} {:>9.1}%",
                name,
                "-",
                "not reached",
                report.final_top1() * 100.0
            ),
        }
        rows.push(Row {
            schedule: name.to_string(),
            epochs_to_target: hit.map(|(e, _)| e),
            virtual_seconds_to_target: hit.map(|(_, t)| t),
            final_top1: report.final_top1(),
        });
    }
    println!(
        "\nshape check: the mixed schedule reaches the target fastest in\n\
         virtual time — sparse epochs are cheap where dense cannot scale\n\
         (warmup), dense epochs convert better once compute dominates —\n\
         the exact trade Table 5 monetises."
    );
    emit_json("dawnbench_convergence", &rows);
}
