//! Ablation: the compression-method landscape (§6's related work).
//!
//! Trains the same task with all six aggregation strategies — two dense,
//! three sparsified (per-worker top-k, hierarchical MSTopK, global
//! top-k) and one quantized (QSGD) — and reports convergence alongside
//! each scheme's modelled wire cost on the 128-GPU cluster, so the
//! accuracy/traffic frontier is visible in one table.

use cloudtrain::prelude::*;
use cloudtrain_bench::{emit_json, fmt_secs, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    strategy: String,
    epoch1_top1: f32,
    final_top1: f32,
    comm_seconds_128gpu: f64,
}

fn main() {
    header("Ablation: compression methods — convergence vs modelled comm cost");
    println!(
        "{:<12} {:>14} {:>12} {:>20}",
        "strategy", "epoch-1 top1", "final top1", "128-GPU comm (25M)"
    );

    let strategies = [
        Strategy::DenseTreeAr,
        Strategy::DenseTorus,
        Strategy::TopKNaiveAg { rho: 0.03 },
        Strategy::MsTopKHiTopK {
            rho: 0.03,
            samplings: 30,
        },
        Strategy::GTopK { rho: 0.03 },
        Strategy::Qsgd { levels: 127 },
    ];
    let cluster = clouds::tencent(16);
    let mut rows = Vec::new();
    for strategy in strategies {
        let cfg = DistConfig {
            epochs: 4,
            iters_per_epoch: 12,
            ..DistConfig::small(strategy, Workload::Mlp)
        };
        let report = DistTrainer::new(cfg).run();
        let comm = IterationModel::new(
            cluster,
            SystemConfig {
                strategy,
                datacache: true,
                pto: true,
            },
            ModelProfile::resnet50_224(),
        )
        .breakdown()
        .comm_total;
        println!(
            "{:<12} {:>13.1}% {:>11.1}% {:>20}",
            report.strategy,
            report.epochs[0].val_top1 * 100.0,
            report.final_top1() * 100.0,
            fmt_secs(comm)
        );
        rows.push(Row {
            strategy: report.strategy.clone(),
            epoch1_top1: report.epochs[0].val_top1,
            final_top1: report.final_top1(),
            comm_seconds_128gpu: comm,
        });
    }
    println!(
        "\nshape check: dense schemes anchor accuracy; sparsified/quantized schemes\n\
         trade early accuracy for traffic. Crucially, compression alone is not\n\
         enough: the flat AllGather paths (TopK-SGD, QSGD) *grow with P* and end\n\
         up costlier than dense 2DTAR at 128 GPUs — only the hierarchy-aware\n\
         schemes (2DTAR, HiTopKComm) fit the cloud fabric, which is the paper's\n\
         central argument for combining MSTopK *with* HiTopKComm."
    );
    emit_json("ablation_compressors", &rows);
}
