//! CI tail gauntlet: p50/p95/p99 makespan under deadline-bounded
//! aggregation vs the retry ladder.
//!
//! The fault gauntlet (`fault_gauntlet.rs`) pins *correctness* under
//! faults; this harness pins the *tail*. Across the same 8-seed × 3-family
//! sweep it compares two policies on the simulator:
//!
//! * the reliable **retry** ladder (dense) / **degrade** timeout (sparse)
//!   — bounded loss, unbounded latency, and
//! * the **deadline** budget (`SimResilience::deadline_bounded`): every
//!   inter-node hop gets `mult × (α + bytes·β)` derived from a
//!   [`probe_pairwise`] pass over the clean fabric, and a hop that would
//!   land beyond the budget is abandoned at the boundary (partial
//!   aggregates; safe under error feedback on the sparse path).
//!
//! The straggler family here degrades a node's NIC 8× (a mild 2× slowdown
//! is cheaper to ride out than to abandon, and with the 1.5× budget it
//! correctly does *not* trip the deadline). p50/p95/p99 makespans are
//! published as first-class `cloudtrain-obs` gauges and snapshotted into
//! `BENCH_tails.json`, where `scripts/ci.sh gauntlet` enforces
//!
//! * byte-identical output across two runs,
//! * the dense deadline twin bitwise-matching the clean run when no
//!   deadline fires, and
//! * the pinned p99 ceiling: deadline p99 beats retry p99 on the dense
//!   straggler family by a fixed margin.
//!
//! The same probe feeds the rank-reordering optimizer on a rack-scrambled
//! cost model (interleaved placement: cross-rack links 2×α / 3×β); the
//! predicted ring-cost gain of the optimized order is reported alongside.

use cloudtrain::collectives::{optimize_ring_order, PairCost};
use cloudtrain::obs::{gauge_percentiles, percentile, Registry};
use cloudtrain::prelude::*;
use cloudtrain::simnet::collectives::{
    sim_hitopk, sim_torus_all_reduce, sim_torus_all_reduce_reordered,
};
use cloudtrain::simnet::probe_pairwise;
use cloudtrain::simnet::timeline::event_log;
use cloudtrain_bench::{emit_json, header};
use serde::Serialize;

const SEEDS: u64 = 8;
/// Deadline budget multiplier over the probed clean hop time.
const DEADLINE_MULT: f64 = 1.5;
/// Dense AllReduce payload (matches the fault gauntlet).
const DENSE_BYTES: usize = 1 << 20;
/// Sparse gradient dimension (matches the fault gauntlet).
const SPARSE_ELEMS: usize = 1 << 18;

/// One fault family of the tail sweep.
struct Family {
    name: &'static str,
    plan: fn(u64) -> FaultPlan,
}

const FAMILIES: [Family; 3] = [
    Family {
        name: "drops",
        plan: |seed| FaultPlan::new(seed).with_drops(0.05),
    },
    Family {
        name: "spikes",
        plan: |seed| FaultPlan::new(seed).with_spikes(0.10, 2e-3),
    },
    Family {
        name: "stragglers",
        // A heavy straggler: node 0's NIC at 1/8 line rate. (A 2x
        // slowdown costs less to ride out than its deadline budget, so it
        // would — correctly — never trip the 1.5x deadline.)
        plan: |seed| {
            FaultPlan::new(seed)
                .straggle(0, 1.5)
                .straggle(1, 1.2)
                .degrade_link(0, 8.0, 0.0, 0.05)
        },
    },
];

#[derive(Serialize)]
struct Row {
    family: String,
    seed: u64,
    workload: String,
    policy: String,
    makespan: f64,
    deadline_missed: u64,
    fault_delay: f64,
}

#[derive(Serialize)]
struct Summary {
    family: String,
    workload: String,
    baseline_policy: String,
    baseline_p50: f64,
    baseline_p95: f64,
    baseline_p99: f64,
    deadline_p50: f64,
    deadline_p95: f64,
    deadline_p99: f64,
    p99_improvement: f64,
}

#[derive(Serialize)]
struct ReorderReport {
    identity_cost: f64,
    optimized_cost: f64,
    predicted_gain: f64,
    order: Vec<usize>,
}

#[derive(Serialize)]
struct Snapshot {
    rows: Vec<Row>,
    summary: Vec<Summary>,
    dense_deadline_clean_bitwise: bool,
    straggler_dense_p99_baseline: f64,
    straggler_dense_p99_deadline: f64,
    straggler_dense_p99_improvement: f64,
    reorder: ReorderReport,
}

/// Runs one (plan, policy, workload) cell and returns the event log,
/// makespan, and fault counters.
fn run_sim(
    plan: &FaultPlan,
    policy: SimResilience,
    sparse: bool,
) -> (String, f64, cloudtrain::simnet::FaultCounters) {
    let spec = clouds::tencent(4);
    let mut sim = NetSim::new(spec);
    sim.enable_trace();
    sim.inject_faults(plan.clone(), policy);
    if sparse {
        sim_hitopk(&mut sim, &spec, SPARSE_ELEMS, 4, 0.01, 1e-4);
    } else {
        sim_torus_all_reduce(&mut sim, &spec, DENSE_BYTES);
    }
    let log = event_log(sim.trace(), sim.fault_events());
    (log, sim.makespan(), sim.fault_counters())
}

fn main() {
    header("CI tail gauntlet: p50/p95/p99 makespan, retry ladder vs deadline budget");

    // Probe the clean fabric: the deadline budget is mult x the probed
    // worst clean link, not a hand-tuned constant.
    let spec = clouds::tencent(4);
    let est = probe_pairwise(&spec, &FaultPlan::new(0));
    let (alpha, beta) = est.worst_link();
    println!(
        "probed clean link: alpha {:.3e}s beta {:.3e}s/B -> hop budget mult {DEADLINE_MULT}",
        alpha, beta
    );

    // Acceptance gate 1: with a clean plan the deadline policy never
    // fires, so the dense run is bitwise identical to the retry run.
    let mut clean_bitwise = true;
    for seed in 0..SEEDS {
        let clean = FaultPlan::new(seed);
        let (log_r, mk_r, _) = run_sim(&clean, SimResilience::default(), false);
        let (log_d, mk_d, c_d) = run_sim(
            &clean,
            SimResilience::deadline_bounded(DEADLINE_MULT, alpha, beta),
            false,
        );
        assert_eq!(c_d.deadline_missed, 0, "clean plan fired the deadline");
        clean_bitwise &= log_r == log_d && mk_r == mk_d;
    }
    assert!(
        clean_bitwise,
        "dense deadline twin diverged on a clean plan"
    );
    println!("clean-plan dense deadline twin: bitwise identical over {SEEDS} seeds");

    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    let mut reg = Registry::new();
    println!(
        "\n{:<12} {:<8} {:<9} {:>11} {:>11} {:>11} {:>9}",
        "family", "workload", "policy", "p50", "p95", "p99", "missed"
    );
    for family in &FAMILIES {
        for sparse in [false, true] {
            let workload = if sparse { "mstopk" } else { "2dtar" };
            // Dense traffic must not lose bytes under the ladder, sparse
            // traffic may degrade — the same split the fault gauntlet uses.
            let (baseline_name, baseline_policy) = if sparse {
                ("degrade", SimResilience::degrading())
            } else {
                ("retry", SimResilience::default())
            };
            let deadline_policy = SimResilience::deadline_bounded(DEADLINE_MULT, alpha, beta);
            let mut spans: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
            let mut missed: Vec<u64> = vec![0, 0];
            for seed in 0..SEEDS {
                let plan = (family.plan)(seed);
                for (slot, (policy_name, policy)) in [
                    (baseline_name, baseline_policy),
                    ("deadline", deadline_policy),
                ]
                .into_iter()
                .enumerate()
                {
                    let (log1, makespan, counters) = run_sim(&plan, policy, sparse);
                    let (log2, makespan2, _) = run_sim(&plan, policy, sparse);
                    assert_eq!(
                        log1, log2,
                        "{} seed {seed} {workload} {policy_name}: timeline not byte-identical",
                        family.name
                    );
                    assert_eq!(makespan, makespan2);
                    spans[slot].push(makespan);
                    missed[slot] += counters.deadline_missed;
                    rows.push(Row {
                        family: family.name.to_string(),
                        seed,
                        workload: workload.to_string(),
                        policy: policy_name.to_string(),
                        makespan,
                        deadline_missed: counters.deadline_missed,
                        fault_delay: counters.fault_delay,
                    });
                }
            }
            for (slot, policy_name) in [baseline_name, "deadline"].into_iter().enumerate() {
                gauge_percentiles(
                    &mut reg,
                    &format!("tails/{}/{workload}/{policy_name}", family.name),
                    &spans[slot],
                );
                println!(
                    "{:<12} {:<8} {:<9} {:>10.2}us {:>10.2}us {:>10.2}us {:>9}",
                    family.name,
                    workload,
                    policy_name,
                    percentile(&spans[slot], 0.50) * 1e6,
                    percentile(&spans[slot], 0.95) * 1e6,
                    percentile(&spans[slot], 0.99) * 1e6,
                    missed[slot]
                );
            }
            let baseline_p99 = percentile(&spans[0], 0.99);
            let deadline_p99 = percentile(&spans[1], 0.99);
            // Bounding the tail must never make it worse, on any family.
            assert!(
                deadline_p99 <= baseline_p99 + 1e-12,
                "{} {workload}: deadline p99 {deadline_p99} > {baseline_name} p99 {baseline_p99}",
                family.name
            );
            summaries.push(Summary {
                family: family.name.to_string(),
                workload: workload.to_string(),
                baseline_policy: baseline_name.to_string(),
                baseline_p50: percentile(&spans[0], 0.50),
                baseline_p95: percentile(&spans[0], 0.95),
                baseline_p99: percentile(&spans[0], 0.99),
                deadline_p50: percentile(&spans[1], 0.50),
                deadline_p95: percentile(&spans[1], 0.95),
                deadline_p99: percentile(&spans[1], 0.99),
                p99_improvement: baseline_p99 / deadline_p99,
            });
        }
    }

    // Acceptance gate 2: on the dense straggler family the deadline's p99
    // must beat the retry ladder's (the pinned margin lives in ci.sh).
    let straggler_dense = summaries
        .iter()
        .find(|s| s.family == "stragglers" && s.workload == "2dtar")
        // lint:allow(panic_free, reason = "the sweep above always pushes this summary row")
        .expect("straggler dense summary missing");
    assert!(
        straggler_dense.deadline_p99 < straggler_dense.baseline_p99,
        "deadline p99 {} did not beat retry p99 {} on dense stragglers",
        straggler_dense.deadline_p99,
        straggler_dense.baseline_p99
    );
    let straggler_missed: u64 = rows
        .iter()
        .filter(|r| r.family == "stragglers" && r.workload == "2dtar" && r.policy == "deadline")
        .map(|r| r.deadline_missed)
        .sum();
    assert!(straggler_missed > 0, "8x degradation must trip the budget");
    println!(
        "\ndense straggler p99: retry {:.2}us vs deadline {:.2}us ({:.2}x)",
        straggler_dense.baseline_p99 * 1e6,
        straggler_dense.deadline_p99 * 1e6,
        straggler_dense.p99_improvement
    );

    // Rank reordering on a rack-scrambled fabric: interleaved placement
    // (racks {0,2} and {1,3}) makes the identity ring cross racks on every
    // hop; the optimizer should recover the 2-crossing order.
    let m = spec.nodes;
    let mut cost =
        PairCost::from_matrices(m, est.alpha_matrix().to_vec(), est.beta_matrix().to_vec());
    for src in 0..m {
        for dst in 0..m {
            if src != dst && src % 2 != dst % 2 {
                cost.set_link(src, dst, 2.0 * alpha, 3.0 * beta);
            }
        }
    }
    let chunk = DENSE_BYTES / spec.gpus_per_node / m;
    let order = optimize_ring_order(&cost, chunk, 0);
    let identity: Vec<usize> = (0..m).collect();
    let identity_cost = cost.ring_cost(&identity, chunk);
    let optimized_cost = cost.ring_cost(&order, chunk);
    let predicted_gain = identity_cost / optimized_cost;
    assert!(
        predicted_gain > 1.0,
        "reordering should beat the identity on a scrambled fabric"
    );
    // The reordered sim twin is sane: on the uniform clean fabric any node
    // order has the same makespan as the natural ring.
    let natural = {
        let mut sim = NetSim::new(spec);
        sim_torus_all_reduce(&mut sim, &spec, DENSE_BYTES);
        sim.makespan()
    };
    let reordered = {
        let mut sim = NetSim::new(spec);
        sim_torus_all_reduce_reordered(&mut sim, &spec, DENSE_BYTES, &order);
        sim.makespan()
    };
    assert!(
        (natural - reordered).abs() < 1e-12,
        "uniform-fabric reorder changed the makespan: {natural} vs {reordered}"
    );
    println!(
        "reorder (rack-scrambled probe): identity {:.2}us -> {:?} {:.2}us ({:.2}x predicted)",
        identity_cost * 1e6,
        order,
        optimized_cost * 1e6,
        predicted_gain
    );

    println!("\nTAILS-OBS-BEGIN");
    print!("{}", reg.to_jsonl());
    println!("TAILS-OBS-END");

    emit_json(
        "tail_gauntlet",
        &Snapshot {
            straggler_dense_p99_baseline: straggler_dense.baseline_p99,
            straggler_dense_p99_deadline: straggler_dense.deadline_p99,
            straggler_dense_p99_improvement: straggler_dense.p99_improvement,
            rows,
            summary: summaries,
            dense_deadline_clean_bitwise: clean_bitwise,
            reorder: ReorderReport {
                identity_cost,
                optimized_cost,
                predicted_gain,
                order,
            },
        },
    );
}
