//! Ablation: multi-tenant stragglers under BSP.
//!
//! Synchronous SGD pays the *maximum* of P per-worker compute times each
//! iteration. This sweep quantifies the penalty on shared cloud instances
//! as a function of cluster size and jitter level, plus the effect of one
//! degraded VM — context for why the paper's measured scaling
//! efficiencies sit below the pure communication model.

use cloudtrain::simnet::jitter::{bsp_straggler_stats, JitterModel, SlowNode};
use cloudtrain_bench::{emit_json, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    world: usize,
    cv: f64,
    straggler_penalty: f64,
}

fn main() {
    header("Ablation: BSP straggler penalty vs cluster size and jitter");
    println!("{:>8} {:>8} {:>12}", "GPUs", "cv", "penalty");
    let base = 0.0582; // ResNet-50 @96 iteration compute (256/4400)
    let mut rows = Vec::new();
    for world in [8usize, 32, 128] {
        for cv in [0.02, 0.05, 0.10] {
            let j = JitterModel {
                base_seconds: base,
                cv,
                slow_node: None,
            };
            let s = bsp_straggler_stats(world, 8, &j, 500, 11);
            println!(
                "{:>8} {:>8} {:>11.1}%",
                world,
                cv,
                s.straggler_penalty * 100.0
            );
            rows.push(Row {
                world,
                cv,
                straggler_penalty: s.straggler_penalty,
            });
        }
    }
    emit_json("ablation_stragglers", &rows);

    header("One degraded VM (20% slow) in a 16-node cluster");
    for factor in [1.0, 1.1, 1.2, 1.5] {
        let j = JitterModel {
            base_seconds: base,
            cv: 0.03,
            slow_node: (factor > 1.0).then_some(SlowNode { node: 7, factor }),
        };
        let s = bsp_straggler_stats(128, 8, &j, 500, 13);
        println!(
            "  slow factor {:.1}: penalty {:>5.1}%",
            factor,
            s.straggler_penalty * 100.0
        );
    }
    println!(
        "\nshape check: the penalty grows with P (expected max of P draws) and a\n\
         single degraded VM caps the whole cluster — BSP on shared clouds pays\n\
         for its slowest tenant, independent of the aggregation scheme."
    );
}
