//! CI elastic gauntlet: scripted membership churn across seeds and
//! scenarios.
//!
//! Three churn scenarios (single eviction, eviction + replacement join,
//! correlated rack loss) are each replayed under 8 seeds on a 32-node
//! cluster, in two modes:
//!
//! * **reshard** — the coordinator timeline is folded to consistent-hash
//!   resharding events, checking that every single topology change moves
//!   < 5% of the cached data set and that no sample ever moves between
//!   two surviving nodes (zero excess);
//! * **resume-replay** — `DistTrainer::run_elastic` (which round-trips
//!   every segment boundary through the sharded checkpoint wire format)
//!   must be **bitwise identical** to its in-memory planned twin: same
//!   per-epoch metrics, same final parameters, same step counter.
//!
//! One (seed, scenario) pair is additionally run twice end to end and its
//! observability registry compared byte for byte; that registry is printed
//! between `ELASTIC-JSONL-BEGIN`/`ELASTIC-JSONL-END` markers so the CI
//! gate can `cmp` it across independent process runs. The ablation rows
//! are emitted as JSON for the snapshot artifact.

use cloudtrain::prelude::*;
use cloudtrain_bench::{emit_json, header};
use serde::Serialize;

const SEEDS: u64 = 8;
const NODES: usize = 32;
const EPOCHS: usize = 3;
const SCENARIOS: [&str; 3] = ["evict", "evict-join", "rack-loss"];

fn scenario_of(kind: &str, seed: u64) -> ElasticScenario {
    match kind {
        "evict" => ElasticScenario::evict(seed, NODES, EPOCHS),
        "evict-join" => ElasticScenario::evict_join(seed, NODES, EPOCHS),
        "rack-loss" => ElasticScenario::rack_loss(seed, NODES, EPOCHS),
        other => unreachable!("unknown scenario {other}"),
    }
}

fn gauntlet_cfg(seed: u64) -> DistConfig {
    DistConfig {
        nodes: NODES,
        gpus_per_node: 1,
        epochs: EPOCHS,
        iters_per_epoch: 4,
        local_batch: 4,
        eval_samples: 16,
        seed,
        ..DistConfig::small(
            Strategy::MsTopKHiTopK {
                rho: 0.05,
                samplings: 20,
            },
            Workload::Mlp,
        )
    }
}

#[derive(Serialize)]
struct Row {
    scenario: String,
    seed: u64,
    mode: String,
    nodes_before: usize,
    nodes_after: usize,
    segments: usize,
    reshard_events: usize,
    max_moved_pct: f64,
    max_excess_pct: f64,
    replay_bitwise: bool,
    final_step: u64,
}

/// Checks the consistent-hash contract on every resharding event and
/// returns the worst movement percentages.
fn audit_resharding(
    kind: &str,
    seed: u64,
    events: &[cloudtrain::elastic::ReshardEvent],
) -> (f64, f64) {
    let mut max_moved = 0.0f64;
    let mut max_excess = 0.0f64;
    for ev in events {
        assert!(
            ev.stats.moved_pct() < 5.0,
            "{kind} seed {seed}: reshard at epoch {} moved {:.2}% (>= 5%)",
            ev.epoch,
            ev.stats.moved_pct()
        );
        assert_eq!(
            ev.stats.excess_moved, 0,
            "{kind} seed {seed}: {} samples churned between survivors",
            ev.stats.excess_moved
        );
        max_moved = max_moved.max(ev.stats.moved_pct());
        max_excess = max_excess.max(ev.stats.excess_pct());
    }
    (max_moved, max_excess)
}

fn main() {
    header("CI elastic gauntlet: 8 seeds x {evict, evict-join, rack-loss} x {replay, reshard}");
    println!(
        "{:<12} {:>4} {:<8} {:>6} {:>6} {:>9} {:>9} {:>10} {:>11} {:>8}",
        "scenario",
        "seed",
        "mode",
        "before",
        "after",
        "segments",
        "reshards",
        "max moved",
        "max excess",
        "bitwise"
    );
    let mut rows = Vec::new();
    let mut snapshot_jsonl: Option<String> = None;
    for kind in SCENARIOS {
        for seed in 0..SEEDS {
            let scenario = scenario_of(kind, seed);
            let timeline = scenario.simulate();
            let resharding = timeline.reshard_events(scenario.seed, scenario.dataset_len);
            let (max_moved, max_excess) = audit_resharding(kind, seed, &resharding);
            let nodes_after = timeline.schedule.last().map_or(0, Vec::len);
            let segments = timeline.segments().len();
            println!(
                "{:<12} {:>4} {:<8} {:>6} {:>6} {:>9} {:>9} {:>9.2}% {:>10.2}% {:>8}",
                kind,
                seed,
                "reshard",
                NODES,
                nodes_after,
                segments,
                resharding.len(),
                max_moved,
                max_excess,
                true
            );
            rows.push(Row {
                scenario: kind.to_string(),
                seed,
                mode: "reshard".to_string(),
                nodes_before: NODES,
                nodes_after,
                segments,
                reshard_events: resharding.len(),
                max_moved_pct: max_moved,
                max_excess_pct: max_excess,
                replay_bitwise: true,
                final_step: 0,
            });

            // Resume-replay: the checkpoint path against its in-memory twin.
            let trainer = DistTrainer::new(gauntlet_cfg(seed));
            let elastic = trainer.run_elastic(&scenario);
            let planned = trainer.run_elastic_planned(&scenario);
            let bitwise = elastic.bitwise_eq(&planned);
            assert!(
                bitwise,
                "{kind} seed {seed}: checkpoint replay diverged from the planned twin"
            );
            assert_eq!(
                elastic.segments.len(),
                segments,
                "{kind} seed {seed}: trainer segmented differently than the timeline"
            );
            if kind == "evict-join" && seed == 0 {
                // Run-twice determinism on one full (seed, scenario) pair:
                // trajectory and observability registry, byte for byte.
                let again = trainer.run_elastic(&scenario);
                assert!(
                    elastic.bitwise_eq(&again),
                    "evict-join seed 0: re-run trajectory diverged"
                );
                assert_eq!(
                    elastic.registry.to_jsonl(),
                    again.registry.to_jsonl(),
                    "evict-join seed 0: re-run registry not byte-identical"
                );
                snapshot_jsonl = Some(elastic.registry.to_jsonl());
            }
            println!(
                "{:<12} {:>4} {:<8} {:>6} {:>6} {:>9} {:>9} {:>9.2}% {:>10.2}% {:>8}",
                kind,
                seed,
                "replay",
                NODES,
                nodes_after,
                elastic.segments.len(),
                elastic.resharding.len(),
                max_moved,
                max_excess,
                bitwise
            );
            rows.push(Row {
                scenario: kind.to_string(),
                seed,
                mode: "replay".to_string(),
                nodes_before: NODES,
                nodes_after,
                segments: elastic.segments.len(),
                reshard_events: elastic.resharding.len(),
                max_moved_pct: max_moved,
                max_excess_pct: max_excess,
                replay_bitwise: bitwise,
                final_step: elastic.final_step,
            });
        }
    }
    println!("ELASTIC-JSONL-BEGIN");
    print!(
        "{}",
        snapshot_jsonl.expect("the evict-join seed-0 replay cell always runs")
    );
    println!("ELASTIC-JSONL-END");
    emit_json("elastic_gauntlet", &rows);
}
