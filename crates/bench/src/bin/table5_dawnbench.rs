//! Table 5: time to 93% top-5 accuracy on 128 V100s — the DAWNBench
//! leaderboard comparison, with our modelled schedule on the 25GbE
//! Tencent cluster (and the dense-only ablation).

use cloudtrain::engine::dawnbench::{
    dense_only_schedule, evaluate_schedule, paper_schedule, published_leaderboard,
};
use cloudtrain::prelude::*;
use cloudtrain_bench::{emit_json, header};
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    ours_seconds: f64,
    dense_only_seconds: f64,
    best_published_seconds: f64,
}

fn main() {
    header("Table 5: time to 93% top-5 accuracy with 128 Tesla V100 GPUs");
    println!(
        "{:<10} {:>10} {:>14} {:>10}",
        "team", "date", "interconnect", "time"
    );
    for e in published_leaderboard() {
        println!(
            "{:<10} {:>10} {:>14} {:>9.0}s",
            e.team, e.date, e.interconnect, e.seconds
        );
    }
    let ours = evaluate_schedule(clouds::tencent(16), &paper_schedule());
    let dense = evaluate_schedule(clouds::tencent(16), &dense_only_schedule());
    println!(
        "{:<10} {:>10} {:>14} {:>9.0}s  <- this reproduction (modelled)",
        "Ours", "Aug 2020", "25GbE", ours.total_seconds
    );
    println!(
        "\nablation: the same 28 epochs with dense 2DTAR throughout take {:.0}s;\n\
         MSTopK in the 13 warmup epochs buys the lead despite the slowest\n\
         interconnect on the board (paper: 151s vs Alibaba's 158s on 32GbE).",
        dense.total_seconds
    );
    emit_json(
        "table5_dawnbench",
        &Summary {
            ours_seconds: ours.total_seconds,
            dense_only_seconds: dense.total_seconds,
            best_published_seconds: 158.0,
        },
    );
}
