//! Observability-plane snapshot: one fixed-configuration run through all
//! three instrumented planes, exported as the byte-stable JSONL the CI
//! gauntlet `cmp`s across two invocations (the trace-plane analogue of
//! the `timeline::event_log` determinism check).
//!
//! * comm plane — HiTopKComm on the simulated 16-node Tencent cluster,
//!   spans in virtual seconds (Fig. 8's stage decomposition),
//! * data plane — two epochs plus a restart epoch through the real
//!   NFS → disk → memory path (Fig. 9's tier hit rates),
//! * training plane — a seeded 1×2-worker MSTopK run via
//!   `DistTrainer::run_observed` (epoch spans, nested hitopk stages).
//!
//! The JSONL lines are printed verbatim between `OBS-BEGIN`/`OBS-END`
//! markers (for `ci.sh` to slice out), and a compact summary goes through
//! the usual `JSON <experiment>` channel into `BENCH_obs.json`.

use cloudtrain::compress::gpu_cost::{mstopk_cost, GpuRates};
use cloudtrain::datacache::disk::DiskCache;
use cloudtrain::datacache::loader::LoaderConfig;
use cloudtrain::datacache::{CachedLoader, SyntheticNfs};
use cloudtrain::engine::trainer::Workload;
use cloudtrain::obs::Registry;
use cloudtrain::prelude::*;
use cloudtrain::simnet::collectives::sim_hitopk;
use cloudtrain_bench::{emit_json, header};
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    jsonl_lines: usize,
    jsonl_fnv1a: u64,
    hitopk_inter_ag_share: f64,
    cache_memory_hit_rate: f64,
    train_epochs: u64,
    final_top1: f64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn main() {
    header("Observability snapshot (fixed config, byte-stable)");
    let mut reg = Registry::new();

    // Comm plane: Fig. 8's configuration — ResNet-50, rho = 0.01.
    let spec = clouds::tencent(16);
    let d = 25_000_000usize;
    let rho = 0.01;
    let n = spec.gpus_per_node;
    let shard = d.div_ceil(n);
    let k = ((d as f64 * rho / n as f64) as usize).max(1);
    let topk_s = mstopk_cost(shard, k, 30, &GpuRates::default()).seconds;
    let mut sim = NetSim::new(spec);
    sim.attach_obs();
    sim_hitopk(&mut sim, &spec, d, 4, rho, topk_s);
    sim.publish_obs();
    let comm = sim.take_obs().expect("registry was attached");
    // Computed on the comm plane alone: the merged registry also holds
    // the training plane's same-named hitopk spans (charged in logical
    // work units), which would pollute a virtual-seconds ratio.
    let stage_names = [
        "hitopk/intra reduce-scatter",
        "hitopk/top-k compression",
        "hitopk/inter all-gather",
        "hitopk/intra all-gather",
    ];
    let comm_total: f64 = stage_names.iter().map(|n| comm.span_total(n)).sum();
    let inter_ag_share = comm.span_total("hitopk/inter all-gather") / comm_total;
    println!("comm plane (virtual seconds, Fig. 8 view):");
    print!("{}", comm.breakdown_table());
    reg.merge(&comm);

    // Data plane: 2 epochs x 128 samples, then a restart epoch over the
    // warm disk tier.
    let cache_dir = std::env::temp_dir().join(format!("cloudtrain-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let pixels = 96 * 96 * 3;
    let mut loader = CachedLoader::new(
        SyntheticNfs::new(pixels, 9),
        Some(DiskCache::open(&cache_dir).expect("cache dir")),
        LoaderConfig::default(),
    );
    for _epoch in 0..2 {
        for id in 0..128u64 {
            loader.load_traced(id, &mut reg);
        }
    }
    loader.publish_obs(&mut reg);
    let mut restarted = CachedLoader::new(
        SyntheticNfs::new(pixels, 9),
        Some(DiskCache::open(&cache_dir).expect("cache dir")),
        LoaderConfig::default(),
    );
    for id in 0..128u64 {
        restarted.load_traced(id, &mut reg);
    }
    restarted.publish_obs(&mut reg);
    let _ = std::fs::remove_dir_all(&cache_dir);

    // Training plane: a tiny seeded MSTopK run, instrumented end to end.
    let cfg = DistConfig {
        epochs: 2,
        iters_per_epoch: 4,
        ..DistConfig::small(Strategy::mstopk_default(), Workload::Mlp)
    };
    let (report, train_reg) = DistTrainer::new(cfg).run_observed();
    reg.merge(&train_reg);

    let jsonl = reg.to_jsonl();
    println!("\nmerged registry (per-plane clock domains):");
    print!("{}", reg.breakdown_table());
    println!("OBS-BEGIN");
    print!("{jsonl}");
    println!("OBS-END");

    let loads = reg.counter("cache/from_memory")
        + reg.counter("cache/from_disk")
        + reg.counter("cache/from_nfs");
    let summary = Summary {
        jsonl_lines: jsonl.lines().count(),
        jsonl_fnv1a: fnv1a(jsonl.as_bytes()),
        hitopk_inter_ag_share: inter_ag_share,
        cache_memory_hit_rate: reg.counter("cache/from_memory") as f64 / loads.max(1) as f64,
        train_epochs: reg.counter("train/epochs"),
        final_top1: f64::from(report.final_top1()),
    };
    emit_json("obs_snapshot", &summary);
}
