//! Conformance-harness snapshot: one run over the shipped seed corpus,
//! exported as the byte-stable report the CI gauntlet `cmp`s across two
//! invocations (the conformance analogue of `obs_snapshot`).
//!
//! The JSONL lines are printed verbatim between `CONFORMANCE-BEGIN` /
//! `CONFORMANCE-END` markers (for `ci.sh` to slice out), and a compact
//! summary goes through the usual `JSON <experiment>` channel into
//! `BENCH_conformance.json`.

use cloudtrain::conformance::{run_corpus, shipped_corpus};
use cloudtrain_bench::{emit_json, header};
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    cases: usize,
    passed: usize,
    divergences: usize,
    checks: usize,
    coverage_expected: usize,
    coverage_missing: usize,
    jsonl_lines: usize,
    jsonl_fnv1a: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn main() {
    header("Conformance snapshot (shipped seed corpus, byte-stable)");
    let report = run_corpus(shipped_corpus()).expect("shipped corpus parses");
    print!("{}", report.table());

    let jsonl = report.to_jsonl();
    println!("CONFORMANCE-BEGIN");
    print!("{jsonl}");
    println!("CONFORMANCE-END");

    let summary = Summary {
        cases: report.results().len(),
        passed: report.passed(),
        divergences: report.divergences(),
        checks: report.total_checks(),
        coverage_expected: report.coverage().len(),
        coverage_missing: report.coverage_missing(),
        jsonl_lines: jsonl.lines().count(),
        jsonl_fnv1a: fnv1a(jsonl.as_bytes()),
    };
    emit_json("conformance_snapshot", &summary);
}
