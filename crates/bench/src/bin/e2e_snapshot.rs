//! End-to-end steps/sec snapshot: the speed gate of the raw-speed pass.
//!
//! Times real `DistTrainer` runs (all ranks, full forward/backward/
//! aggregate/update loop) across the runtime optimization axes:
//!
//! * **fusion buckets** — dense 2D-torus aggregation launched per layer
//!   (the α-heavy Fig.-1 pathology), whole-tensor, and with the
//!   cost-model bucket plan,
//! * **fused compress–reduce** — MSTopK HiTopKComm with and without the
//!   fused ReduceScatter+top-k hop.
//!
//! The lane tier (scalar vs `simd` dispatch) is a compile-time axis: the
//! binary records which tier it was built with, and
//! `scripts/bench_snapshot.sh` builds it both ways, passing the scalar
//! build's snapshot in as the baseline for the cross-tier speedup. The
//! headline number — cost-model-bucketed dense steps/sec over the
//! scalar per-layer baseline — must stay ≥ 1.5×; `scripts/ci.sh`
//! enforces the ceiling.
//!
//! Wall-clock numbers are not byte-stable, so (like `obs_snapshot`) the
//! deterministic fingerprint of every configuration — final accuracy
//! bits, bucket counts, bitwise-equivalence verdicts — is printed
//! between `E2E-BEGIN`/`E2E-END` markers for CI to slice out and `cmp`
//! across two invocations.
//!
//! Usage: `e2e_snapshot [out.json] [baseline.json]`.

use cloudtrain::engine::autotune::{autotune_layers, AutotuneConfig, CommModel};
use cloudtrain::engine::trainer::{workload_layer_ranges, Workload};
use cloudtrain::prelude::*;
use cloudtrain_bench::{fmt_secs, header};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Measurement reps per configuration (plus one warmup run).
const REPS: usize = 3;

#[derive(Serialize, Deserialize)]
struct ConfigRecord {
    name: String,
    strategy: String,
    fusion: String,
    fused_compress_reduce: bool,
    steps_per_sec: f64,
    best_run_s: f64,
    final_top1: f32,
    buckets: u64,
}

#[derive(Serialize, Deserialize)]
struct Snapshot {
    benchmark: String,
    lane_tier: String,
    reps: usize,
    global_steps: usize,
    configs: Vec<ConfigRecord>,
    /// Same-build ratio: dense cost-model buckets over dense per-layer.
    fusion_speedup: f64,
    /// Same-build ratio: fused over unfused MSTopK. Informational — the
    /// fused hop's contract is bitwise identity at fewer passes, and on a
    /// single-core host the saved passes are hidden behind thread sync,
    /// so this ratio hovers near 1 and is not gated.
    fused_speedup: f64,
    /// The fused-compress-reduce flag the per-layer autotuner picked for
    /// this exact topology/workload from the α–β cost model (no wall
    /// clock): `true` means it predicts fusing the ReduceScatter+top-k
    /// hop is at least as fast as staging it.
    #[serde(default)]
    autotune_fused: bool,
    /// Gated ratio: autotuned MSTopK steps/sec over the best hand-picked
    /// MSTopK row. The cost model is deterministic, so the only reason
    /// this dips below 1.0 is single-core wall-clock jitter; `scripts/
    /// ci.sh` holds it ≥ 0.9 so the tuner can never silently route onto
    /// the slower fused/staged path (the ISSUE-8 regression).
    #[serde(default)]
    autotune_efficiency: f64,
    /// Headline: dense cost-model steps/sec of this build over the
    /// baseline snapshot's per-layer dense row — the α-pathology the
    /// raw-speed pass exists to kill, across both compile tiers. Falls
    /// back to the same-build [`Self::fusion_speedup`] when no baseline
    /// snapshot is supplied.
    speedup_vs_baseline: f64,
    baseline_lane_tier: String,
}

fn lane_tier() -> &'static str {
    if cfg!(feature = "simd") {
        "simd"
    } else {
        "scalar"
    }
}

fn base_cfg(strategy: Strategy) -> DistConfig {
    DistConfig {
        nodes: 2,
        gpus_per_node: 4,
        epochs: 1,
        iters_per_epoch: 100,
        // Communication-bound regime (the cloud setting the paper
        // optimizes): per-rank compute is a batch-1 forward/backward,
        // the Transformer's many small parameter tensors make the
        // per-layer launch overhead (the Fig.-1 α pathology) visible,
        // and the optimizer is plain momentum so no PTO gathers dilute
        // the aggregation-path contrast. The lr is below the batch-1
        // divergence point of both aggregation families so every row
        // trains to the same clean fingerprint.
        local_batch: 1,
        eval_samples: 16,
        optimizer: OptimizerKind::Momentum,
        use_pto: false,
        lr: 0.02,
        ..DistConfig::small(strategy, Workload::Transformer)
    }
}

/// One configuration of the matrix.
struct Case {
    name: &'static str,
    cfg: DistConfig,
}

/// Asks the per-layer autotuner whether to fuse the compress–reduce hop
/// for the exact matrix configuration (Transformer on 2×4, ρ = 0.01 /
/// 30 samplings — `Strategy::mstopk_default()`), from the α–β cost model
/// alone. This is the routing decision the "mstopk_autotuned" row runs
/// under, so a wrong prediction shows up directly as a low
/// `autotune_efficiency`.
fn autotune_fused_flag() -> bool {
    let base = base_cfg(Strategy::mstopk_default());
    let mut spec = clouds::tencent(base.nodes);
    spec.gpus_per_node = base.gpus_per_node;
    let ranges = workload_layer_ranges(Workload::Transformer);
    autotune_layers(&ranges, &CommModel::new(spec), &AutotuneConfig::default())
        .fused_compress_reduce()
}

fn cases() -> Vec<Case> {
    let dense = |fusion| {
        let mut cfg = base_cfg(Strategy::DenseTorus);
        cfg.fusion = fusion;
        cfg
    };
    let sparse = |fused| {
        let mut cfg = base_cfg(Strategy::mstopk_default());
        cfg.fused_compress_reduce = fused;
        cfg
    };
    vec![
        Case {
            name: "dense_perlayer",
            cfg: dense(FusionMode::PerLayer),
        },
        Case {
            name: "dense_whole",
            cfg: dense(FusionMode::WholeTensor),
        },
        Case {
            name: "dense_costmodel",
            cfg: dense(FusionMode::CostModel),
        },
        Case {
            name: "mstopk_unfused",
            cfg: sparse(false),
        },
        Case {
            name: "mstopk_fused",
            cfg: sparse(true),
        },
        Case {
            name: "mstopk_autotuned",
            cfg: sparse(autotune_fused_flag()),
        },
    ]
}

fn fusion_label(mode: FusionMode) -> String {
    match mode {
        FusionMode::WholeTensor => "whole-tensor".to_string(),
        FusionMode::PerLayer => "per-layer".to_string(),
        FusionMode::Bucketed { threshold_bytes } => format!("bucketed({threshold_bytes})"),
        FusionMode::CostModel => "cost-model".to_string(),
    }
}

fn steps_per_sec(snapshot: &Snapshot, name: &str) -> Option<f64> {
    snapshot
        .configs
        .iter()
        .find(|c| c.name == name)
        .map(|c| c.steps_per_sec)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_e2e.json".to_string());
    let baseline_path = std::env::args().nth(2);

    header(&format!(
        "End-to-end steps/sec matrix (lane tier: {})",
        lane_tier()
    ));
    println!(
        "{:>16} {:>14} {:>14} {:>8} {:>12} {:>10} {:>8}",
        "config", "strategy", "fusion", "fused", "best run", "steps/s", "top1"
    );

    let global_steps = {
        let c = base_cfg(Strategy::DenseTorus);
        c.epochs * c.iters_per_epoch
    };
    let mut configs = Vec::new();
    let mut fingerprints = Vec::new();
    for case in cases() {
        let trainer = DistTrainer::new(case.cfg.clone());
        // Fingerprint run: traced, bitwise identical to the timed runs,
        // also yields the bucket counters for the deterministic section.
        let (report, reg) = trainer.run_observed();
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let timed = trainer.run_all_ranks();
            best = best.min(t0.elapsed().as_secs_f64());
            assert_eq!(
                timed[0].final_top1(),
                report.final_top1(),
                "{}: timed run diverged from fingerprint run",
                case.name
            );
        }
        let record = ConfigRecord {
            name: case.name.to_string(),
            strategy: case.cfg.strategy.label().to_string(),
            fusion: fusion_label(case.cfg.fusion),
            fused_compress_reduce: case.cfg.fused_compress_reduce,
            steps_per_sec: global_steps as f64 / best,
            best_run_s: best,
            final_top1: report.final_top1(),
            buckets: reg.counter("fusion/buckets"),
        };
        println!(
            "{:>16} {:>14} {:>14} {:>8} {:>12} {:>10.1} {:>8.3}",
            record.name,
            record.strategy,
            record.fusion,
            record.fused_compress_reduce,
            fmt_secs(best),
            record.steps_per_sec,
            record.final_top1
        );
        fingerprints.push(format!(
            "{} top1_bits=0x{:08x} loss_bits=0x{:08x} buckets={} messages_saved={}",
            case.name,
            report.final_top1().to_bits(),
            report
                .epochs
                .last()
                .map(|e| e.train_loss.to_bits())
                .unwrap_or(0),
            reg.counter("fusion/buckets"),
            reg.counter("fusion/messages_saved"),
        ));
        configs.push(record);
    }

    let mut snapshot = Snapshot {
        benchmark: "e2e_steps_per_sec".to_string(),
        lane_tier: lane_tier().to_string(),
        reps: REPS,
        global_steps,
        configs,
        fusion_speedup: 0.0,
        fused_speedup: 0.0,
        autotune_fused: autotune_fused_flag(),
        autotune_efficiency: 0.0,
        speedup_vs_baseline: 0.0,
        baseline_lane_tier: "none".to_string(),
    };
    let (dense_opt, dense_base, sparse_opt, sparse_base, sparse_tuned) = {
        let get = |name: &str| {
            // lint:allow(panic_free, reason = "every name queried here is a literal from cases(), so the row always exists")
            steps_per_sec(&snapshot, name).expect("config row missing")
        };
        (
            get("dense_costmodel"),
            get("dense_perlayer"),
            get("mstopk_fused"),
            get("mstopk_unfused"),
            get("mstopk_autotuned"),
        )
    };
    snapshot.fusion_speedup = dense_opt / dense_base;
    snapshot.fused_speedup = sparse_opt / sparse_base;
    snapshot.autotune_efficiency = sparse_tuned / sparse_opt.max(sparse_base);

    // Cross-build baseline: the scalar/unfused/per-layer rows of a prior
    // snapshot (written by the non-simd build of this binary).
    let baseline = baseline_path.and_then(|p| {
        let text = std::fs::read_to_string(&p)
            .map_err(|e| eprintln!("baseline {p}: {e}"))
            .ok()?;
        serde_json::from_str::<Snapshot>(&text)
            .map_err(|e| eprintln!("baseline {p}: {e}"))
            .ok()
    });
    match &baseline {
        Some(base) => {
            snapshot.speedup_vs_baseline =
                dense_opt / steps_per_sec(base, "dense_perlayer").unwrap_or(f64::INFINITY);
            snapshot.baseline_lane_tier = base.lane_tier.clone();
        }
        None => {
            snapshot.speedup_vs_baseline = snapshot.fusion_speedup;
            snapshot.baseline_lane_tier = snapshot.lane_tier.clone();
        }
    }

    // Deterministic fingerprint section for the CI double-run `cmp`.
    println!("E2E-BEGIN");
    println!("lane_tier={}", snapshot.lane_tier);
    println!("global_steps={global_steps}");
    for line in &fingerprints {
        println!("{line}");
    }
    // Cross-config invariants the matrix proves on every run:
    let bits = |name: &str| {
        snapshot
            .configs
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.final_top1.to_bits())
            .unwrap_or(0)
    };
    println!(
        "fused_matches_unfused_bitwise={}",
        bits("mstopk_fused") == bits("mstopk_unfused")
    );
    println!("autotune_fused={}", snapshot.autotune_fused);
    println!(
        "autotuned_matches_handpicked_bitwise={}",
        bits("mstopk_autotuned") == bits("mstopk_fused")
            && bits("mstopk_autotuned") == bits("mstopk_unfused")
    );
    println!("E2E-END");

    println!(
        "\nfusion buckets speedup (cost-model vs per-layer): {:.2}x",
        snapshot.fusion_speedup
    );
    println!(
        "fused compress-reduce speedup (vs unfused):       {:.2}x",
        snapshot.fused_speedup
    );
    println!(
        "autotuned vs best hand-picked mstopk (fused={}):  {:.2}x (floor: 0.9x)",
        snapshot.autotune_fused, snapshot.autotune_efficiency
    );
    println!(
        "headline speedup vs {} baseline:              {:.2}x (ceiling: 1.5x)",
        snapshot.baseline_lane_tier, snapshot.speedup_vs_baseline
    );

    match serde_json::to_string(&snapshot) {
        Ok(json) => {
            std::fs::write(&out_path, json + "\n").expect("write snapshot file");
            println!("wrote {out_path}");
        }
        Err(e) => {
            eprintln!("snapshot serialization failed: {e}");
            std::process::exit(1);
        }
    }
}
