//! Ablation: collective algorithm auto-tuning (the NCCL tree↔ring policy
//! reproduced on the simulator). Prints the per-size winner between the
//! hierarchical tree and 2D-torus AllReduce on several fabrics, and the
//! crossover point — the mechanism behind Fig. 7's small-message regime.

use cloudtrain::prelude::*;
use cloudtrain::simnet::tuner::{choose_dense, crossover_bytes, dense_time, DenseAlgo};
use cloudtrain_bench::{emit_json, fmt_secs, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    cloud: String,
    crossover_bytes: Option<usize>,
}

fn main() {
    header("Ablation: dense-collective auto-tuning (TreeAR vs 2DTAR)");
    let clouds_list = [
        ("tencent-25GbE", clouds::tencent(16)),
        ("aliyun-32GbE", clouds::aliyun(16)),
        ("infiniband-100G", clouds::infiniband_100g(16)),
    ];

    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "bytes", "TreeAR", "2DTAR", "winner"
    );
    let spec = clouds::tencent(16);
    let mut b = 64 << 10;
    while b <= 256 << 20 {
        let t_tree = dense_time(&spec, DenseAlgo::Tree, b);
        let t_torus = dense_time(&spec, DenseAlgo::Torus, b);
        println!(
            "{:>12} {:>14} {:>14} {:>10}",
            b,
            fmt_secs(t_tree),
            fmt_secs(t_torus),
            match choose_dense(&spec, b) {
                DenseAlgo::Tree => "tree",
                DenseAlgo::Torus => "torus",
            }
        );
        b *= 4;
    }

    println!("\ncrossover (tree -> torus) per fabric:");
    let mut rows = Vec::new();
    for (name, spec) in clouds_list {
        let x = crossover_bytes(&spec, 64 << 10, 256 << 20);
        match x {
            Some(x) => println!("  {:<16} ~{} KiB", name, x >> 10),
            None => println!("  {:<16} (one algorithm dominates the range)", name),
        }
        rows.push(Row {
            cloud: name.to_string(),
            crossover_bytes: x,
        });
    }
    println!(
        "\nshape check: tree wins the latency-bound regime, torus the\n\
         bandwidth-bound one — the same per-size policy NCCL applies, and\n\
         the reason Fig. 7's orderings are quoted for model-scale messages."
    );
    emit_json("ablation_tuner", &rows);
}
