//! Property-based tests for the tensor kernels.

use cloudtrain_tensor::half::F16;
use cloudtrain_tensor::{ops, partition};
use proptest::prelude::*;

fn small_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1e4f32..1e4, 0..200)
}

proptest! {
    #[test]
    fn count_ge_matches_filter(x in small_vec(), thres in 0.0f32..1e4) {
        let fast = ops::count_ge(&x, thres);
        let slow = x.iter().filter(|v| v.abs() >= thres).count();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn indices_ge_plus_band_is_disjoint_cover(x in small_vec(), a in 0.0f32..100.0, b in 0.0f32..100.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let top = ops::indices_ge(&x, hi);
        let band = ops::indices_in_band(&x, lo, hi);
        // Disjoint.
        for i in &band {
            prop_assert!(!top.contains(i));
        }
        // Union equals indices >= lo.
        let mut union: Vec<u32> = top.iter().chain(band.iter()).copied().collect();
        union.sort_unstable();
        let mut expect = ops::indices_ge(&x, lo);
        expect.sort_unstable();
        prop_assert_eq!(union, expect);
    }

    #[test]
    fn scatter_add_inverts_gather_on_distinct_indices(x in prop::collection::vec(-100.0f32..100.0, 1..100)) {
        let idx: Vec<u32> = (0..x.len() as u32).step_by(2).collect();
        let vals = ops::gather(&x, &idx);
        let mut y = vec![0.0f32; x.len()];
        ops::scatter_add(&mut y, &idx, &vals);
        for (i, v) in y.iter().enumerate() {
            if i.is_multiple_of(2) {
                prop_assert_eq!(*v, x[i]);
            } else {
                prop_assert_eq!(*v, 0.0);
            }
        }
    }

    #[test]
    fn axpy_is_linear(a in -10.0f32..10.0, x in prop::collection::vec(-10.0f32..10.0, 1..50)) {
        let mut y = vec![0.0f32; x.len()];
        ops::axpy(a, &x, &mut y);
        for (yi, xi) in y.iter().zip(&x) {
            prop_assert!((yi - a * xi).abs() < 1e-4);
        }
    }

    #[test]
    fn shards_partition_any_vector(d in 0usize..10_000, p in 1usize..130) {
        let ss = partition::shards(d, p);
        prop_assert_eq!(ss.iter().map(|s| s.len()).sum::<usize>(), d);
        let mut pos = 0;
        for s in &ss {
            prop_assert_eq!(s.start, pos);
            pos = s.end;
        }
        prop_assert_eq!(pos, d);
        let min = ss.iter().map(|s| s.len()).min().unwrap();
        let max = ss.iter().map(|s| s.len()).max().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// The parallel tier is bitwise identical to the serial tier on every
    /// kernel it implements — including across REDUCE_BLOCK boundaries and
    /// above the thread-spawn threshold.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_kernels_equal_serial_bitwise(
        seed in 0u64..1000,
        extra in 0usize..1000,
        thres in 0.0f32..2.0,
        a in -4.0f32..4.0,
        k in 1usize..2000,
    ) {
        use cloudtrain_tensor::init;
        // Mix sizes below and above the parallel threshold.
        let d = if seed.is_multiple_of(2) {
            ops::REDUCE_BLOCK / 2 + extra
        } else {
            ops::parallel::PAR_THRESHOLD + 3 * ops::REDUCE_BLOCK + extra
        };
        let mut rng = init::rng_from_seed(seed);
        let x = init::gradient_like_tensor(d, &mut rng).into_vec();

        prop_assert_eq!(ops::parallel::count_ge(&x, thres), ops::serial::count_ge(&x, thres));
        prop_assert_eq!(ops::parallel::mean_abs(&x), ops::serial::mean_abs(&x));
        prop_assert_eq!(ops::parallel::max_abs(&x), ops::serial::max_abs(&x));

        let mut yp = vec![0.5f32; d];
        let mut ys = yp.clone();
        ops::parallel::axpy(a, &x, &mut yp);
        ops::serial::axpy(a, &x, &mut ys);
        prop_assert_eq!(&yp, &ys);
        ops::parallel::add_assign(&mut yp, &x);
        ops::serial::add_assign(&mut ys, &x);
        prop_assert_eq!(&yp, &ys);

        // Scatter with duplicate indices: per-position order must match.
        let idx: Vec<u32> = (0..k as u32)
            .map(|i| i.wrapping_mul(2654435761) % (d as u32))
            .collect();
        let vals = ops::gather(&x, &idx);
        let mut sp = vec![0.0f32; d];
        let mut ss = sp.clone();
        ops::parallel::scatter_add(&mut sp, &idx, &vals);
        ops::serial::scatter_add(&mut ss, &idx, &vals);
        prop_assert_eq!(sp, ss);
    }

    #[test]
    fn f16_roundtrip_error_is_relative(v in -60000.0f32..60000.0) {
        let r = F16::from_f32(v).to_f32();
        // Half precision has 11 significand bits: relative error <= 2^-11
        // for normal values, absolute error <= 2^-25 near zero.
        let tol = v.abs() * 2.0f32.powi(-10) + 2.0f32.powi(-24);
        prop_assert!((v - r).abs() <= tol, "v={} r={}", v, r);
    }

    #[test]
    fn f16_conversion_is_monotonic(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }
}
