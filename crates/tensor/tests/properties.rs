//! Property-based tests for the tensor kernels.

use cloudtrain_tensor::half::F16;
use cloudtrain_tensor::{ops, partition};
use proptest::prelude::*;

fn small_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1e4f32..1e4, 0..200)
}

proptest! {
    #[test]
    fn count_ge_matches_filter(x in small_vec(), thres in 0.0f32..1e4) {
        let fast = ops::count_ge(&x, thres);
        let slow = x.iter().filter(|v| v.abs() >= thres).count();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn indices_ge_plus_band_is_disjoint_cover(x in small_vec(), a in 0.0f32..100.0, b in 0.0f32..100.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let top = ops::indices_ge(&x, hi);
        let band = ops::indices_in_band(&x, lo, hi);
        // Disjoint.
        for i in &band {
            prop_assert!(!top.contains(i));
        }
        // Union equals indices >= lo.
        let mut union: Vec<u32> = top.iter().chain(band.iter()).copied().collect();
        union.sort_unstable();
        let mut expect = ops::indices_ge(&x, lo);
        expect.sort_unstable();
        prop_assert_eq!(union, expect);
    }

    #[test]
    fn scatter_add_inverts_gather_on_distinct_indices(x in prop::collection::vec(-100.0f32..100.0, 1..100)) {
        let idx: Vec<u32> = (0..x.len() as u32).step_by(2).collect();
        let vals = ops::gather(&x, &idx);
        let mut y = vec![0.0f32; x.len()];
        ops::scatter_add(&mut y, &idx, &vals);
        for (i, v) in y.iter().enumerate() {
            if i % 2 == 0 {
                prop_assert_eq!(*v, x[i]);
            } else {
                prop_assert_eq!(*v, 0.0);
            }
        }
    }

    #[test]
    fn axpy_is_linear(a in -10.0f32..10.0, x in prop::collection::vec(-10.0f32..10.0, 1..50)) {
        let mut y = vec![0.0f32; x.len()];
        ops::axpy(a, &x, &mut y);
        for (yi, xi) in y.iter().zip(&x) {
            prop_assert!((yi - a * xi).abs() < 1e-4);
        }
    }

    #[test]
    fn shards_partition_any_vector(d in 0usize..10_000, p in 1usize..130) {
        let ss = partition::shards(d, p);
        prop_assert_eq!(ss.iter().map(|s| s.len()).sum::<usize>(), d);
        let mut pos = 0;
        for s in &ss {
            prop_assert_eq!(s.start, pos);
            pos = s.end;
        }
        prop_assert_eq!(pos, d);
        let min = ss.iter().map(|s| s.len()).min().unwrap();
        let max = ss.iter().map(|s| s.len()).max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn f16_roundtrip_error_is_relative(v in -60000.0f32..60000.0) {
        let r = F16::from_f32(v).to_f32();
        // Half precision has 11 significand bits: relative error <= 2^-11
        // for normal values, absolute error <= 2^-25 near zero.
        let tol = v.abs() * 2.0f32.powi(-10) + 2.0f32.powi(-24);
        prop_assert!((v - r).abs() <= tol, "v={} r={}", v, r);
    }

    #[test]
    fn f16_conversion_is_monotonic(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }
}
