use std::fmt;

/// Error raised when two tensors (or a tensor and a requested view) have
/// incompatible shapes or lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    msg: String,
}

impl ShapeError {
    /// Creates a shape error with the given description.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Convenience constructor for a length mismatch between two operands.
    pub fn len_mismatch(op: &str, lhs: usize, rhs: usize) -> Self {
        Self::new(format!("{op}: length mismatch ({lhs} vs {rhs})"))
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}

/// Result alias for fallible shape-checked operations.
pub type ShapeResult<T> = Result<T, ShapeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ShapeError::len_mismatch("add", 3, 4);
        assert!(e.to_string().contains("add"));
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("4"));
    }
}
