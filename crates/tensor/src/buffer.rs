use crate::ops;
use crate::{ShapeError, ShapeResult};

/// A shaped, contiguous `f32` tensor.
///
/// `Tensor` is row-major and always owns its storage. It is intentionally
/// minimal: the distributed-training stack mostly treats gradients and
/// parameters as flat vectors (for compression and communication), while the
/// DNN crate uses the shape metadata for layer algebra.
///
/// # Examples
/// ```
/// use cloudtrain_tensor::Tensor;
///
/// let mut g = Tensor::zeros(vec![2, 3]);
/// g.as_mut_slice()[0] = 1.0;
/// assert_eq!(g.len(), 6);
/// assert_eq!(g.shape(), &[2, 3]);
/// assert_eq!(g.l2_norm(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        Self {
            data: vec![0.0; len],
            shape,
        }
    }

    /// Creates a 1-D tensor of zeros with `len` elements.
    pub fn zeros_1d(len: usize) -> Self {
        Self::zeros(vec![len])
    }

    /// Creates a tensor filled with `v`.
    pub fn full(shape: Vec<usize>, v: f32) -> Self {
        let len = shape.iter().product();
        Self {
            data: vec![v; len],
            shape,
        }
    }

    /// Wraps an existing buffer with the given shape.
    ///
    /// # Errors
    /// Returns a [`ShapeError`] if `data.len()` does not equal the product of
    /// the shape dimensions.
    pub fn from_vec(data: Vec<f32>, shape: Vec<usize>) -> ShapeResult<Self> {
        let expect: usize = shape.iter().product();
        if data.len() != expect {
            return Err(ShapeError::new(format!(
                "from_vec: buffer has {} elements but shape {:?} needs {}",
                data.len(),
                shape,
                expect
            )));
        }
        Ok(Self { data, shape })
    }

    /// Wraps a buffer as a 1-D tensor.
    pub fn from_vec_1d(data: Vec<f32>) -> Self {
        let shape = vec![data.len()];
        Self { data, shape }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The shape (dimensions) of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Read-only view of the flat storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of the same total size.
    ///
    /// # Errors
    /// Returns a [`ShapeError`] if the element counts differ.
    pub fn reshape(&mut self, shape: Vec<usize>) -> ShapeResult<()> {
        let expect: usize = shape.iter().product();
        if expect != self.data.len() {
            return Err(ShapeError::new(format!(
                "reshape: cannot view {} elements as {:?}",
                self.data.len(),
                shape
            )));
        }
        self.shape = shape;
        Ok(())
    }

    /// `self += other`.
    ///
    /// # Errors
    /// Returns a [`ShapeError`] on a length mismatch.
    pub fn add_assign(&mut self, other: &Tensor) -> ShapeResult<()> {
        if self.len() != other.len() {
            return Err(ShapeError::len_mismatch(
                "add_assign",
                self.len(),
                other.len(),
            ));
        }
        ops::add_assign(&mut self.data, &other.data);
        Ok(())
    }

    /// `self -= other`.
    ///
    /// # Errors
    /// Returns a [`ShapeError`] on a length mismatch.
    pub fn sub_assign(&mut self, other: &Tensor) -> ShapeResult<()> {
        if self.len() != other.len() {
            return Err(ShapeError::len_mismatch(
                "sub_assign",
                self.len(),
                other.len(),
            ));
        }
        ops::sub_assign(&mut self.data, &other.data);
        Ok(())
    }

    /// `self += a * other` (axpy).
    ///
    /// # Errors
    /// Returns a [`ShapeError`] on a length mismatch.
    pub fn axpy(&mut self, a: f32, other: &Tensor) -> ShapeResult<()> {
        if self.len() != other.len() {
            return Err(ShapeError::len_mismatch("axpy", self.len(), other.len()));
        }
        ops::axpy(a, &other.data, &mut self.data);
        Ok(())
    }

    /// Multiplies every element by `a`.
    pub fn scale(&mut self, a: f32) {
        ops::scale(&mut self.data, a);
    }

    /// Sets every element to zero.
    pub fn zero(&mut self) {
        ops::fill(&mut self.data, 0.0);
    }

    /// Euclidean norm of the flat storage.
    pub fn l2_norm(&self) -> f32 {
        ops::l2_norm(&self.data)
    }

    /// Mean of absolute values.
    pub fn mean_abs(&self) -> f32 {
        ops::mean_abs(&self.data)
    }

    /// Maximum absolute value.
    pub fn max_abs(&self) -> f32 {
        ops::max_abs(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(vec![4, 5]);
        assert_eq!(t.len(), 20);
        assert!(!t.is_empty());
        assert_eq!(t.shape(), &[4, 5]);
        let t = Tensor::full(vec![3], 2.0);
        assert_eq!(t.as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor::from_vec(vec![0.0; 6], vec![2, 3]).is_ok());
        assert!(Tensor::from_vec(vec![0.0; 5], vec![2, 3]).is_err());
    }

    #[test]
    fn reshape_validates() {
        let mut t = Tensor::zeros_1d(6);
        assert!(t.reshape(vec![3, 2]).is_ok());
        assert_eq!(t.shape(), &[3, 2]);
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn arithmetic() {
        let mut a = Tensor::from_vec_1d(vec![1.0, 2.0]);
        let b = Tensor::from_vec_1d(vec![3.0, 4.0]);
        a.add_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[4.0, 6.0]);
        a.sub_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.as_slice(), &[7.0, 10.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[3.5, 5.0]);
        a.zero();
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn arithmetic_shape_errors() {
        let mut a = Tensor::zeros_1d(2);
        let b = Tensor::zeros_1d(3);
        assert!(a.add_assign(&b).is_err());
        assert!(a.sub_assign(&b).is_err());
        assert!(a.axpy(1.0, &b).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec_1d(vec![-3.0, 4.0]);
        assert_eq!(t.l2_norm(), 5.0);
        assert_eq!(t.mean_abs(), 3.5);
        assert_eq!(t.max_abs(), 4.0);
    }
}
