//! Contiguous range partitioning of a `d`-element vector over `P` workers.
//!
//! Three subsystems share this indexing scheme and must agree on it exactly:
//!
//! * ring **ReduceScatter** assigns shard `j` to GPU `j` (Eq. 4 of the paper),
//! * **HiTopKComm** runs MSTopK on each GPU's ReduceScatter shard (Eq. 5),
//! * the **parallel tensor operator** partitions a replicated tensor over
//!   workers (Eq. 13).
//!
//! The scheme: the first `d % P` shards get `ceil(d / P)` elements and the
//! rest get `floor(d / P)`, so shard sizes differ by at most one and
//! concatenating the shards in rank order reconstructs the vector.

/// Half-open range `[start, end)` of a shard within a flat vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// First element index (inclusive).
    pub start: usize,
    /// One past the last element index (exclusive).
    pub end: usize,
}

impl Shard {
    /// Number of elements in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Borrows the shard's elements from a flat slice.
    pub fn slice<'a>(&self, x: &'a [f32]) -> &'a [f32] {
        &x[self.start..self.end]
    }

    /// Mutably borrows the shard's elements from a flat slice.
    pub fn slice_mut<'a>(&self, x: &'a mut [f32]) -> &'a mut [f32] {
        &mut x[self.start..self.end]
    }
}

/// Returns the shard owned by `rank` when a `d`-element vector is split over
/// `parts` workers.
///
/// # Panics
/// Panics if `parts == 0` or `rank >= parts`.
pub fn shard_for(d: usize, parts: usize, rank: usize) -> Shard {
    assert!(parts > 0, "shard_for: parts must be positive");
    assert!(
        rank < parts,
        "shard_for: rank {rank} out of range for {parts} parts"
    );
    let base = d / parts;
    let extra = d % parts;
    let start = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    Shard {
        start,
        end: start + len,
    }
}

/// All `parts` shards in rank order.
pub fn shards(d: usize, parts: usize) -> Vec<Shard> {
    (0..parts).map(|r| shard_for(d, parts, r)).collect()
}

/// Partitions `count` items (e.g. model layers) over `parts` workers and
/// returns the item range owned by `rank` — the layer assignment used by
/// PTO-LARS ("the first GPU calculates 1 to 2 layers' learning rates, ...").
pub fn item_range_for(count: usize, parts: usize, rank: usize) -> std::ops::Range<usize> {
    let s = shard_for(count, parts, rank);
    s.start..s.end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_tile_the_vector() {
        for d in [0usize, 1, 7, 8, 100, 101] {
            for p in [1usize, 2, 3, 8] {
                let ss = shards(d, p);
                assert_eq!(ss.len(), p);
                assert_eq!(ss[0].start, 0);
                assert_eq!(ss[p - 1].end, d);
                for w in ss.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
            }
        }
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one() {
        let ss = shards(103, 8);
        let min = ss.iter().map(Shard::len).min().unwrap();
        let max = ss.iter().map(Shard::len).max().unwrap();
        assert!(max - min <= 1);
        assert_eq!(ss.iter().map(Shard::len).sum::<usize>(), 103);
    }

    #[test]
    fn slicing_matches_ranges() {
        let x: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let s = shard_for(10, 3, 1);
        assert_eq!(s.slice(&x), &[4.0, 5.0, 6.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn layer_assignment_covers_all_layers() {
        // 161 ResNet-50 layers over 128 GPUs: first 33 GPUs get 2, rest get 1.
        let mut seen = [false; 161];
        for rank in 0..128 {
            for l in item_range_for(161, 128, rank) {
                assert!(!seen[l]);
                seen[l] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(item_range_for(161, 128, 0), 0..2);
        assert_eq!(item_range_for(161, 128, 127), 160..161);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn rank_out_of_range_panics() {
        shard_for(10, 2, 2);
    }
}
