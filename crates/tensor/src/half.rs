//! Software IEEE 754 binary16 ("half precision", `f16`).
//!
//! The paper's communication experiments (Fig. 7) transmit FP16 elements, and
//! mixed-precision training keeps an FP16 copy of activations/gradients. This
//! module provides a bit-accurate conversion between `f32` and the 16-bit
//! encoding, sufficient for (a) wire-volume accounting and (b) modelling the
//! precision loss of an FP16 round-trip.
//!
//! Conversion uses round-to-nearest-even, handles subnormals, infinities and
//! NaN, and matches hardware `_cvtss_sh`/`_cvtsh_ss` semantics on the values
//! used in this workspace.

/// A 16-bit IEEE 754 binary16 value stored as its bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct F16(pub u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Largest finite value (65504.0).
    pub const MAX: F16 = F16(0x7BFF);

    /// Converts an `f32` to `f16` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Self {
        F16(f32_to_f16_bits(x))
    }

    /// Converts back to `f32` (exact; every `f16` is representable in `f32`).
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Whether the value encodes NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }
}

fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN. Preserve a quiet-NaN payload bit so NaN stays NaN.
        return if mant == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00
        };
    }

    // Unbiased exponent, rebiased for f16 (bias 15 vs 127).
    let e = exp - 127 + 15;
    if e >= 0x1F {
        // Overflow to infinity.
        return sign | 0x7C00;
    }
    if e <= 0 {
        // Subnormal in f16 (or underflow to zero).
        if e < -10 {
            return sign; // underflows to signed zero
        }
        // Add the implicit leading 1, then shift right with rounding.
        let m = mant | 0x0080_0000;
        let shift = (14 - e) as u32;
        let halfway = 1u32 << (shift - 1);
        let mut half = m >> shift;
        let rem = m & ((1 << shift) - 1);
        if rem > halfway || (rem == halfway && (half & 1) == 1) {
            half += 1;
        }
        return sign | half as u16;
    }

    // Normalised: round the 23-bit mantissa to 10 bits (round-to-nearest-even).
    let mut half = ((e as u32) << 10) | (mant >> 13);
    let rem = mant & 0x1FFF;
    if rem > 0x1000 || (rem == 0x1000 && (half & 1) == 1) {
        half += 1; // may carry into the exponent; that is the correct result
    }
    sign | half as u16
}

fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x03FF) as u32;

    let bits = if exp == 0 {
        if mant == 0 {
            sign // signed zero
        } else {
            // Subnormal: normalise the mantissa.
            let mut e = -1i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e += 1;
            }
            let m = (m & 0x03FF) << 13;
            let e = (127 - 15 - e) as u32;
            sign | (e << 23) | m
        }
    } else if exp == 0x1F {
        sign | 0x7F80_0000 | (mant << 13) // Inf / NaN
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Converts a slice of `f32` to its `f16` encodings.
pub fn encode_f16(x: &[f32]) -> Vec<F16> {
    x.iter().map(|&v| F16::from_f32(v)).collect()
}

/// Converts a slice of `f16` back to `f32`.
pub fn decode_f16(x: &[F16]) -> Vec<f32> {
    x.iter().map(|v| v.to_f32()).collect()
}

/// Applies an FP16 round-trip in place, modelling the precision loss of an
/// FP16 wire format.
pub fn roundtrip_f16(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = F16::from_f32(*v).to_f32();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values_roundtrip() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, -3.25, 1024.0, 65504.0] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(F16::from_f32(1e6), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e6).to_f32(), f32::NEG_INFINITY);
        // Largest f16 is 65504; 65520 rounds up to infinity.
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY);
    }

    #[test]
    fn underflow_and_subnormals() {
        // Smallest positive subnormal f16 is 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        // Below half the smallest subnormal rounds to zero.
        assert_eq!(F16::from_f32(2.0f32.powi(-26)).to_f32(), 0.0);
        // A subnormal like 2^-20 must roundtrip exactly.
        let sub = 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(sub).to_f32(), sub);
    }

    #[test]
    fn nan_is_preserved() {
        let h = F16::from_f32(f32::NAN);
        assert!(h.is_nan());
        assert!(h.to_f32().is_nan());
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16 (1 + 2^-10);
        // round-to-nearest-even picks 1.0 (even mantissa).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn slice_roundtrip_error_is_bounded() {
        let xs: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 0.0371).collect();
        let enc = encode_f16(&xs);
        let dec = decode_f16(&enc);
        for (a, b) in xs.iter().zip(&dec) {
            // Relative error of f16 is at most 2^-11 for normalised values.
            assert!((a - b).abs() <= a.abs() * 2.0f32.powi(-10) + 1e-6);
        }
        let mut ys = xs.clone();
        roundtrip_f16(&mut ys);
        assert_eq!(ys, dec);
    }
}
