//! Flat slice kernels shared by the compression operators, collectives, and
//! optimizers.
//!
//! The kernels are written as simple loops over contiguous slices: the
//! compiler auto-vectorises all of them, and the branch-free counting
//! kernels ([`count_ge`], [`mean_abs`], [`max_abs`]) are the CPU analogue of
//! the coalesced streaming passes that make MSTopK GPU-friendly in the
//! paper (§3.1).
//!
//! # Execution tiers
//!
//! The hot kernels (`count_ge`, `mean_abs`, `max_abs`, `axpy`, `add_assign`,
//! `scatter_add`) exist in two tiers with **bitwise identical** results:
//!
//! * [`serial`] — always compiled; the default dispatch target.
//! * `parallel` — scoped-thread implementations, compiled behind the
//!   `parallel` feature (alias: `rayon`) and dispatched to when enabled.
//!
//! Determinism contract: every floating-point reduction — in *both* tiers —
//! folds fixed-width blocks of [`REDUCE_BLOCK`] elements and combines the
//! per-block partials in block-index order. Thread count and scheduling can
//! therefore never change a result: the parallel tier computes the same
//! partials on worker threads and folds them in the same order. Mutating
//! kernels partition their output disjointly (element ranges for `axpy` /
//! `add_assign`, index ranges for `scatter_add`, preserving per-position
//! accumulation order), which makes them trivially deterministic.

/// Width of the fixed reduction blocks shared by the serial and parallel
/// tiers. Floating-point partials are combined in block-index order, so the
/// tier choice (and the thread count) never changes a result.
pub const REDUCE_BLOCK: usize = 1 << 16;

/// Per-block inner kernels shared verbatim by both tiers.
mod block {
    /// Sum of absolute values of one block.
    pub(super) fn sum_abs(b: &[f32]) -> f32 {
        b.iter().map(|v| v.abs()).sum()
    }

    /// Maximum absolute value of one block.
    pub(super) fn max_abs(b: &[f32]) -> f32 {
        b.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Elements of one block with `|v| >= thres`.
    pub(super) fn count_ge(b: &[f32], thres: f32) -> usize {
        b.iter().map(|v| usize::from(v.abs() >= thres)).sum()
    }

    /// `y[i] += a * x[i]` over one block pair.
    pub(super) fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }

    /// `y[i] += x[i]` over one block pair.
    pub(super) fn add_assign(y: &mut [f32], x: &[f32]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += xi;
        }
    }
}

/// Sequential reference tier of the hot kernels.
///
/// Reductions fold [`REDUCE_BLOCK`]-wide blocks in block-index order — the
/// exact combine schedule of the `parallel` tier — so the two are bitwise
/// interchangeable.
pub mod serial {
    use super::{block, REDUCE_BLOCK};

    /// Counts elements whose absolute value is `>= thres`.
    pub fn count_ge(x: &[f32], thres: f32) -> usize {
        x.chunks(REDUCE_BLOCK)
            .map(|b| block::count_ge(b, thres))
            .sum()
    }

    /// Arithmetic mean of absolute values; 0 for an empty slice.
    ///
    /// Keeps four independent block chains in flight to overlap the
    /// latency of the strictly-ordered `f32` adds. Each block partial is
    /// still the exact left fold of `block::sum_abs` and partials are
    /// still combined in block-index order, so the result is bitwise
    /// unchanged — only the schedule across blocks differs.
    pub fn mean_abs(x: &[f32]) -> f32 {
        if x.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f32;
        let mut quads = x.chunks_exact(4 * REDUCE_BLOCK);
        for quad in &mut quads {
            let (b0, rest) = quad.split_at(REDUCE_BLOCK);
            let (b1, rest) = rest.split_at(REDUCE_BLOCK);
            let (b2, b3) = rest.split_at(REDUCE_BLOCK);
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for i in 0..REDUCE_BLOCK {
                s0 += b0[i].abs();
                s1 += b1[i].abs();
                s2 += b2[i].abs();
                s3 += b3[i].abs();
            }
            total += s0;
            total += s1;
            total += s2;
            total += s3;
        }
        for b in quads.remainder().chunks(REDUCE_BLOCK) {
            total += block::sum_abs(b);
        }
        total / x.len() as f32
    }

    /// Maximum absolute value; 0 for an empty slice.
    pub fn max_abs(x: &[f32]) -> f32 {
        x.chunks(REDUCE_BLOCK)
            .map(block::max_abs)
            .fold(0.0f32, f32::max)
    }

    /// `y[i] = a * x[i] + y[i]` (BLAS `axpy`).
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(y.len(), x.len(), "axpy: length mismatch");
        block::axpy(a, x, y);
    }

    /// `y[i] += x[i]` for all `i`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn add_assign(y: &mut [f32], x: &[f32]) {
        assert_eq!(y.len(), x.len(), "add_assign: length mismatch");
        block::add_assign(y, x);
    }

    /// Scatter-add: `y[idx[i]] += vals[i]`, applied in `idx` order.
    ///
    /// # Panics
    /// Panics if `idx` and `vals` have different lengths or an index is out
    /// of bounds.
    pub fn scatter_add(y: &mut [f32], idx: &[u32], vals: &[f32]) {
        assert_eq!(idx.len(), vals.len(), "scatter_add: length mismatch");
        for (&i, &v) in idx.iter().zip(vals) {
            y[i as usize] += v;
        }
    }
}

/// Deterministic scoped-thread tier of the hot kernels (feature
/// `parallel`, alias `rayon`).
///
/// Reductions map the same [`REDUCE_BLOCK`]-wide blocks as [`serial`] on
/// worker threads and fold the partials in block-index order; mutating
/// kernels partition their output into disjoint ranges. Results are
/// bitwise identical to the serial tier for every input, thread count, and
/// schedule — the property tests assert so.
///
/// Inputs below [`parallel::PAR_THRESHOLD`] run the serial code directly:
/// thread spawns cost more than the kernels save there, and the identical
/// combine order makes the switch invisible.
#[cfg(feature = "parallel")]
pub mod parallel {
    use super::{block, serial, REDUCE_BLOCK};

    /// Minimum element count before a kernel spawns worker threads.
    pub const PAR_THRESHOLD: usize = 1 << 17;

    /// Worker threads for a `len`-element kernel: the machine's available
    /// parallelism, capped by the number of blocks.
    fn threads_for(len: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        hw.clamp(1, len.div_ceil(REDUCE_BLOCK).max(1))
    }

    /// Maps every block and folds the partials in block-index order —
    /// the serial tier's exact combine schedule.
    fn reduce_blocks<T, M, F>(x: &[f32], identity: T, map: M, fold: F) -> T
    where
        T: Send,
        M: Fn(&[f32]) -> T + Sync,
        F: FnMut(T, T) -> T,
    {
        let threads = threads_for(x.len());
        if threads <= 1 || x.len() < PAR_THRESHOLD {
            return x.chunks(REDUCE_BLOCK).map(&map).fold(identity, fold);
        }
        let blocks: Vec<&[f32]> = x.chunks(REDUCE_BLOCK).collect();
        let per_thread = blocks.len().div_ceil(threads);
        let map = &map;
        let partials: Vec<Vec<T>> = std::thread::scope(|s| {
            let handles: Vec<_> = blocks
                .chunks(per_thread)
                .map(|range| s.spawn(move || range.iter().map(|b| map(b)).collect()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel reduce worker panicked"))
                .collect()
        });
        partials.into_iter().flatten().fold(identity, fold)
    }

    /// Applies `f` to disjoint `(y, x)` range pairs on worker threads.
    fn zip_ranges_mut<F>(y: &mut [f32], x: &[f32], f: F)
    where
        F: Fn(&mut [f32], &[f32]) + Sync,
    {
        let threads = threads_for(y.len());
        if threads <= 1 || y.len() < PAR_THRESHOLD {
            f(y, x);
            return;
        }
        let per_thread = y.len().div_ceil(threads);
        let f = &f;
        std::thread::scope(|s| {
            for (yc, xc) in y.chunks_mut(per_thread).zip(x.chunks(per_thread)) {
                s.spawn(move || f(yc, xc));
            }
        });
    }

    /// Counts elements whose absolute value is `>= thres`.
    pub fn count_ge(x: &[f32], thres: f32) -> usize {
        reduce_blocks(x, 0usize, |b| block::count_ge(b, thres), |a, b| a + b)
    }

    /// Arithmetic mean of absolute values; 0 for an empty slice.
    pub fn mean_abs(x: &[f32]) -> f32 {
        if x.is_empty() {
            return 0.0;
        }
        reduce_blocks(x, 0.0f32, block::sum_abs, |a, b| a + b) / x.len() as f32
    }

    /// Maximum absolute value; 0 for an empty slice.
    pub fn max_abs(x: &[f32]) -> f32 {
        reduce_blocks(x, 0.0f32, block::max_abs, f32::max)
    }

    /// `y[i] = a * x[i] + y[i]` (BLAS `axpy`).
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(y.len(), x.len(), "axpy: length mismatch");
        zip_ranges_mut(y, x, |yc, xc| block::axpy(a, xc, yc));
    }

    /// `y[i] += x[i]` for all `i`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn add_assign(y: &mut [f32], x: &[f32]) {
        assert_eq!(y.len(), x.len(), "add_assign: length mismatch");
        zip_ranges_mut(y, x, block::add_assign);
    }

    /// Scatter-add: `y[idx[i]] += vals[i]`.
    ///
    /// Each worker owns a disjoint output range and applies, in `idx`
    /// order, exactly the contributions that land in its range — the same
    /// per-position accumulation order as the serial tier.
    ///
    /// # Panics
    /// Panics if `idx` and `vals` have different lengths or an index is
    /// out of bounds.
    pub fn scatter_add(y: &mut [f32], idx: &[u32], vals: &[f32]) {
        assert_eq!(idx.len(), vals.len(), "scatter_add: length mismatch");
        let threads = threads_for(y.len());
        if threads <= 1 || y.len() < PAR_THRESHOLD || idx.len() < threads {
            serial::scatter_add(y, idx, vals);
            return;
        }
        // The bounds check the serial loop performs implicitly, hoisted so
        // out-of-range indices panic instead of being silently dropped by
        // the range partition below.
        let d = y.len();
        assert!(
            idx.iter().all(|&i| (i as usize) < d),
            "scatter_add: index out of bounds"
        );
        let per_thread = d.div_ceil(threads);
        std::thread::scope(|s| {
            for (part, yc) in y.chunks_mut(per_thread).enumerate() {
                let lo = part * per_thread;
                s.spawn(move || {
                    for (&i, &v) in idx.iter().zip(vals) {
                        let i = i as usize;
                        if i >= lo && i < lo + yc.len() {
                            yc[i - lo] += v;
                        }
                    }
                });
            }
        });
    }
}

/// `y[i] += x[i]` for all `i`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    #[cfg(feature = "parallel")]
    {
        parallel::add_assign(y, x)
    }
    #[cfg(not(feature = "parallel"))]
    {
        serial::add_assign(y, x)
    }
}

/// `y[i] -= x[i]` for all `i`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sub_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "sub_assign: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi -= xi;
    }
}

/// `y[i] = a * x[i] + y[i]` (BLAS `axpy`).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    #[cfg(feature = "parallel")]
    {
        parallel::axpy(a, x, y)
    }
    #[cfg(not(feature = "parallel"))]
    {
        serial::axpy(a, x, y)
    }
}

/// `x[i] *= a` for all `i`.
pub fn scale(x: &mut [f32], a: f32) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Fills `x` with `v`.
pub fn fill(x: &mut [f32], v: f32) {
    for xi in x.iter_mut() {
        *xi = v;
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn l2_norm(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Sum of all elements.
pub fn sum(x: &[f32]) -> f32 {
    x.iter().sum()
}

/// Arithmetic mean of the absolute values (the `mean(abs(x))` pass of
/// MSTopK, Algorithm 1 line 2). Returns 0 for an empty slice.
pub fn mean_abs(x: &[f32]) -> f32 {
    #[cfg(feature = "parallel")]
    {
        parallel::mean_abs(x)
    }
    #[cfg(not(feature = "parallel"))]
    {
        serial::mean_abs(x)
    }
}

/// Maximum absolute value (Algorithm 1 line 3). Returns 0 for an empty slice.
pub fn max_abs(x: &[f32]) -> f32 {
    #[cfg(feature = "parallel")]
    {
        parallel::max_abs(x)
    }
    #[cfg(not(feature = "parallel"))]
    {
        serial::max_abs(x)
    }
}

/// Counts elements whose absolute value is `>= thres` (Algorithm 1 line 10's
/// `count_nonzero(a >= thres)` with `a = abs(x)`).
///
/// Branch-free streaming pass — this is the kernel MSTopK repeats `N` times
/// instead of performing a data-dependent selection.
pub fn count_ge(x: &[f32], thres: f32) -> usize {
    #[cfg(feature = "parallel")]
    {
        parallel::count_ge(x, thres)
    }
    #[cfg(not(feature = "parallel"))]
    {
        serial::count_ge(x, thres)
    }
}

/// Collects the indices of elements with `|x[i]| >= thres`, preserving order.
pub fn indices_ge(x: &[f32], thres: f32) -> Vec<u32> {
    x.iter()
        .enumerate()
        .filter(|(_, v)| v.abs() >= thres)
        .map(|(i, _)| i as u32)
        .collect()
}

/// Collects the indices of elements with `lo <= |x[i]| < hi`, preserving
/// order (Algorithm 1 line 26: the between-thresholds bracket).
pub fn indices_in_band(x: &[f32], lo: f32, hi: f32) -> Vec<u32> {
    x.iter()
        .enumerate()
        .filter(|(_, v)| {
            let a = v.abs();
            a >= lo && a < hi
        })
        .map(|(i, _)| i as u32)
        .collect()
}

/// Gathers `x[idx[i]]` into a new vector.
///
/// # Panics
/// Panics if any index is out of bounds.
pub fn gather(x: &[f32], idx: &[u32]) -> Vec<f32> {
    idx.iter().map(|&i| x[i as usize]).collect()
}

/// Scatter-add: `y[idx[i]] += vals[i]`.
///
/// Used to accumulate sparse gradient contributions after an AllGather of
/// (values, indices) pairs (Algorithm 2 line 18).
///
/// # Panics
/// Panics if `idx` and `vals` have different lengths or an index is out of
/// bounds.
pub fn scatter_add(y: &mut [f32], idx: &[u32], vals: &[f32]) {
    #[cfg(feature = "parallel")]
    {
        parallel::scatter_add(y, idx, vals)
    }
    #[cfg(not(feature = "parallel"))]
    {
        serial::scatter_add(y, idx, vals)
    }
}

/// Zeros the elements of `x` at the given indices (used by error-feedback to
/// clear the transmitted coordinates from the residual).
pub fn zero_at(x: &mut [f32], idx: &[u32]) {
    for &i in idx {
        x[i as usize] = 0.0;
    }
}

/// Returns `max(|a[i] - b[i]|)`, the L∞ distance; 0 for empty slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn linf_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "linf_distance: length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0f32, |m, (x, y)| m.max((x - y).abs()))
}

/// Checks approximate element-wise equality with the given absolute
/// tolerance.
pub fn approx_eq(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && linf_distance(a, b) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_matches_manual() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = [1.5, -2.5, 0.0, 4.0];
        let mut y = [1.0, 1.0, 1.0, 1.0];
        add_assign(&mut y, &x);
        sub_assign(&mut y, &x);
        assert_eq!(y, [1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn norms_and_dot() {
        let a = [3.0, 4.0];
        assert_eq!(l2_norm(&a), 5.0);
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(sum(&a), 7.0);
    }

    #[test]
    fn abs_stats() {
        let x = [-4.0, 1.0, -2.0, 3.0];
        assert_eq!(mean_abs(&x), 2.5);
        assert_eq!(max_abs(&x), 4.0);
        assert_eq!(mean_abs(&[]), 0.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn counting_and_band_selection() {
        let x = [-4.0, 1.0, -2.0, 3.0];
        assert_eq!(count_ge(&x, 2.0), 3);
        assert_eq!(indices_ge(&x, 3.0), vec![0, 3]);
        assert_eq!(indices_in_band(&x, 1.0, 3.0), vec![1, 2]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let x = [10.0, 20.0, 30.0, 40.0];
        let idx = [3u32, 1];
        let vals = gather(&x, &idx);
        assert_eq!(vals, vec![40.0, 20.0]);
        let mut y = [0.0; 4];
        scatter_add(&mut y, &idx, &vals);
        assert_eq!(y, [0.0, 20.0, 0.0, 40.0]);
        let mut z = x;
        zero_at(&mut z, &idx);
        assert_eq!(z, [10.0, 0.0, 30.0, 0.0]);
    }

    #[test]
    fn distance_helpers() {
        let a = [1.0, 2.0];
        let b = [1.0, 2.5];
        assert_eq!(linf_distance(&a, &b), 0.5);
        assert!(approx_eq(&a, &b, 0.5));
        assert!(!approx_eq(&a, &b, 0.4));
        assert!(!approx_eq(&a, &[1.0], 1.0));
    }

    #[test]
    fn scale_and_fill() {
        let mut x = [1.0, -2.0];
        scale(&mut x, -2.0);
        assert_eq!(x, [-2.0, 4.0]);
        fill(&mut x, 7.0);
        assert_eq!(x, [7.0, 7.0]);
    }

    #[test]
    fn reductions_span_block_boundaries() {
        // Straddle several REDUCE_BLOCK boundaries so the block-ordered
        // combine path is exercised (not just the single-block fast case).
        let d = 2 * REDUCE_BLOCK + 17;
        let x: Vec<f32> = (0..d).map(|i| ((i % 101) as f32 - 50.0) * 0.25).collect();
        let linear_count = x.iter().filter(|v| v.abs() >= 6.0).count();
        assert_eq!(count_ge(&x, 6.0), linear_count);
        let max = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert_eq!(max_abs(&x), max);
        // Mean over blocks stays within float noise of the linear mean.
        let linear_mean = x.iter().map(|v| v.abs() as f64).sum::<f64>() / d as f64;
        assert!((mean_abs(&x) as f64 - linear_mean).abs() < 1e-3);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_tier_matches_serial_bitwise() {
        let d = parallel::PAR_THRESHOLD + 3 * REDUCE_BLOCK + 11;
        let x: Vec<f32> = (0..d)
            .map(|i| (((i * 2654435761) % 1000) as f32 - 500.0) * 1e-3)
            .collect();
        assert_eq!(parallel::count_ge(&x, 0.25), serial::count_ge(&x, 0.25));
        assert_eq!(parallel::mean_abs(&x), serial::mean_abs(&x));
        assert_eq!(parallel::max_abs(&x), serial::max_abs(&x));

        let mut ya = vec![1.0f32; d];
        let mut yb = ya.clone();
        parallel::axpy(0.5, &x, &mut ya);
        serial::axpy(0.5, &x, &mut yb);
        assert_eq!(ya, yb);
        parallel::add_assign(&mut ya, &x);
        serial::add_assign(&mut yb, &x);
        assert_eq!(ya, yb);

        // Duplicate indices: accumulation order per position must match.
        let idx: Vec<u32> = (0..4096u32).map(|i| (i * 37) % (d as u32)).collect();
        let vals: Vec<f32> = idx.iter().map(|&i| (i as f32).sin()).collect();
        let mut sa = vec![0.0f32; d];
        let mut sb = sa.clone();
        parallel::scatter_add(&mut sa, &idx, &vals);
        serial::scatter_add(&mut sb, &idx, &vals);
        assert_eq!(sa, sb);
    }

    #[cfg(feature = "parallel")]
    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn parallel_scatter_add_rejects_out_of_bounds() {
        let mut y = vec![0.0f32; parallel::PAR_THRESHOLD + 1];
        let idx: Vec<u32> = (0..64)
            .map(|i| if i == 63 { y.len() as u32 } else { i })
            .collect();
        let vals = vec![1.0; idx.len()];
        parallel::scatter_add(&mut y, &idx, &vals);
    }
}
