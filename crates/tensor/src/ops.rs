//! Flat slice kernels shared by the compression operators, collectives, and
//! optimizers.
//!
//! The kernels are written as simple loops over contiguous slices: the
//! compiler auto-vectorises all of them, and the branch-free counting
//! kernels ([`count_ge`], [`mean_abs`], [`max_abs`]) are the CPU analogue of
//! the coalesced streaming passes that make MSTopK GPU-friendly in the
//! paper (§3.1).
//!
//! # Execution tiers
//!
//! Two independent tier axes compose, and every combination is **bitwise
//! identical** for every input:
//!
//! * **Lane tier** — [`scalar`] (per-element reference loops) vs [`simd`]
//!   (explicit fixed-width `[f32; LANES]` lane-array kernels the
//!   autovectorizer maps onto vector registers; safe, `forbid_unsafe`-clean).
//!   Both modules are always compiled; the `simd` cargo feature selects
//!   which one the dispatching kernels run.
//! * **Thread tier** — [`serial`] (always compiled; the default dispatch
//!   target) vs `parallel` (scoped-thread implementations behind the
//!   `parallel` feature, alias `rayon`).
//!
//! Determinism contract: every floating-point reduction — in *all* tiers —
//! follows one canonical schedule. Across blocks, fixed-width blocks of
//! [`REDUCE_BLOCK`] elements are folded with per-block partials combined in
//! block-index order. Within a block, partials accumulate into [`LANES`]
//! independent lanes striped across the block and are combined in lane
//! order (the *lane-striped schedule*), with the sub-lane tail folded last.
//! The [`scalar`] and [`simd`] modules implement this same schedule —
//! per-element vs lane-array form — so the feature choice never changes a
//! result, and the thread tier computes the same block partials on worker
//! threads and folds them in the same order. Mutating kernels partition
//! their output disjointly (element ranges for `axpy` / `add_assign`, index
//! ranges for `scatter_add`, preserving per-position accumulation order),
//! which makes them trivially deterministic. The property tests assert
//! bitwise identity across all tier combinations.

/// Width of the fixed reduction blocks shared by the serial and parallel
/// tiers. Floating-point partials are combined in block-index order, so the
/// tier choice (and the thread count) never changes a result.
pub const REDUCE_BLOCK: usize = 1 << 16;

/// Lane width of the canonical in-block reduction schedule and of the
/// [`simd`] tier's `[f32; LANES]` kernels. [`REDUCE_BLOCK`] is a multiple
/// of `LANES`, so full blocks have no sub-lane tail.
pub const LANES: usize = 8;

/// Per-element reference forms of the lane kernels (the *scalar* lane tier).
///
/// Every reduction implements the canonical lane-striped schedule (see the
/// module docs) in plain per-element loops, so the results are bitwise
/// identical to the [`simd`] twin for every input — the property tests
/// assert so. This module is always compiled: differential tests and the
/// micro-benches compare the two tiers regardless of the feature set.
pub mod scalar {
    use super::LANES;

    /// Sum of absolute values under the canonical lane-striped schedule.
    pub fn sum_abs(x: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let mut chunks = x.chunks_exact(LANES);
        for c in &mut chunks {
            for (a, v) in acc.iter_mut().zip(c) {
                *a += v.abs();
            }
        }
        let mut total = 0.0f32;
        for a in acc {
            total += a;
        }
        for v in chunks.remainder() {
            total += v.abs();
        }
        total
    }

    /// Maximum absolute value; 0 for an empty slice.
    pub fn max_abs(x: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let mut chunks = x.chunks_exact(LANES);
        for c in &mut chunks {
            for (a, v) in acc.iter_mut().zip(c) {
                *a = a.max(v.abs());
            }
        }
        let mut m = 0.0f32;
        for a in acc {
            m = m.max(a);
        }
        for v in chunks.remainder() {
            m = m.max(v.abs());
        }
        m
    }

    /// Elements with `|v| >= thres` (exact — an integer reduction).
    pub fn count_ge(x: &[f32], thres: f32) -> usize {
        let mut acc = [0usize; LANES];
        let mut chunks = x.chunks_exact(LANES);
        for c in &mut chunks {
            for (a, v) in acc.iter_mut().zip(c) {
                *a += usize::from(v.abs() >= thres);
            }
        }
        acc.iter().sum::<usize>()
            + chunks
                .remainder()
                .iter()
                .map(|v| usize::from(v.abs() >= thres))
                .sum::<usize>()
    }

    /// `y[i] += x[i]` for all `i`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn add_assign(y: &mut [f32], x: &[f32]) {
        assert_eq!(y.len(), x.len(), "add_assign: length mismatch");
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += xi;
        }
    }

    /// `y[i] -= x[i]` for all `i`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn sub_assign(y: &mut [f32], x: &[f32]) {
        assert_eq!(y.len(), x.len(), "sub_assign: length mismatch");
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi -= xi;
        }
    }

    /// `y[i] = a * x[i] + y[i]` (BLAS `axpy`).
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(y.len(), x.len(), "axpy: length mismatch");
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }

    /// `x[i] *= a` for all `i`.
    pub fn scale(x: &mut [f32], a: f32) {
        for xi in x.iter_mut() {
            *xi *= a;
        }
    }

    /// Scatter-add: `y[idx[i]] += vals[i]`, applied in `idx` order.
    ///
    /// # Panics
    /// Panics if `idx` and `vals` have different lengths or an index is out
    /// of bounds.
    pub fn scatter_add(y: &mut [f32], idx: &[u32], vals: &[f32]) {
        assert_eq!(idx.len(), vals.len(), "scatter_add: length mismatch");
        for (&i, &v) in idx.iter().zip(vals) {
            y[i as usize] += v;
        }
    }

    /// Zeros the elements of `x` at the given indices.
    ///
    /// # Panics
    /// Panics if an index is out of bounds.
    pub fn zero_at(x: &mut [f32], idx: &[u32]) {
        for &i in idx {
            x[i as usize] = 0.0;
        }
    }
}

/// Fixed-width lane-array kernels (the *simd* lane tier).
///
/// Each kernel loads `[f32; LANES]` value blocks and applies whole-array
/// arithmetic — the shape LLVM reliably lowers onto vector registers
/// without any `unsafe` or intrinsics. Reductions keep [`LANES`]
/// independent accumulator lanes and combine them in lane order: the
/// canonical lane-striped schedule, identical to [`scalar`], so results are
/// bitwise equal to the scalar tier for every input.
pub mod simd {
    use super::LANES;

    /// Loads one lane array from a slice of at least `LANES` elements.
    #[inline]
    fn load(c: &[f32]) -> [f32; LANES] {
        std::array::from_fn(|j| c[j])
    }

    /// Element-wise absolute value of one lane array.
    #[inline]
    fn abs_lanes(v: [f32; LANES]) -> [f32; LANES] {
        let mut out = v;
        for o in out.iter_mut() {
            *o = o.abs();
        }
        out
    }

    /// Element-wise sum of two lane arrays.
    #[inline]
    fn add_lanes(a: [f32; LANES], b: [f32; LANES]) -> [f32; LANES] {
        let mut out = a;
        for (o, v) in out.iter_mut().zip(b) {
            *o += v;
        }
        out
    }

    /// Element-wise maximum of two lane arrays.
    #[inline]
    fn max_lanes(a: [f32; LANES], b: [f32; LANES]) -> [f32; LANES] {
        let mut out = a;
        for (o, v) in out.iter_mut().zip(b) {
            *o = o.max(v);
        }
        out
    }

    /// Sum of absolute values under the canonical lane-striped schedule.
    pub fn sum_abs(x: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let mut chunks = x.chunks_exact(LANES);
        for c in &mut chunks {
            acc = add_lanes(acc, abs_lanes(load(c)));
        }
        let mut total = 0.0f32;
        for a in acc {
            total += a;
        }
        for v in chunks.remainder() {
            total += v.abs();
        }
        total
    }

    /// Maximum absolute value; 0 for an empty slice.
    pub fn max_abs(x: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let mut chunks = x.chunks_exact(LANES);
        for c in &mut chunks {
            acc = max_lanes(acc, abs_lanes(load(c)));
        }
        let mut m = 0.0f32;
        for a in acc {
            m = m.max(a);
        }
        for v in chunks.remainder() {
            m = m.max(v.abs());
        }
        m
    }

    /// Elements with `|v| >= thres` (exact — an integer reduction).
    pub fn count_ge(x: &[f32], thres: f32) -> usize {
        let mut acc = [0usize; LANES];
        let mut chunks = x.chunks_exact(LANES);
        for c in &mut chunks {
            let lane = abs_lanes(load(c));
            for (a, v) in acc.iter_mut().zip(lane) {
                *a += usize::from(v >= thres);
            }
        }
        acc.iter().sum::<usize>()
            + chunks
                .remainder()
                .iter()
                .map(|v| usize::from(v.abs() >= thres))
                .sum::<usize>()
    }

    /// `y[i] += x[i]` for all `i`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn add_assign(y: &mut [f32], x: &[f32]) {
        assert_eq!(y.len(), x.len(), "add_assign: length mismatch");
        let mut yc = y.chunks_exact_mut(LANES);
        let mut xc = x.chunks_exact(LANES);
        for (yl, xl) in (&mut yc).zip(&mut xc) {
            let out = add_lanes(load(yl), load(xl));
            yl.copy_from_slice(&out);
        }
        for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
            *yi += xi;
        }
    }

    /// `y[i] -= x[i]` for all `i`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn sub_assign(y: &mut [f32], x: &[f32]) {
        assert_eq!(y.len(), x.len(), "sub_assign: length mismatch");
        let mut yc = y.chunks_exact_mut(LANES);
        let mut xc = x.chunks_exact(LANES);
        for (yl, xl) in (&mut yc).zip(&mut xc) {
            let mut out = load(yl);
            for (o, v) in out.iter_mut().zip(load(xl)) {
                *o -= v;
            }
            yl.copy_from_slice(&out);
        }
        for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
            *yi -= xi;
        }
    }

    /// `y[i] = a * x[i] + y[i]` (BLAS `axpy`).
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(y.len(), x.len(), "axpy: length mismatch");
        let mut yc = y.chunks_exact_mut(LANES);
        let mut xc = x.chunks_exact(LANES);
        for (yl, xl) in (&mut yc).zip(&mut xc) {
            let mut out = load(yl);
            for (o, v) in out.iter_mut().zip(load(xl)) {
                *o += a * v;
            }
            yl.copy_from_slice(&out);
        }
        for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
            *yi += a * xi;
        }
    }

    /// `x[i] *= a` for all `i`.
    pub fn scale(x: &mut [f32], a: f32) {
        let mut xc = x.chunks_exact_mut(LANES);
        for xl in &mut xc {
            let mut out = load(xl);
            for o in out.iter_mut() {
                *o *= a;
            }
            xl.copy_from_slice(&out);
        }
        for xi in xc.into_remainder() {
            *xi *= a;
        }
    }

    /// Scatter-add: `y[idx[i]] += vals[i]`, applied in `idx` order.
    ///
    /// The index/value streams are walked in lane-wide chunks (gathered
    /// into `[f32; LANES]` registers) but contributions land in the exact
    /// global `idx` order, so duplicate indices accumulate identically to
    /// the scalar tier.
    ///
    /// # Panics
    /// Panics if `idx` and `vals` have different lengths or an index is out
    /// of bounds.
    pub fn scatter_add(y: &mut [f32], idx: &[u32], vals: &[f32]) {
        assert_eq!(idx.len(), vals.len(), "scatter_add: length mismatch");
        let mut ic = idx.chunks_exact(LANES);
        let mut vc = vals.chunks_exact(LANES);
        for (il, vl) in (&mut ic).zip(&mut vc) {
            let lane = load(vl);
            for (j, &i) in il.iter().enumerate() {
                y[i as usize] += lane[j];
            }
        }
        for (&i, &v) in ic.remainder().iter().zip(vc.remainder()) {
            y[i as usize] += v;
        }
    }

    /// Zeros the elements of `x` at the given indices.
    ///
    /// # Panics
    /// Panics if an index is out of bounds.
    pub fn zero_at(x: &mut [f32], idx: &[u32]) {
        let mut ic = idx.chunks_exact(LANES);
        for il in &mut ic {
            for &i in il {
                x[i as usize] = 0.0;
            }
        }
        for &i in ic.remainder() {
            x[i as usize] = 0.0;
        }
    }
}

/// Per-block inner kernels shared verbatim by both thread tiers; each
/// dispatches to the lane tier selected by the `simd` feature. Both lane
/// tiers implement the canonical lane-striped schedule, so the feature
/// never changes a result.
mod block {
    #[cfg(feature = "simd")]
    use super::simd as lane;

    #[cfg(not(feature = "simd"))]
    use super::scalar as lane;

    /// Sum of absolute values of one block.
    pub(super) fn sum_abs(b: &[f32]) -> f32 {
        lane::sum_abs(b)
    }

    /// Maximum absolute value of one block.
    pub(super) fn max_abs(b: &[f32]) -> f32 {
        lane::max_abs(b)
    }

    /// Elements of one block with `|v| >= thres`.
    pub(super) fn count_ge(b: &[f32], thres: f32) -> usize {
        lane::count_ge(b, thres)
    }

    /// `y[i] += a * x[i]` over one block pair.
    pub(super) fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        lane::axpy(a, x, y);
    }

    /// `y[i] += x[i]` over one block pair.
    pub(super) fn add_assign(y: &mut [f32], x: &[f32]) {
        lane::add_assign(y, x);
    }

    /// Scatter-add over the full index stream.
    pub(super) fn scatter_add(y: &mut [f32], idx: &[u32], vals: &[f32]) {
        lane::scatter_add(y, idx, vals);
    }

    /// `x[i] *= a` over one block.
    pub(super) fn scale(x: &mut [f32], a: f32) {
        lane::scale(x, a);
    }

    /// `y[i] -= x[i]` over one block pair.
    pub(super) fn sub_assign(y: &mut [f32], x: &[f32]) {
        lane::sub_assign(y, x);
    }

    /// Zeros the indexed elements.
    pub(super) fn zero_at(x: &mut [f32], idx: &[u32]) {
        lane::zero_at(x, idx);
    }
}

/// Sequential reference tier of the hot kernels.
///
/// Reductions fold [`REDUCE_BLOCK`]-wide blocks in block-index order — the
/// exact combine schedule of the `parallel` tier — so the two are bitwise
/// interchangeable.
pub mod serial {
    use super::{block, REDUCE_BLOCK};

    /// Counts elements whose absolute value is `>= thres`.
    pub fn count_ge(x: &[f32], thres: f32) -> usize {
        x.chunks(REDUCE_BLOCK)
            .map(|b| block::count_ge(b, thres))
            .sum()
    }

    /// Arithmetic mean of absolute values; 0 for an empty slice.
    ///
    /// Per-block partials follow the canonical lane-striped schedule and
    /// are combined in block-index order (see the module docs), so all tier
    /// combinations agree bitwise.
    pub fn mean_abs(x: &[f32]) -> f32 {
        if x.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f32;
        for b in x.chunks(REDUCE_BLOCK) {
            total += block::sum_abs(b);
        }
        total / x.len() as f32
    }

    /// Maximum absolute value; 0 for an empty slice.
    pub fn max_abs(x: &[f32]) -> f32 {
        x.chunks(REDUCE_BLOCK)
            .map(block::max_abs)
            .fold(0.0f32, f32::max)
    }

    /// `y[i] = a * x[i] + y[i]` (BLAS `axpy`).
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(y.len(), x.len(), "axpy: length mismatch");
        block::axpy(a, x, y);
    }

    /// `y[i] += x[i]` for all `i`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn add_assign(y: &mut [f32], x: &[f32]) {
        assert_eq!(y.len(), x.len(), "add_assign: length mismatch");
        block::add_assign(y, x);
    }

    /// Scatter-add: `y[idx[i]] += vals[i]`, applied in `idx` order.
    ///
    /// # Panics
    /// Panics if `idx` and `vals` have different lengths or an index is out
    /// of bounds.
    pub fn scatter_add(y: &mut [f32], idx: &[u32], vals: &[f32]) {
        block::scatter_add(y, idx, vals);
    }
}

/// Deterministic scoped-thread tier of the hot kernels (feature
/// `parallel`, alias `rayon`).
///
/// Reductions map the same [`REDUCE_BLOCK`]-wide blocks as [`serial`] on
/// worker threads and fold the partials in block-index order; mutating
/// kernels partition their output into disjoint ranges. Results are
/// bitwise identical to the serial tier for every input, thread count, and
/// schedule — the property tests assert so.
///
/// Inputs below [`parallel::PAR_THRESHOLD`] run the serial code directly:
/// thread spawns cost more than the kernels save there, and the identical
/// combine order makes the switch invisible.
#[cfg(feature = "parallel")]
pub mod parallel {
    use super::{block, serial, REDUCE_BLOCK};

    /// Minimum element count before a kernel spawns worker threads.
    pub const PAR_THRESHOLD: usize = 1 << 17;

    /// Worker threads for a `len`-element kernel: the machine's available
    /// parallelism, capped by the number of blocks.
    fn threads_for(len: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        hw.clamp(1, len.div_ceil(REDUCE_BLOCK).max(1))
    }

    /// Maps every block and folds the partials in block-index order —
    /// the serial tier's exact combine schedule.
    fn reduce_blocks<T, M, F>(x: &[f32], identity: T, map: M, fold: F) -> T
    where
        T: Send,
        M: Fn(&[f32]) -> T + Sync,
        F: FnMut(T, T) -> T,
    {
        let threads = threads_for(x.len());
        if threads <= 1 || x.len() < PAR_THRESHOLD {
            return x.chunks(REDUCE_BLOCK).map(&map).fold(identity, fold);
        }
        let blocks: Vec<&[f32]> = x.chunks(REDUCE_BLOCK).collect();
        let per_thread = blocks.len().div_ceil(threads);
        let map = &map;
        let partials: Vec<Vec<T>> = std::thread::scope(|s| {
            let handles: Vec<_> = blocks
                .chunks(per_thread)
                .map(|range| s.spawn(move || range.iter().map(|b| map(b)).collect()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel reduce worker panicked"))
                .collect()
        });
        partials.into_iter().flatten().fold(identity, fold)
    }

    /// Applies `f` to disjoint `(y, x)` range pairs on worker threads.
    fn zip_ranges_mut<F>(y: &mut [f32], x: &[f32], f: F)
    where
        F: Fn(&mut [f32], &[f32]) + Sync,
    {
        let threads = threads_for(y.len());
        if threads <= 1 || y.len() < PAR_THRESHOLD {
            f(y, x);
            return;
        }
        let per_thread = y.len().div_ceil(threads);
        let f = &f;
        std::thread::scope(|s| {
            for (yc, xc) in y.chunks_mut(per_thread).zip(x.chunks(per_thread)) {
                s.spawn(move || f(yc, xc));
            }
        });
    }

    /// Counts elements whose absolute value is `>= thres`.
    pub fn count_ge(x: &[f32], thres: f32) -> usize {
        reduce_blocks(x, 0usize, |b| block::count_ge(b, thres), |a, b| a + b)
    }

    /// Arithmetic mean of absolute values; 0 for an empty slice.
    pub fn mean_abs(x: &[f32]) -> f32 {
        if x.is_empty() {
            return 0.0;
        }
        reduce_blocks(x, 0.0f32, block::sum_abs, |a, b| a + b) / x.len() as f32
    }

    /// Maximum absolute value; 0 for an empty slice.
    pub fn max_abs(x: &[f32]) -> f32 {
        reduce_blocks(x, 0.0f32, block::max_abs, f32::max)
    }

    /// `y[i] = a * x[i] + y[i]` (BLAS `axpy`).
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(y.len(), x.len(), "axpy: length mismatch");
        zip_ranges_mut(y, x, |yc, xc| block::axpy(a, xc, yc));
    }

    /// `y[i] += x[i]` for all `i`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn add_assign(y: &mut [f32], x: &[f32]) {
        assert_eq!(y.len(), x.len(), "add_assign: length mismatch");
        zip_ranges_mut(y, x, block::add_assign);
    }

    /// Scatter-add: `y[idx[i]] += vals[i]`.
    ///
    /// Each worker owns a disjoint output range and applies, in `idx`
    /// order, exactly the contributions that land in its range — the same
    /// per-position accumulation order as the serial tier.
    ///
    /// # Panics
    /// Panics if `idx` and `vals` have different lengths or an index is
    /// out of bounds.
    pub fn scatter_add(y: &mut [f32], idx: &[u32], vals: &[f32]) {
        assert_eq!(idx.len(), vals.len(), "scatter_add: length mismatch");
        let threads = threads_for(y.len());
        if threads <= 1 || y.len() < PAR_THRESHOLD || idx.len() < threads {
            serial::scatter_add(y, idx, vals);
            return;
        }
        // The bounds check the serial loop performs implicitly, hoisted so
        // out-of-range indices panic instead of being silently dropped by
        // the range partition below.
        let d = y.len();
        assert!(
            idx.iter().all(|&i| (i as usize) < d),
            "scatter_add: index out of bounds"
        );
        let per_thread = d.div_ceil(threads);
        std::thread::scope(|s| {
            for (part, yc) in y.chunks_mut(per_thread).enumerate() {
                let lo = part * per_thread;
                s.spawn(move || {
                    for (&i, &v) in idx.iter().zip(vals) {
                        let i = i as usize;
                        if i >= lo && i < lo + yc.len() {
                            yc[i - lo] += v;
                        }
                    }
                });
            }
        });
    }
}

/// `y[i] += x[i]` for all `i`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    #[cfg(feature = "parallel")]
    {
        parallel::add_assign(y, x)
    }
    #[cfg(not(feature = "parallel"))]
    {
        serial::add_assign(y, x)
    }
}

/// `y[i] -= x[i]` for all `i`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sub_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "sub_assign: length mismatch");
    block::sub_assign(y, x);
}

/// `y[i] = a * x[i] + y[i]` (BLAS `axpy`).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    #[cfg(feature = "parallel")]
    {
        parallel::axpy(a, x, y)
    }
    #[cfg(not(feature = "parallel"))]
    {
        serial::axpy(a, x, y)
    }
}

/// `x[i] *= a` for all `i`.
pub fn scale(x: &mut [f32], a: f32) {
    block::scale(x, a);
}

/// Fills `x` with `v`.
pub fn fill(x: &mut [f32], v: f32) {
    for xi in x.iter_mut() {
        *xi = v;
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
///
/// Squares are folded per [`REDUCE_BLOCK`]-wide block and the block
/// partials combined in block-index order, pinning the reduction tree to
/// the same shape as the other reductions (identical to the old flat fold
/// for inputs up to one block).
pub fn l2_norm(x: &[f32]) -> f32 {
    let mut total = 0.0f32;
    for b in x.chunks(REDUCE_BLOCK) {
        let mut part = 0.0f32;
        for v in b {
            part += v * v;
        }
        total += part;
    }
    total.sqrt()
}

/// Sum of all elements.
pub fn sum(x: &[f32]) -> f32 {
    x.iter().sum()
}

/// Arithmetic mean of the absolute values (the `mean(abs(x))` pass of
/// MSTopK, Algorithm 1 line 2). Returns 0 for an empty slice.
pub fn mean_abs(x: &[f32]) -> f32 {
    #[cfg(feature = "parallel")]
    {
        parallel::mean_abs(x)
    }
    #[cfg(not(feature = "parallel"))]
    {
        serial::mean_abs(x)
    }
}

/// Maximum absolute value (Algorithm 1 line 3). Returns 0 for an empty slice.
pub fn max_abs(x: &[f32]) -> f32 {
    #[cfg(feature = "parallel")]
    {
        parallel::max_abs(x)
    }
    #[cfg(not(feature = "parallel"))]
    {
        serial::max_abs(x)
    }
}

/// Counts elements whose absolute value is `>= thres` (Algorithm 1 line 10's
/// `count_nonzero(a >= thres)` with `a = abs(x)`).
///
/// Branch-free streaming pass — this is the kernel MSTopK repeats `N` times
/// instead of performing a data-dependent selection.
pub fn count_ge(x: &[f32], thres: f32) -> usize {
    #[cfg(feature = "parallel")]
    {
        parallel::count_ge(x, thres)
    }
    #[cfg(not(feature = "parallel"))]
    {
        serial::count_ge(x, thres)
    }
}

/// Collects the indices of elements with `|x[i]| >= thres`, preserving order.
pub fn indices_ge(x: &[f32], thres: f32) -> Vec<u32> {
    x.iter()
        .enumerate()
        .filter(|(_, v)| v.abs() >= thres)
        .map(|(i, _)| i as u32)
        .collect()
}

/// Collects the indices of elements with `lo <= |x[i]| < hi`, preserving
/// order (Algorithm 1 line 26: the between-thresholds bracket).
pub fn indices_in_band(x: &[f32], lo: f32, hi: f32) -> Vec<u32> {
    x.iter()
        .enumerate()
        .filter(|(_, v)| {
            let a = v.abs();
            a >= lo && a < hi
        })
        .map(|(i, _)| i as u32)
        .collect()
}

/// Gathers `x[idx[i]]` into a new vector.
///
/// # Panics
/// Panics if any index is out of bounds.
pub fn gather(x: &[f32], idx: &[u32]) -> Vec<f32> {
    idx.iter().map(|&i| x[i as usize]).collect()
}

/// Scatter-add: `y[idx[i]] += vals[i]`.
///
/// Used to accumulate sparse gradient contributions after an AllGather of
/// (values, indices) pairs (Algorithm 2 line 18).
///
/// # Panics
/// Panics if `idx` and `vals` have different lengths or an index is out of
/// bounds.
pub fn scatter_add(y: &mut [f32], idx: &[u32], vals: &[f32]) {
    #[cfg(feature = "parallel")]
    {
        parallel::scatter_add(y, idx, vals)
    }
    #[cfg(not(feature = "parallel"))]
    {
        serial::scatter_add(y, idx, vals)
    }
}

/// Zeros the elements of `x` at the given indices (used by error-feedback to
/// clear the transmitted coordinates from the residual).
pub fn zero_at(x: &mut [f32], idx: &[u32]) {
    block::zero_at(x, idx);
}

/// Returns `max(|a[i] - b[i]|)`, the L∞ distance; 0 for empty slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn linf_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "linf_distance: length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0f32, |m, (x, y)| m.max((x - y).abs()))
}

/// Checks approximate element-wise equality with the given absolute
/// tolerance.
pub fn approx_eq(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && linf_distance(a, b) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_matches_manual() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = [1.5, -2.5, 0.0, 4.0];
        let mut y = [1.0, 1.0, 1.0, 1.0];
        add_assign(&mut y, &x);
        sub_assign(&mut y, &x);
        assert_eq!(y, [1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn norms_and_dot() {
        let a = [3.0, 4.0];
        assert_eq!(l2_norm(&a), 5.0);
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(sum(&a), 7.0);
    }

    #[test]
    fn abs_stats() {
        let x = [-4.0, 1.0, -2.0, 3.0];
        assert_eq!(mean_abs(&x), 2.5);
        assert_eq!(max_abs(&x), 4.0);
        assert_eq!(mean_abs(&[]), 0.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn counting_and_band_selection() {
        let x = [-4.0, 1.0, -2.0, 3.0];
        assert_eq!(count_ge(&x, 2.0), 3);
        assert_eq!(indices_ge(&x, 3.0), vec![0, 3]);
        assert_eq!(indices_in_band(&x, 1.0, 3.0), vec![1, 2]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let x = [10.0, 20.0, 30.0, 40.0];
        let idx = [3u32, 1];
        let vals = gather(&x, &idx);
        assert_eq!(vals, vec![40.0, 20.0]);
        let mut y = [0.0; 4];
        scatter_add(&mut y, &idx, &vals);
        assert_eq!(y, [0.0, 20.0, 0.0, 40.0]);
        let mut z = x;
        zero_at(&mut z, &idx);
        assert_eq!(z, [10.0, 0.0, 30.0, 0.0]);
    }

    #[test]
    fn distance_helpers() {
        let a = [1.0, 2.0];
        let b = [1.0, 2.5];
        assert_eq!(linf_distance(&a, &b), 0.5);
        assert!(approx_eq(&a, &b, 0.5));
        assert!(!approx_eq(&a, &b, 0.4));
        assert!(!approx_eq(&a, &[1.0], 1.0));
    }

    #[test]
    fn scale_and_fill() {
        let mut x = [1.0, -2.0];
        scale(&mut x, -2.0);
        assert_eq!(x, [-2.0, 4.0]);
        fill(&mut x, 7.0);
        assert_eq!(x, [7.0, 7.0]);
    }

    #[test]
    fn reductions_span_block_boundaries() {
        // Straddle several REDUCE_BLOCK boundaries so the block-ordered
        // combine path is exercised (not just the single-block fast case).
        let d = 2 * REDUCE_BLOCK + 17;
        let x: Vec<f32> = (0..d).map(|i| ((i % 101) as f32 - 50.0) * 0.25).collect();
        let linear_count = x.iter().filter(|v| v.abs() >= 6.0).count();
        assert_eq!(count_ge(&x, 6.0), linear_count);
        let max = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert_eq!(max_abs(&x), max);
        // Mean over blocks stays within float noise of the linear mean.
        let linear_mean = x.iter().map(|v| v.abs() as f64).sum::<f64>() / d as f64;
        assert!((mean_abs(&x) as f64 - linear_mean).abs() < 1e-3);
    }

    /// The dispatching kernels must compute exactly the canonical schedule:
    /// lane-striped in-block partials combined in block-index order. This
    /// runs under every feature combination, pinning all tiers to the same
    /// bits.
    #[test]
    fn dispatch_matches_canonical_schedule() {
        let d = 2 * REDUCE_BLOCK + 19;
        let x: Vec<f32> = (0..d)
            .map(|i| (((i * 2654435761) % 2001) as f32 - 1000.0) * 1e-3)
            .collect();
        let mut total = 0.0f32;
        for b in x.chunks(REDUCE_BLOCK) {
            total += scalar::sum_abs(b);
        }
        assert_eq!(mean_abs(&x).to_bits(), (total / d as f32).to_bits());
        assert_eq!(max_abs(&x).to_bits(), scalar::max_abs(&x).to_bits());
        assert_eq!(count_ge(&x, 0.5), scalar::count_ge(&x, 0.5));
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_tier_matches_serial_bitwise() {
        let d = parallel::PAR_THRESHOLD + 3 * REDUCE_BLOCK + 11;
        let x: Vec<f32> = (0..d)
            .map(|i| (((i * 2654435761) % 1000) as f32 - 500.0) * 1e-3)
            .collect();
        assert_eq!(parallel::count_ge(&x, 0.25), serial::count_ge(&x, 0.25));
        assert_eq!(parallel::mean_abs(&x), serial::mean_abs(&x));
        assert_eq!(parallel::max_abs(&x), serial::max_abs(&x));

        let mut ya = vec![1.0f32; d];
        let mut yb = ya.clone();
        parallel::axpy(0.5, &x, &mut ya);
        serial::axpy(0.5, &x, &mut yb);
        assert_eq!(ya, yb);
        parallel::add_assign(&mut ya, &x);
        serial::add_assign(&mut yb, &x);
        assert_eq!(ya, yb);

        // Duplicate indices: accumulation order per position must match.
        let idx: Vec<u32> = (0..4096u32).map(|i| (i * 37) % (d as u32)).collect();
        let vals: Vec<f32> = idx.iter().map(|&i| (i as f32).sin()).collect();
        let mut sa = vec![0.0f32; d];
        let mut sb = sa.clone();
        parallel::scatter_add(&mut sa, &idx, &vals);
        serial::scatter_add(&mut sb, &idx, &vals);
        assert_eq!(sa, sb);
    }

    #[cfg(feature = "parallel")]
    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn parallel_scatter_add_rejects_out_of_bounds() {
        let mut y = vec![0.0f32; parallel::PAR_THRESHOLD + 1];
        let idx: Vec<u32> = (0..64)
            .map(|i| if i == 63 { y.len() as u32 } else { i })
            .collect();
        let vals = vec![1.0; idx.len()];
        parallel::scatter_add(&mut y, &idx, &vals);
    }

    /// Differential property tests: the simd lane tier must be bitwise
    /// identical to the scalar reference on every kernel family, for
    /// arbitrary lengths (exercising full lane chunks and ragged tails).
    mod lane_tier_properties {
        use super::super::{scalar, simd, LANES};
        use proptest::prelude::*;

        fn grad_vec() -> impl Strategy<Value = Vec<f32>> {
            prop::collection::vec(-1e3f32..1e3, 0..(8 * LANES + 7))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn reductions_bitwise_identical(x in grad_vec(), thres in 0.0f32..100.0) {
                prop_assert_eq!(
                    simd::sum_abs(&x).to_bits(),
                    scalar::sum_abs(&x).to_bits(),
                    "sum_abs diverged on {:?}", x
                );
                prop_assert_eq!(
                    simd::max_abs(&x).to_bits(),
                    scalar::max_abs(&x).to_bits(),
                    "max_abs diverged on {:?}", x
                );
                prop_assert_eq!(simd::count_ge(&x, thres), scalar::count_ge(&x, thres));
            }

            #[test]
            fn elementwise_bitwise_identical(x in grad_vec(), a in -8.0f32..8.0) {
                let mut ys: Vec<f32> = x.iter().map(|v| v * 0.5 + 1.0).collect();
                let mut yv = ys.clone();
                scalar::add_assign(&mut ys, &x);
                simd::add_assign(&mut yv, &x);
                prop_assert_eq!(&ys, &yv);
                scalar::axpy(a, &x, &mut ys);
                simd::axpy(a, &x, &mut yv);
                prop_assert_eq!(&ys, &yv);
                scalar::sub_assign(&mut ys, &x);
                simd::sub_assign(&mut yv, &x);
                prop_assert_eq!(&ys, &yv);
                scalar::scale(&mut ys, a);
                simd::scale(&mut yv, a);
                prop_assert_eq!(&ys, &yv);
            }

            #[test]
            fn scatter_kernels_bitwise_identical(
                vals in grad_vec(),
                d in 1usize..200,
                salt in 0u32..1000,
            ) {
                // Duplicate-heavy index stream: per-position accumulation
                // order must match across tiers.
                let idx: Vec<u32> = (0..vals.len() as u32)
                    .map(|i| (i.wrapping_mul(2654435761).wrapping_add(salt)) % d as u32)
                    .collect();
                let mut ys = vec![0.125f32; d];
                let mut yv = ys.clone();
                scalar::scatter_add(&mut ys, &idx, &vals);
                simd::scatter_add(&mut yv, &idx, &vals);
                prop_assert_eq!(&ys, &yv);
                scalar::zero_at(&mut ys, &idx);
                simd::zero_at(&mut yv, &idx);
                prop_assert_eq!(&ys, &yv);
            }
        }
    }
}
