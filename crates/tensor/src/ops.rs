//! Flat slice kernels shared by the compression operators, collectives, and
//! optimizers.
//!
//! These are deliberately written as simple sequential loops over contiguous
//! slices: the compiler auto-vectorises all of them, and the branch-free
//! counting kernels ([`count_ge`], [`mean_abs`], [`max_abs`]) are the CPU
//! analogue of the coalesced streaming passes that make MSTopK GPU-friendly
//! in the paper (§3.1).

/// `y[i] += x[i]` for all `i`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "add_assign: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += xi;
    }
}

/// `y[i] -= x[i]` for all `i`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sub_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "sub_assign: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi -= xi;
    }
}

/// `y[i] = a * x[i] + y[i]` (BLAS `axpy`).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(y.len(), x.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `x[i] *= a` for all `i`.
pub fn scale(x: &mut [f32], a: f32) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Fills `x` with `v`.
pub fn fill(x: &mut [f32], v: f32) {
    for xi in x.iter_mut() {
        *xi = v;
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn l2_norm(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Sum of all elements.
pub fn sum(x: &[f32]) -> f32 {
    x.iter().sum()
}

/// Arithmetic mean of the absolute values (the `mean(abs(x))` pass of
/// MSTopK, Algorithm 1 line 2). Returns 0 for an empty slice.
pub fn mean_abs(x: &[f32]) -> f32 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().map(|v| v.abs()).sum::<f32>() / x.len() as f32
}

/// Maximum absolute value (Algorithm 1 line 3). Returns 0 for an empty slice.
pub fn max_abs(x: &[f32]) -> f32 {
    x.iter().fold(0.0f32, |m, v| m.max(v.abs()))
}

/// Counts elements whose absolute value is `>= thres` (Algorithm 1 line 10's
/// `count_nonzero(a >= thres)` with `a = abs(x)`).
///
/// Branch-free single streaming pass — this is the kernel MSTopK repeats `N`
/// times instead of performing a data-dependent selection.
pub fn count_ge(x: &[f32], thres: f32) -> usize {
    x.iter().map(|v| usize::from(v.abs() >= thres)).sum()
}

/// Collects the indices of elements with `|x[i]| >= thres`, preserving order.
pub fn indices_ge(x: &[f32], thres: f32) -> Vec<u32> {
    x.iter()
        .enumerate()
        .filter(|(_, v)| v.abs() >= thres)
        .map(|(i, _)| i as u32)
        .collect()
}

/// Collects the indices of elements with `lo <= |x[i]| < hi`, preserving
/// order (Algorithm 1 line 26: the between-thresholds bracket).
pub fn indices_in_band(x: &[f32], lo: f32, hi: f32) -> Vec<u32> {
    x.iter()
        .enumerate()
        .filter(|(_, v)| {
            let a = v.abs();
            a >= lo && a < hi
        })
        .map(|(i, _)| i as u32)
        .collect()
}

/// Gathers `x[idx[i]]` into a new vector.
///
/// # Panics
/// Panics if any index is out of bounds.
pub fn gather(x: &[f32], idx: &[u32]) -> Vec<f32> {
    idx.iter().map(|&i| x[i as usize]).collect()
}

/// Scatter-add: `y[idx[i]] += vals[i]`.
///
/// Used to accumulate sparse gradient contributions after an AllGather of
/// (values, indices) pairs (Algorithm 2 line 18).
///
/// # Panics
/// Panics if `idx` and `vals` have different lengths or an index is out of
/// bounds.
pub fn scatter_add(y: &mut [f32], idx: &[u32], vals: &[f32]) {
    assert_eq!(idx.len(), vals.len(), "scatter_add: length mismatch");
    for (&i, &v) in idx.iter().zip(vals) {
        y[i as usize] += v;
    }
}

/// Zeros the elements of `x` at the given indices (used by error-feedback to
/// clear the transmitted coordinates from the residual).
pub fn zero_at(x: &mut [f32], idx: &[u32]) {
    for &i in idx {
        x[i as usize] = 0.0;
    }
}

/// Returns `max(|a[i] - b[i]|)`, the L∞ distance; 0 for empty slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn linf_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "linf_distance: length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0f32, |m, (x, y)| m.max((x - y).abs()))
}

/// Checks approximate element-wise equality with the given absolute
/// tolerance.
pub fn approx_eq(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && linf_distance(a, b) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_matches_manual() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = [1.5, -2.5, 0.0, 4.0];
        let mut y = [1.0, 1.0, 1.0, 1.0];
        add_assign(&mut y, &x);
        sub_assign(&mut y, &x);
        assert_eq!(y, [1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn norms_and_dot() {
        let a = [3.0, 4.0];
        assert_eq!(l2_norm(&a), 5.0);
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(sum(&a), 7.0);
    }

    #[test]
    fn abs_stats() {
        let x = [-4.0, 1.0, -2.0, 3.0];
        assert_eq!(mean_abs(&x), 2.5);
        assert_eq!(max_abs(&x), 4.0);
        assert_eq!(mean_abs(&[]), 0.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn counting_and_band_selection() {
        let x = [-4.0, 1.0, -2.0, 3.0];
        assert_eq!(count_ge(&x, 2.0), 3);
        assert_eq!(indices_ge(&x, 3.0), vec![0, 3]);
        assert_eq!(indices_in_band(&x, 1.0, 3.0), vec![1, 2]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let x = [10.0, 20.0, 30.0, 40.0];
        let idx = [3u32, 1];
        let vals = gather(&x, &idx);
        assert_eq!(vals, vec![40.0, 20.0]);
        let mut y = [0.0; 4];
        scatter_add(&mut y, &idx, &vals);
        assert_eq!(y, [0.0, 20.0, 0.0, 40.0]);
        let mut z = x;
        zero_at(&mut z, &idx);
        assert_eq!(z, [10.0, 0.0, 30.0, 0.0]);
    }

    #[test]
    fn distance_helpers() {
        let a = [1.0, 2.0];
        let b = [1.0, 2.5];
        assert_eq!(linf_distance(&a, &b), 0.5);
        assert!(approx_eq(&a, &b, 0.5));
        assert!(!approx_eq(&a, &b, 0.4));
        assert!(!approx_eq(&a, &[1.0], 1.0));
    }

    #[test]
    fn scale_and_fill() {
        let mut x = [1.0, -2.0];
        scale(&mut x, -2.0);
        assert_eq!(x, [-2.0, 4.0]);
        fill(&mut x, 7.0);
        assert_eq!(x, [7.0, 7.0]);
    }
}
