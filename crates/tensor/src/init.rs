//! Seeded random initialisation.
//!
//! All stochastic choices in the workspace flow through explicitly seeded
//! [`StdRng`] instances so every experiment is reproducible. Normal samples
//! are produced with the Box–Muller transform to avoid a dependency on
//! `rand_distr`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::Tensor;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Fills `x` with samples from `U(lo, hi)`.
pub fn fill_uniform(x: &mut [f32], lo: f32, hi: f32, rng: &mut StdRng) {
    for v in x.iter_mut() {
        *v = rng.random_range(lo..hi);
    }
}

/// Fills `x` with samples from `N(mean, std^2)` using Box–Muller.
pub fn fill_normal(x: &mut [f32], mean: f32, std: f32, rng: &mut StdRng) {
    let mut i = 0;
    while i < x.len() {
        let (z0, z1) = box_muller(rng);
        x[i] = mean + std * z0;
        if i + 1 < x.len() {
            x[i + 1] = mean + std * z1;
        }
        i += 2;
    }
}

/// One Box–Muller draw: two independent standard-normal samples.
fn box_muller(rng: &mut StdRng) -> (f32, f32) {
    // Draw u1 in (0, 1] to keep ln(u1) finite.
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// A 1-D tensor of uniform samples.
pub fn uniform_tensor(len: usize, lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    let mut t = Tensor::zeros_1d(len);
    fill_uniform(t.as_mut_slice(), lo, hi, rng);
    t
}

/// A 1-D tensor of normal samples.
pub fn normal_tensor(len: usize, mean: f32, std: f32, rng: &mut StdRng) -> Tensor {
    let mut t = Tensor::zeros_1d(len);
    fill_normal(t.as_mut_slice(), mean, std, rng);
    t
}

/// Xavier/Glorot uniform initialisation for a layer with the given fan-in and
/// fan-out: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn fill_xavier(x: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut StdRng) {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    fill_uniform(x, -a, a, rng);
}

/// He/Kaiming normal initialisation: `N(0, 2 / fan_in)`.
pub fn fill_he(x: &mut [f32], fan_in: usize, rng: &mut StdRng) {
    let std = (2.0 / fan_in as f32).sqrt();
    fill_normal(x, 0.0, std, rng);
}

/// A synthetic "gradient-like" tensor: heavy-tailed values produced as the
/// product of a normal sample and an exponentially distributed magnitude.
///
/// Real gradients are far from uniform — a few coordinates dominate — and
/// top-k behaviour (how fast the threshold search converges, how skewed the
/// selected mass is) depends on that skew. Benchmarks use this generator so
/// the compression operators are exercised on realistic inputs.
pub fn gradient_like_tensor(len: usize, rng: &mut StdRng) -> Tensor {
    let mut t = Tensor::zeros_1d(len);
    for v in t.as_mut_slice().iter_mut() {
        let (z, _) = box_muller(rng);
        let u: f32 = 1.0 - rng.random::<f32>();
        // Exponential magnitude with rate 1 -> heavy right tail.
        *v = z * (-u.ln());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_runs_are_identical() {
        let mut r1 = rng_from_seed(42);
        let mut r2 = rng_from_seed(42);
        let a = uniform_tensor(100, -1.0, 1.0, &mut r1);
        let b = uniform_tensor(100, -1.0, 1.0, &mut r2);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = rng_from_seed(7);
        let t = uniform_tensor(10_000, -0.5, 0.25, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.25).contains(&v)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = rng_from_seed(11);
        let t = normal_tensor(100_000, 3.0, 2.0, &mut rng);
        let n = t.len() as f32;
        let mean = t.as_slice().iter().sum::<f32>() / n;
        let var = t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn xavier_bound_matches_formula() {
        let mut rng = rng_from_seed(3);
        let mut x = vec![0.0; 10_000];
        fill_xavier(&mut x, 100, 200, &mut rng);
        let a = (6.0f32 / 300.0).sqrt();
        assert!(x.iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn he_std_matches_formula() {
        let mut rng = rng_from_seed(5);
        let mut x = vec![0.0; 100_000];
        fill_he(&mut x, 50, &mut rng);
        let n = x.len() as f32;
        let var = x.iter().map(|v| v * v).sum::<f32>() / n;
        assert!((var - 2.0 / 50.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn gradient_like_is_heavy_tailed() {
        let mut rng = rng_from_seed(9);
        let t = gradient_like_tensor(100_000, &mut rng);
        // Kurtosis of a heavy-tailed distribution exceeds the Gaussian's 3.
        let n = t.len() as f32;
        let mean = t.as_slice().iter().sum::<f32>() / n;
        let var = t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        let kurt = t.as_slice().iter().map(|v| (v - mean).powi(4)).sum::<f32>() / (n * var * var);
        assert!(kurt > 4.0, "kurtosis {kurt} not heavy-tailed");
    }
}
