//! Dense tensor primitives for the `cloudtrain` distributed-training stack.
//!
//! This crate provides the small, allocation-conscious numeric core that the
//! rest of the workspace builds on:
//!
//! * [`Tensor`] — a shaped, contiguous `f32` buffer with elementwise and
//!   reduction kernels tuned for the access patterns of gradient processing
//!   (scale/axpy/norm over multi-million element vectors).
//! * [`ops`] — free functions over `&[f32]` slices; these are the hot kernels
//!   shared by the compression operators and the collectives.
//! * [`half`] — a bit-accurate software IEEE 754 binary16 (`f16`) used for
//!   FP16 wire formats (the paper transmits FP16 elements in Fig. 7).
//! * [`init`] — seeded random initialisation (uniform, normal, Xavier, He).
//! * [`partition`] — contiguous range partitioning of a `d`-element vector
//!   over `P` workers, the indexing scheme used by ReduceScatter, the
//!   hierarchical top-k communication, and the parallel tensor operator.
//!
//! Everything is deterministic given a seed; no global RNG state is used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod error;
pub mod half;
pub mod init;
pub mod ops;
pub mod partition;

pub use buffer::Tensor;
pub use error::{ShapeError, ShapeResult};
