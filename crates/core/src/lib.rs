//! # cloudtrain
//!
//! Scalable distributed training of deep learning on public cloud
//! clusters — a Rust reproduction of Shi, Zhou, Song, et al. (MLSys 2021).
//!
//! Public clouds pair fast intra-node links (NVLink) with slow inter-node
//! Ethernet, and classic data-parallel training collapses there: the
//! gradient AllReduce dominates the iteration. This crate bundles the
//! paper's remedies and everything needed to evaluate them:
//!
//! * **MSTopK** ([`compress`]) — a GPU-friendly approximate top-k operator
//!   built from branch-free threshold-search passes (Algorithm 1),
//! * **HiTopKComm** ([`collectives`]) — hierarchical sparse aggregation
//!   that keeps dense traffic on NVLink and sends only `ρ·d/n` elements
//!   per GPU across Ethernet (Algorithm 2),
//! * **DataCache** ([`datacache`]) — two-level caching of training data
//!   (local FS + in-memory KV of pre-processed samples),
//! * **PTO** ([`pto`]) — the parallel tensor operator distributing
//!   replicated post-processing such as LARS rate computation,
//! * **Elastic runtime** ([`elastic`], [`engine::elastic_run`]) —
//!   heartbeat membership, consistent-hash resharding, and sharded
//!   checkpoint-replay recovery for node churn on public clouds,
//! * plus the substrates: a tensor core ([`tensor`]), a DNN framework
//!   ([`dnn`]), optimizers ([`optim`]), a discrete-event cluster simulator
//!   ([`simnet`]), and the training engine ([`engine`]) tying them
//!   together.
//!
//! ## Quick start
//!
//! ```
//! use cloudtrain::prelude::*;
//!
//! // Train a small model with the paper's MSTopK-SGD on 2x4 workers.
//! let cfg = DistConfig {
//!     epochs: 1,
//!     iters_per_epoch: 4,
//!     ..DistConfig::small(Strategy::mstopk_default(), Workload::Mlp)
//! };
//! let report = DistTrainer::new(cfg).run();
//! assert_eq!(report.epochs.len(), 1);
//!
//! // Model the same strategy's throughput on the paper's 128-GPU cluster.
//! let model = IterationModel::new(
//!     clouds::tencent(16),
//!     SystemConfig::paper_full(),
//!     ModelProfile::resnet50_96(),
//! );
//! assert!(model.scaling_efficiency() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cloudtrain_collectives as collectives;
pub use cloudtrain_compress as compress;
pub use cloudtrain_conformance as conformance;
pub use cloudtrain_datacache as datacache;
pub use cloudtrain_dnn as dnn;
pub use cloudtrain_elastic as elastic;
pub use cloudtrain_engine as engine;
pub use cloudtrain_obs as obs;
pub use cloudtrain_optim as optim;
pub use cloudtrain_pto as pto;
pub use cloudtrain_simnet as simnet;
pub use cloudtrain_tensor as tensor;

/// Re-export of the cluster presets (Table 1).
pub use cloudtrain_simnet::clouds;

/// The most common imports for users of the library.
pub mod prelude {
    pub use crate::clouds;
    pub use cloudtrain_collectives::group::run_on_group;
    pub use cloudtrain_collectives::hierarchical::{hitopk_all_reduce, sparse_all_reduce_naive};
    pub use cloudtrain_collectives::{Group, Peer};
    pub use cloudtrain_compress::{Compressor, ErrorFeedback, MsTopK, SparseGrad};
    pub use cloudtrain_datacache::{CachedLoader, LoaderConfig, RingSampler, SyntheticNfs};
    pub use cloudtrain_dnn::model::{Input, Model};
    pub use cloudtrain_elastic::{ElasticScenario, HashRing, HeartbeatConfig, MembershipEventKind};
    pub use cloudtrain_engine::dawnbench;
    pub use cloudtrain_engine::trainer::Workload;
    pub use cloudtrain_engine::{
        DistConfig, DistTrainer, ElasticReport, FaultConfig, FusionMode, IterationModel,
        ModelProfile, OptimizerKind, Strategy, SystemConfig, TrainReport,
    };
    pub use cloudtrain_optim::{Lars, LarsConfig, Optimizer};
    pub use cloudtrain_simnet::{ClusterSpec, DeadlineMode, FaultPlan, NetSim, SimResilience};
    pub use cloudtrain_tensor::Tensor;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports_work() {
        use crate::prelude::*;
        let spec = clouds::tencent(2);
        assert_eq!(spec.world(), 16);
        let t = Tensor::zeros_1d(4);
        assert_eq!(t.len(), 4);
    }
}
