//! Subcommand implementations.

use cloudtrain::collectives::{optimize_ring_order, PairCost};
use cloudtrain::compress::gpu_cost::{mstopk_cost, GpuRates};
use cloudtrain::datacache::disk::DiskCache;
use cloudtrain::engine::autotune::{autotune_layers, wfbp_model_for, AutotuneConfig, CommModel};
use cloudtrain::engine::dawnbench::{
    dense_only_schedule, evaluate_schedule, paper_schedule, published_leaderboard,
};
use cloudtrain::engine::trainer::workload_layer_ranges;
use cloudtrain::obs::{percentile, Registry};
use cloudtrain::prelude::*;
use cloudtrain::simnet::collectives::{
    sim_gtopk_all_reduce, sim_hitopk, sim_naive_sparse_all_gather, sim_quantized_all_reduce,
    sim_torus_all_reduce, sim_tree_all_reduce_hier,
};
use cloudtrain::simnet::probe_pairwise;
use cloudtrain::simnet::ClusterSpec;

use crate::args::{Args, ParseError};

/// Prints the usage text.
pub fn print_help() {
    println!(
        "cloudtrain — scalable distributed training on public cloud clusters\n\
         (Rust reproduction of Shi et al., MLSys 2021)\n\n\
         USAGE: cloudtrain <command> [--flag value]...\n\n\
         COMMANDS:\n\
         \x20 train      real distributed training on worker threads\n\
         \x20            --workload mlp|resnet|vgg|transformer  --strategy <s>\n\
         \x20            --nodes N --gpus N --epochs N --iters N --lr F\n\
         \x20            --rho F --seed N\n\
         \x20 simulate   iteration breakdown on a simulated cluster\n\
         \x20            --model <m> --strategy <s> --nodes N --cloud <c>\n\
         \x20 sweep      all strategies on one model (Table 3-style row)\n\
         \x20            --model <m> --nodes N --cloud <c>\n\
         \x20 dawnbench  the 28-epoch multi-resolution schedule (Tables 4/5)\n\
         \x20            --cloud tencent|aliyun|ib\n\
         \x20 faults     BSP-penalty-vs-resilience ablation under injected\n\
         \x20            faults: dense 2DTAR retries every drop, sparse\n\
         \x20            MSTopK degrades instead\n\
         \x20            --model <m> --nodes N --cloud <c> --seeds N\n\
         \x20            --drops F --spikes F --stragglers N --rho F\n\
         \x20 trace      deterministic observability snapshot: per-stage\n\
         \x20            comm-plane spans (Fig. 8) and cache-tier hit\n\
         \x20            rates (Fig. 9) as a table plus byte-stable JSONL\n\
         \x20            --model <m> --strategy <s> --nodes N --cloud <c>\n\
         \x20            --samples N --out FILE\n\
         \x20 conformance  oracle differential fuzzing, cost-model (Eqs.\n\
         \x20            7-10) validation, and metamorphic compressor\n\
         \x20            properties over the seed corpus; byte-stable\n\
         \x20            table plus JSONL report\n\
         \x20            --corpus FILE --out FILE --fuzz N --seed N --deny\n\
         \x20 lint       determinism & safety static analysis over every\n\
         \x20            workspace crate: per-file rules (wall-clock ban,\n\
         \x20            unordered iteration, panic-free libraries, checked\n\
         \x20            decode arithmetic, feature-gate hygiene, ambient\n\
         \x20            nondeterminism, forbid(unsafe_code)) plus the\n\
         \x20            call-graph/dataflow passes (twin_drift,\n\
         \x20            coverage_conformance, cast_flow,\n\
         \x20            float_determinism)\n\
         \x20            --root DIR --out FILE --deny --rule R\n\
         \x20            --explain RULE\n\
         \x20 reorder    probe pairwise alpha/beta over the modelled fabric\n\
         \x20            and optimize the inter-node ring order on a\n\
         \x20            rack-scrambled cost model\n\
         \x20            --nodes N --cloud <c> --bytes N --seed N\n\
         \x20            --scramble on|off\n\
         \x20 autotune   per-layer aggregation autotuner: price dense-torus\n\
         \x20            vs HiTopKComm (staged/fused) vs the O(k) sparse\n\
         \x20            allreduce per layer on the probed alpha/beta\n\
         \x20            topology, with the crossover report\n\
         \x20            --workload mlp|resnet|vgg|transformer --nodes N\n\
         \x20            --gpus N --cloud <c> --rho F --overlap F\n\
         \x20            --samplings N --out FILE\n\
         \x20 tails      p50/p95/p99 makespan sweep across fault families:\n\
         \x20            retry/degrade ladder vs the probed deadline budget\n\
         \x20            --nodes N --cloud <c> --seeds N --bytes N --mult F\n\
         \x20            --deny\n\
         \x20 elastic    scripted membership churn on the elastic runtime:\n\
         \x20            heartbeat timeline, consistent-hash resharding\n\
         \x20            accounting, and (replay mode) checkpoint-replay\n\
         \x20            training checked bitwise against its in-memory twin\n\
         \x20            --scenario steady|evict|evict-join|rack\n\
         \x20            --mode replay|reshard --nodes N --gpus N\n\
         \x20            --epochs N --iters N --rho F --seed N --out FILE\n\
         \x20 help       this text\n\n\
         STRATEGIES: dense (TreeAR), 2dtar, topk, mstopk, gtopk, qsgd\n\
         MODELS: resnet50-224, resnet50-96, resnet50-128, resnet50-288,\n\
         \x20       vgg19, transformer"
    );
}

/// Routes a parsed command line.
///
/// # Errors
/// Returns a [`ParseError`] for unknown commands, flags, or values.
pub fn dispatch(args: &Args) -> Result<(), ParseError> {
    match args.command.as_str() {
        "train" => cmd_train(args),
        "simulate" => cmd_simulate(args),
        "sweep" => cmd_sweep(args),
        "dawnbench" => cmd_dawnbench(args),
        "faults" => cmd_faults(args),
        "trace" => cmd_trace(args),
        "conformance" => cmd_conformance(args),
        "lint" => cmd_lint(args),
        "reorder" => cmd_reorder(args),
        "autotune" => cmd_autotune(args),
        "tails" => cmd_tails(args),
        "elastic" => cmd_elastic(args),
        other => Err(ParseError(format!(
            "unknown command `{other}` (try `cloudtrain help`)"
        ))),
    }
}

fn strategy_of(args: &Args) -> Result<Strategy, ParseError> {
    let rho: f64 = args.num_or("rho", 0.01)?;
    Ok(match args.get_or("strategy", "mstopk") {
        "dense" => Strategy::DenseTreeAr,
        "2dtar" => Strategy::DenseTorus,
        "topk" => Strategy::TopKNaiveAg { rho },
        "mstopk" => Strategy::MsTopKHiTopK {
            rho,
            samplings: args.num_or("samplings", 30)?,
        },
        "gtopk" => Strategy::GTopK { rho },
        "qsgd" => Strategy::Qsgd {
            levels: args.num_or("levels", 127)?,
        },
        other => return Err(ParseError(format!("unknown strategy `{other}`"))),
    })
}

fn model_of(args: &Args) -> Result<ModelProfile, ParseError> {
    Ok(match args.get_or("model", "resnet50-96") {
        "resnet50-224" => ModelProfile::resnet50_224(),
        "resnet50-96" => ModelProfile::resnet50_96(),
        "resnet50-128" => ModelProfile::resnet50_128(),
        "resnet50-288" => ModelProfile::resnet50_288(),
        "vgg19" => ModelProfile::vgg19(),
        "transformer" => ModelProfile::transformer(),
        other => return Err(ParseError(format!("unknown model `{other}`"))),
    })
}

fn cluster_of(args: &Args) -> Result<ClusterSpec, ParseError> {
    cluster_with(args, 16)
}

fn cluster_with(args: &Args, default_nodes: usize) -> Result<ClusterSpec, ParseError> {
    let nodes: usize = args.num_or("nodes", default_nodes)?;
    Ok(match args.get_or("cloud", "tencent") {
        "tencent" => clouds::tencent(nodes),
        "aws" => clouds::aws(nodes),
        "aliyun" => clouds::aliyun(nodes),
        "ib" => clouds::infiniband_100g(nodes),
        other => return Err(ParseError(format!("unknown cloud `{other}`"))),
    })
}

fn cmd_train(args: &Args) -> Result<(), ParseError> {
    args.reject_unknown(&[
        "workload",
        "strategy",
        "nodes",
        "gpus",
        "epochs",
        "iters",
        "lr",
        "rho",
        "samplings",
        "levels",
        "seed",
        "batch",
    ])?;
    let workload = match args.get_or("workload", "mlp") {
        "mlp" => Workload::Mlp,
        "resnet" => Workload::ResNetLite,
        "vgg" => Workload::VggLite,
        "transformer" => Workload::Transformer,
        other => return Err(ParseError(format!("unknown workload `{other}`"))),
    };
    let cfg = DistConfig {
        nodes: args.num_or("nodes", 2)?,
        gpus_per_node: args.num_or("gpus", 4)?,
        epochs: args.num_or("epochs", 4)?,
        iters_per_epoch: args.num_or("iters", 12)?,
        lr: args.num_or("lr", 0.08)?,
        local_batch: args.num_or("batch", 8)?,
        seed: args.num_or("seed", 42)?,
        ..DistConfig::small(strategy_of(args)?, workload)
    };
    println!(
        "training {:?} with {} on {}x{} workers...",
        workload,
        cfg.strategy.label(),
        cfg.nodes,
        cfg.gpus_per_node
    );
    let report = DistTrainer::new(cfg).run();
    println!(
        "{:<7} {:>10} {:>8} {:>8} {:>12}",
        "epoch", "loss", "top1", "top5", "residual"
    );
    for e in &report.epochs {
        println!(
            "{:<7} {:>10.4} {:>7.1}% {:>7.1}% {:>12.3}",
            e.epoch,
            e.train_loss,
            e.val_top1 * 100.0,
            e.val_top5 * 100.0,
            e.residual_norm
        );
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), ParseError> {
    args.reject_unknown(&[
        "model",
        "strategy",
        "nodes",
        "cloud",
        "rho",
        "samplings",
        "levels",
        "datacache",
        "pto",
    ])?;
    let system = SystemConfig {
        strategy: strategy_of(args)?,
        datacache: args.get_or("datacache", "on") != "off",
        pto: args.get_or("pto", "on") != "off",
    };
    let model = IterationModel::new(cluster_of(args)?, system, model_of(args)?);
    let b = model.breakdown();
    println!(
        "{} with {} on {} GPUs:",
        model.profile.name,
        system.strategy.label(),
        model.cluster.world()
    );
    println!("  I/O (visible)    {:>10.2} ms", b.io * 1e3);
    println!("  FF&BP            {:>10.2} ms", b.ffbp * 1e3);
    println!("  compression      {:>10.2} ms", b.compression * 1e3);
    println!(
        "  comm             {:>10.2} ms ({:.2} ms visible)",
        b.comm_total * 1e3,
        b.comm_visible * 1e3
    );
    println!("  LARS             {:>10.2} ms", b.lars * 1e3);
    println!("  iteration        {:>10.2} ms", b.total * 1e3);
    println!(
        "  throughput       {:>10.0} samples/s ({:.1}% scaling efficiency)",
        model.throughput(),
        model.scaling_efficiency() * 100.0
    );
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), ParseError> {
    args.reject_unknown(&["model", "nodes", "cloud", "rho"])?;
    let cluster = cluster_of(args)?;
    let profile = model_of(args)?;
    let rho: f64 = args.num_or("rho", 0.01)?;
    println!(
        "{} on {} GPUs ({}):",
        profile.name,
        cluster.world(),
        args.get_or("cloud", "tencent")
    );
    println!("{:<12} {:>14} {:>8}", "strategy", "samples/s", "SE");
    for strategy in [
        Strategy::DenseTreeAr,
        Strategy::DenseTorus,
        Strategy::TopKNaiveAg { rho },
        Strategy::MsTopKHiTopK { rho, samplings: 30 },
        Strategy::GTopK { rho },
        Strategy::Qsgd { levels: 127 },
    ] {
        let m = IterationModel::new(
            cluster,
            SystemConfig {
                strategy,
                datacache: true,
                pto: true,
            },
            profile.clone(),
        );
        println!(
            "{:<12} {:>14.0} {:>7.1}%",
            strategy.label(),
            m.throughput(),
            m.scaling_efficiency() * 100.0
        );
    }
    Ok(())
}

fn cmd_dawnbench(args: &Args) -> Result<(), ParseError> {
    args.reject_unknown(&["cloud", "nodes"])?;
    let cluster = cluster_of(args)?;
    let result = evaluate_schedule(cluster, &paper_schedule());
    println!("28-epoch DAWNBench schedule on {} GPUs:", cluster.world());
    for s in &result.stages {
        println!(
            "  {:<22} {:>2} epochs  {:>9.0} samples/s  SE {:>3.0}%  {:>6.1}s",
            s.name,
            s.epochs,
            s.system_throughput,
            s.scaling_efficiency * 100.0,
            s.seconds
        );
    }
    let dense = evaluate_schedule(cluster, &dense_only_schedule());
    println!(
        "total: {:.0}s (dense-only ablation: {:.0}s)",
        result.total_seconds, dense.total_seconds
    );
    let best = published_leaderboard()
        .iter()
        .map(|e| e.seconds)
        .fold(f64::INFINITY, f64::min);
    println!("best published 128-V100 entry: {best:.0}s");
    Ok(())
}

fn cmd_faults(args: &Args) -> Result<(), ParseError> {
    args.reject_unknown(&[
        "model",
        "nodes",
        "cloud",
        "rho",
        "seeds",
        "drops",
        "spikes",
        "stragglers",
    ])?;
    let cluster = cluster_of(args)?;
    let profile = model_of(args)?;
    let rho: f64 = args.num_or("rho", 0.01)?;
    let seeds: u64 = args.num_or("seeds", 4)?;
    let drops: f64 = args.num_or("drops", 0.01)?;
    let spikes: f64 = args.num_or("spikes", 0.01)?;
    let stragglers: usize = args.num_or("stragglers", 2)?;
    if !(0.0..=1.0).contains(&drops) || !(0.0..=1.0).contains(&spikes) {
        return Err(ParseError(
            "--drops and --spikes must be probabilities in [0, 1]".into(),
        ));
    }
    if stragglers > cluster.nodes {
        return Err(ParseError(format!(
            "--stragglers {} exceeds the {}-node cluster",
            stragglers, cluster.nodes
        )));
    }
    println!(
        "{} on {} GPUs: {:.1}% drops, {:.1}% spikes, {} straggler(s)",
        profile.name,
        cluster.world(),
        drops * 100.0,
        spikes * 100.0,
        stragglers
    );
    println!(
        "{:<6} {:<12} {:<8} {:>10} {:>10} {:>10} {:>7} {:>7} {:>9} {:>9}",
        "seed",
        "strategy",
        "policy",
        "iter ms",
        "fault ms",
        "strag ms",
        "drops",
        "retry",
        "escalate",
        "degrade"
    );
    for seed in 0..seeds {
        let mut plan = FaultPlan::new(seed)
            .with_drops(drops)
            .with_spikes(spikes, 2e-3);
        for node in 0..stragglers {
            plan = plan.straggle(node, 1.5);
        }
        for strategy in [
            Strategy::DenseTorus,
            Strategy::MsTopKHiTopK { rho, samplings: 30 },
        ] {
            let m = IterationModel::new(
                cluster,
                SystemConfig {
                    strategy,
                    datacache: true,
                    pto: true,
                },
                profile.clone(),
            )
            .with_faults(plan.clone());
            let policy = match m.policy().mode {
                DeadlineMode::Retry => "retry",
                DeadlineMode::Degrade => "degrade",
            };
            let b = m.breakdown();
            let c = m.fault_counters();
            println!(
                "{:<6} {:<12} {:<8} {:>10.2} {:>10.2} {:>10.2} {:>7} {:>7} {:>9} {:>9}",
                seed,
                strategy.label(),
                policy,
                b.total * 1e3,
                b.fault_delay * 1e3,
                b.straggler * 1e3,
                c.drops,
                c.retries,
                c.escalations,
                c.degraded
            );
        }
    }
    println!(
        "policy asymmetry: the dense barrier must retry every dropped hop\n\
         until it lands; the sparse path abandons it after one timeout and\n\
         lets error feedback re-inject the payload next step."
    );
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), ParseError> {
    args.reject_unknown(&[
        "model",
        "strategy",
        "nodes",
        "cloud",
        "rho",
        "samplings",
        "levels",
        "samples",
        "out",
    ])?;
    let cluster = cluster_of(args)?;
    let profile = model_of(args)?;
    let strategy = strategy_of(args)?;
    let samples: u64 = args.num_or("samples", 256)?;
    let mut reg = Registry::new();

    // Plane 1: the strategy's collective schedule on the simulated
    // cluster, spans charged from virtual time (the same schedule
    // IterationModel prices — see `comm_seconds_on`).
    let d = profile.params;
    let mut sim = NetSim::new(cluster);
    sim.attach_obs();
    match strategy {
        Strategy::DenseTreeAr => {
            sim_tree_all_reduce_hier(&mut sim, &cluster, d * 4);
        }
        Strategy::DenseTorus => {
            sim_torus_all_reduce(&mut sim, &cluster, d * 2);
        }
        Strategy::TopKNaiveAg { rho } => {
            let k = ((d as f64 * rho) as usize).max(1);
            sim_naive_sparse_all_gather(&mut sim, &cluster, k);
        }
        Strategy::MsTopKHiTopK { rho, samplings } => {
            let n = cluster.gpus_per_node;
            let shard = d.div_ceil(n);
            let k = ((d as f64 * rho / n as f64) as usize).max(1);
            let topk_s = mstopk_cost(shard, k, samplings, &GpuRates::default()).seconds;
            sim_hitopk(&mut sim, &cluster, d, 4, rho, topk_s);
        }
        Strategy::GTopK { rho } => {
            let k = ((d as f64 * rho) as usize).max(1);
            sim_gtopk_all_reduce(&mut sim, &cluster, k, 4);
        }
        Strategy::Qsgd { levels } => {
            let bits = (2 * levels as u32 + 1).next_power_of_two().trailing_zeros();
            sim_quantized_all_reduce(&mut sim, &cluster, d, bits as usize);
        }
    }
    sim.publish_obs();
    if let Some(comm) = sim.take_obs() {
        reg.merge(&comm);
    }

    // The modelled iteration decomposition as gauges (`iter/*`).
    IterationModel::new(
        cluster,
        SystemConfig {
            strategy,
            datacache: true,
            pto: true,
        },
        profile.clone(),
    )
    .breakdown()
    .publish(&mut reg);

    // Plane 2: the real cache implementation, spans in modelled virtual
    // seconds. Epoch 0 pulls everything from NFS, epoch 1 hits the
    // memory tier; a fresh loader over the same disk directory plays the
    // process-restart epoch where the disk tier serves.
    // Keyed on the run parameters so concurrent invocations (e.g. the
    // parallel test harness) never share a directory.
    let cache_dir = std::env::temp_dir().join(format!(
        "cloudtrain-trace-{}-{}-{samples}",
        std::process::id(),
        strategy.label()
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let pixels = 96 * 96 * 3;
    let open_disk =
        || DiskCache::open(&cache_dir).map_err(|e| ParseError(format!("cache dir {e} (trace)")));
    let mut loader = CachedLoader::new(
        SyntheticNfs::new(pixels, 9),
        Some(open_disk()?),
        LoaderConfig::default(),
    );
    for epoch in 0..2 {
        let _ = epoch;
        for id in 0..samples {
            loader.load_traced(id, &mut reg);
        }
    }
    loader.publish_obs(&mut reg);
    let mut restarted = CachedLoader::new(
        SyntheticNfs::new(pixels, 9),
        Some(open_disk()?),
        LoaderConfig::default(),
    );
    for id in 0..samples {
        restarted.load_traced(id, &mut reg);
    }
    restarted.publish_obs(&mut reg);
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!(
        "trace: {} with {} on {} GPUs, {} samples/epoch\n",
        profile.name,
        strategy.label(),
        cluster.world(),
        samples
    );
    print!("{}", reg.breakdown_table());
    let tiers = [
        ("memory", reg.counter("cache/from_memory")),
        ("disk", reg.counter("cache/from_disk")),
        ("nfs", reg.counter("cache/from_nfs")),
    ];
    let total: u64 = tiers.iter().map(|(_, v)| v).sum();
    println!("\ncache tier hit rates ({total} loads):");
    for (name, served) in tiers {
        println!(
            "  {:<8} {:>8} {:>6.1}%",
            name,
            served,
            100.0 * served as f64 / total.max(1) as f64
        );
    }
    match args.get_or("out", "") {
        "" => {
            println!("\nJSONL snapshot:");
            print!("{}", reg.to_jsonl());
        }
        path => {
            std::fs::write(path, reg.to_jsonl())
                .map_err(|e| ParseError(format!("--out {path}: {e}")))?;
            println!("\nwrote JSONL snapshot to {path}");
        }
    }
    Ok(())
}

fn cmd_conformance(args: &Args) -> Result<(), ParseError> {
    args.reject_unknown(&["corpus", "out", "deny", "fuzz", "seed"])?;
    let text = match args.get_or("corpus", "") {
        "" => cloudtrain::conformance::shipped_corpus().to_string(),
        path => std::fs::read_to_string(path)
            .map_err(|e| ParseError(format!("--corpus {path}: {e}")))?,
    };
    let mut cases = cloudtrain::conformance::corpus::parse(&text)
        .map_err(|e| ParseError(format!("corpus: {e}")))?;
    let fuzz: usize = args.num_or("fuzz", 0)?;
    if fuzz > 0 {
        let seed: u64 = args.num_or("seed", 42)?;
        cases.extend(cloudtrain::conformance::expand_fuzz(fuzz, seed));
    }
    let report = cloudtrain::conformance::run_cases(&cases);
    print!("{}", report.table());
    match args.get_or("out", "") {
        "" => {}
        path => {
            std::fs::write(path, report.to_jsonl())
                .map_err(|e| ParseError(format!("--out {path}: {e}")))?;
            // stderr, so stdout stays byte-identical across runs for the
            // CI gate's `cmp` regardless of where --out points.
            eprintln!("wrote JSONL report to {path}");
        }
    }
    if args.flag("deny") {
        if report.divergences() > 0 {
            return Err(ParseError(format!(
                "conformance --deny: {} diverging case(s)",
                report.divergences()
            )));
        }
        if report.coverage_missing() > 0 {
            return Err(ParseError(format!(
                "conformance --deny: {} uncovered collective x compressor pairing(s)",
                report.coverage_missing()
            )));
        }
    }
    Ok(())
}

fn cmd_lint(args: &Args) -> Result<(), ParseError> {
    args.reject_unknown(&["root", "out", "deny", "rule", "explain"])?;
    // `--explain <rule>` prints the rule's doc entry and exits without
    // touching the tree at all.
    let explain_rule = args.get_or("explain", "");
    if !explain_rule.is_empty() {
        let text = cloudtrain_lint::explain::explain(explain_rule).ok_or_else(|| {
            ParseError(format!(
                "--explain {explain_rule}: unknown rule (known: {})",
                cloudtrain_lint::RULES.join(", ")
            ))
        })?;
        println!("{explain_rule}\n{}\n{text}", "-".repeat(explain_rule.len()));
        return Ok(());
    }
    let mut config = cloudtrain_lint::Config::default();
    match args.get_or("rule", "") {
        "" => {}
        rule if cloudtrain_lint::RULES.contains(&rule) => {
            config.only_rule = Some(rule.to_string());
        }
        rule => {
            return Err(ParseError(format!(
                "--rule {rule}: unknown rule (known: {})",
                cloudtrain_lint::RULES.join(", ")
            )))
        }
    }
    let root = match args.get_or("root", "") {
        "" => {
            let cwd = std::env::current_dir()
                .map_err(|e| ParseError(format!("cannot read current dir: {e}")))?;
            cloudtrain_lint::find_workspace_root(&cwd).ok_or_else(|| {
                ParseError("no workspace root above the current dir (pass --root)".into())
            })?
        }
        dir => std::path::PathBuf::from(dir),
    };
    let report = cloudtrain_lint::run_workspace_with(&root, &config)
        .map_err(|e| ParseError(format!("lint failed: {e}")))?;
    print!("{}", report.table());
    match args.get_or("out", "") {
        "" => {}
        path => {
            std::fs::write(path, report.to_jsonl())
                .map_err(|e| ParseError(format!("--out {path}: {e}")))?;
            // stderr, so stdout stays byte-identical across runs for the
            // CI gate's `cmp` regardless of where --out points.
            eprintln!("wrote JSONL report to {path}");
        }
    }
    if args.flag("deny") && !report.clean() {
        return Err(ParseError(format!(
            "lint --deny: {} finding(s) not covered by a suppression or the baseline",
            report.findings.len()
        )));
    }
    Ok(())
}

/// Probes the clean fabric and runs the seeded ring-order optimizer over
/// it. With `scramble` the cost model plays interleaved rack placement
/// (cross-parity links at 2×α / 3×β — the tail gauntlet's fabric), so the
/// identity ring crosses racks on every hop and the optimizer has
/// something to recover. Pure: same (spec, bytes, seed) → same order.
fn probed_ring_order(
    spec: &ClusterSpec,
    bytes: usize,
    seed: u64,
    scramble: bool,
) -> (Vec<usize>, f64, f64) {
    let est = probe_pairwise(spec, &FaultPlan::new(seed));
    let (alpha, beta) = est.worst_link();
    let m = spec.nodes;
    let mut cost =
        PairCost::from_matrices(m, est.alpha_matrix().to_vec(), est.beta_matrix().to_vec());
    if scramble {
        for src in 0..m {
            for dst in 0..m {
                if src != dst && src % 2 != dst % 2 {
                    cost.set_link(src, dst, 2.0 * alpha, 3.0 * beta);
                }
            }
        }
    }
    let chunk = (bytes / spec.gpus_per_node.max(1) / m).max(1);
    let order = optimize_ring_order(&cost, chunk, seed);
    let identity: Vec<usize> = (0..m).collect();
    let identity_cost = cost.ring_cost(&identity, chunk);
    let optimized_cost = cost.ring_cost(&order, chunk);
    (order, identity_cost, optimized_cost)
}

fn cmd_reorder(args: &Args) -> Result<(), ParseError> {
    args.reject_unknown(&["nodes", "cloud", "bytes", "seed", "scramble"])?;
    let spec = cluster_with(args, 4)?;
    if spec.nodes < 2 {
        return Err(ParseError("reorder needs at least 2 nodes".into()));
    }
    let bytes: usize = args.num_or("bytes", 1 << 20)?;
    let seed: u64 = args.num_or("seed", 0)?;
    let scramble = match args.get_or("scramble", "on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(ParseError(format!(
                "--scramble takes on|off, got `{other}`"
            )))
        }
    };
    let est = probe_pairwise(&spec, &FaultPlan::new(seed));
    let (alpha, beta) = est.worst_link();
    println!(
        "probed {} nodes ({}): worst clean link alpha {:.3e}s beta {:.3e}s/B",
        spec.nodes,
        args.get_or("cloud", "tencent"),
        alpha,
        beta
    );
    if scramble {
        println!("rack scramble: cross-parity links at 2x alpha / 3x beta (interleaved placement)");
    }
    let (order, identity_cost, optimized_cost) = probed_ring_order(&spec, bytes, seed, scramble);
    let chunk = (bytes / spec.gpus_per_node.max(1) / spec.nodes).max(1);
    println!(
        "ring chunk {chunk} B ({} B payload / {} GPUs-per-node / {} nodes)",
        bytes, spec.gpus_per_node, spec.nodes
    );
    println!("{:<10} {:>12}  order", "ring", "cost");
    let identity: Vec<usize> = (0..spec.nodes).collect();
    println!(
        "{:<10} {:>10.2}us  {:?}",
        "identity",
        identity_cost * 1e6,
        identity
    );
    println!(
        "{:<10} {:>10.2}us  {:?}",
        "optimized",
        optimized_cost * 1e6,
        order
    );
    println!(
        "predicted gain: {:.2}x (seeded optimizer, seed {seed}; same seed -> same order)",
        identity_cost / optimized_cost
    );
    Ok(())
}

fn cmd_autotune(args: &Args) -> Result<(), ParseError> {
    args.reject_unknown(&[
        "workload",
        "nodes",
        "gpus",
        "cloud",
        "rho",
        "overlap",
        "samplings",
        "out",
    ])?;
    let workload = match args.get_or("workload", "transformer") {
        "mlp" => Workload::Mlp,
        "resnet" => Workload::ResNetLite,
        "vgg" => Workload::VggLite,
        "transformer" => Workload::Transformer,
        other => return Err(ParseError(format!("unknown workload `{other}`"))),
    };
    let mut spec = cluster_with(args, 4)?;
    spec.gpus_per_node = args.num_or("gpus", spec.gpus_per_node)?;
    if spec.nodes < 2 || spec.gpus_per_node < 1 {
        return Err(ParseError(
            "autotune needs at least 2 nodes and 1 GPU per node".into(),
        ));
    }
    let cfg = AutotuneConfig {
        rho: args.num_or("rho", 0.01)?,
        overlap: args.num_or("overlap", 0.75)?,
        samplings: args.num_or("samplings", 30)?,
    };
    if !(0.0..=1.0).contains(&cfg.overlap) {
        return Err(ParseError("--overlap must be in [0, 1]".into()));
    }
    if !(0.0 < cfg.rho && cfg.rho <= 1.0) {
        return Err(ParseError("--rho must be in (0, 1]".into()));
    }
    let ranges = workload_layer_ranges(workload);
    let model = CommModel::new(spec);
    let report = autotune_layers(&ranges, &model, &cfg);
    println!(
        "autotune: {workload:?} ({} layers) on {}x{} ({}), rho {} overlap {}",
        ranges.len(),
        spec.nodes,
        spec.gpus_per_node,
        args.get_or("cloud", "tencent"),
        cfg.rho,
        cfg.overlap
    );
    println!("{:<16} {:>8} {:>16}", "scheme", "layers", "forced total");
    let counts = report.counts();
    for (slot, scheme) in cloudtrain::engine::autotune::SCHEMES.iter().enumerate() {
        println!(
            "{:<16} {:>8} {:>14.3}ms",
            scheme.label(),
            counts[slot],
            report.forced_totals[slot] * 1e3
        );
    }
    println!(
        "{:<16} {:>8} {:>14.3}ms  (per-layer argmin)",
        "autotuned",
        ranges.len(),
        report.autotuned_total * 1e3
    );
    let wfbp = wfbp_model_for(&ranges, &spec);
    let t = report.iteration_time(&wfbp);
    println!(
        "wfbp-priced iteration: {:.3}ms total, {:.3}ms backward, {:.3}ms exposed comm",
        t.total * 1e3,
        t.backward * 1e3,
        t.exposed_comm * 1e3
    );
    println!(
        "recommendation: strategy {} for a single global knob, fused_compress_reduce={}",
        report.global_choice().label(),
        report.fused_compress_reduce()
    );
    let c = &report.crossovers;
    match c.sparse_min_params {
        Some(p) => println!("crossover: sparse beats dense from ~{p} params/layer"),
        None => println!("crossover: dense wins at every scanned layer size"),
    }
    match c.fused_max_shard_params {
        Some(p) => println!("crossover: fused beats staged up to ~{p} params/shard"),
        None => println!("crossover: staged wins at every scanned shard size"),
    }
    match c.oksparse_min_overlap {
        Some(omega) => println!(
            "crossover: O(k) beats HiTopKComm traffic from selection overlap >= {omega:.3} \
             (model: omega > 1/(m-1))"
        ),
        None => println!(
            "crossover: O(k) never beats HiTopKComm on {} nodes",
            spec.nodes
        ),
    }
    match args.get_or("out", "") {
        "" => {}
        path => {
            let json = serde_json::to_string(&report)
                .map_err(|e| ParseError(format!("serialize report: {e}")))?;
            std::fs::write(path, json + "\n")
                .map_err(|e| ParseError(format!("--out {path}: {e}")))?;
            eprintln!("wrote JSON report to {path}");
        }
    }
    Ok(())
}

/// One cell of the tail sweep: makespan and deadline-miss count for a
/// (plan, policy, workload) triple on the given cluster.
fn tails_cell(
    spec: &ClusterSpec,
    plan: &FaultPlan,
    policy: SimResilience,
    sparse: bool,
    bytes: usize,
) -> (f64, u64) {
    let mut sim = NetSim::new(*spec);
    sim.inject_faults(plan.clone(), policy);
    if sparse {
        sim_hitopk(&mut sim, spec, bytes / 4, 4, 0.01, 1e-4);
    } else {
        sim_torus_all_reduce(&mut sim, spec, bytes);
    }
    (sim.makespan(), sim.fault_counters().deadline_missed)
}

fn cmd_tails(args: &Args) -> Result<(), ParseError> {
    args.reject_unknown(&["nodes", "cloud", "seeds", "bytes", "mult", "deny"])?;
    let spec = cluster_with(args, 4)?;
    if spec.nodes < 2 {
        return Err(ParseError("tails needs at least 2 nodes".into()));
    }
    let seeds: u64 = args.num_or("seeds", 4)?;
    if seeds == 0 {
        return Err(ParseError("--seeds must be at least 1".into()));
    }
    let bytes: usize = args.num_or("bytes", 1 << 20)?;
    let mult: f64 = args.num_or("mult", 1.5)?;
    if mult < 1.0 {
        return Err(ParseError(format!(
            "--mult {mult} < 1: a budget below the probed clean hop time \
             abandons clean traffic"
        )));
    }
    // The deadline budget comes from a probe of the clean fabric, not a
    // hand-tuned constant — the same derivation the tail gauntlet pins.
    let est = probe_pairwise(&spec, &FaultPlan::new(0));
    let (alpha, beta) = est.worst_link();
    println!(
        "tails on {} nodes ({}): probed alpha {:.3e}s beta {:.3e}s/B, hop budget {mult}x, {seeds} seed(s)",
        spec.nodes,
        args.get_or("cloud", "tencent"),
        alpha,
        beta
    );
    type PlanOf = fn(u64) -> FaultPlan;
    let families: [(&str, PlanOf); 3] = [
        ("drops", |seed| FaultPlan::new(seed).with_drops(0.05)),
        ("spikes", |seed| {
            FaultPlan::new(seed).with_spikes(0.10, 2e-3)
        }),
        ("stragglers", |seed| {
            FaultPlan::new(seed)
                .straggle(0, 1.5)
                .straggle(1, 1.2)
                .degrade_link(0, 8.0, 0.0, 0.05)
        }),
    ];
    println!(
        "{:<12} {:<8} {:<9} {:>11} {:>11} {:>11} {:>7}",
        "family", "workload", "policy", "p50", "p95", "p99", "missed"
    );
    let mut regressions: Vec<String> = Vec::new();
    for (family, plan_of) in families {
        for sparse in [false, true] {
            let workload = if sparse { "mstopk" } else { "2dtar" };
            // Dense traffic must not lose bytes under the ladder, sparse
            // traffic may degrade — the fault gauntlet's policy split.
            let (baseline_name, baseline_policy) = if sparse {
                ("degrade", SimResilience::degrading())
            } else {
                ("retry", SimResilience::default())
            };
            let deadline_policy = SimResilience::deadline_bounded(mult, alpha, beta);
            let mut spans: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
            let mut missed = [0u64, 0u64];
            for seed in 0..seeds {
                let plan = plan_of(seed);
                for (slot, policy) in [baseline_policy, deadline_policy].into_iter().enumerate() {
                    let (makespan, cell_missed) = tails_cell(&spec, &plan, policy, sparse, bytes);
                    spans[slot].push(makespan);
                    missed[slot] += cell_missed;
                }
            }
            for (slot, policy_name) in [baseline_name, "deadline"].into_iter().enumerate() {
                println!(
                    "{:<12} {:<8} {:<9} {:>9.2}us {:>9.2}us {:>9.2}us {:>7}",
                    family,
                    workload,
                    policy_name,
                    percentile(&spans[slot], 0.50) * 1e6,
                    percentile(&spans[slot], 0.95) * 1e6,
                    percentile(&spans[slot], 0.99) * 1e6,
                    missed[slot]
                );
            }
            let baseline_p99 = percentile(&spans[0], 0.99);
            let deadline_p99 = percentile(&spans[1], 0.99);
            // The deadline only wins where the payload is β-dominated: an
            // abandoned hop ties the port for the full budget, while a
            // ridden-out hop frees it after serialization (α overlaps in
            // flight). Small chunks can therefore regress — surface it.
            if deadline_p99 > baseline_p99 + 1e-12 {
                regressions.push(format!(
                    "{family} {workload}: deadline p99 {:.2}us > {baseline_name} p99 {:.2}us",
                    deadline_p99 * 1e6,
                    baseline_p99 * 1e6
                ));
            }
        }
    }
    if regressions.is_empty() {
        println!("deadline p99 <= baseline p99 on every family x workload cell");
    } else {
        for r in &regressions {
            println!("WARNING {r} (alpha-dominated chunks: abandoning ties the port for the full budget)");
        }
        if args.flag("deny") {
            return Err(ParseError(format!(
                "tails --deny: deadline p99 regressed on {} cell(s)",
                regressions.len()
            )));
        }
    }
    Ok(())
}

fn cmd_elastic(args: &Args) -> Result<(), ParseError> {
    args.reject_unknown(&[
        "scenario", "mode", "nodes", "gpus", "epochs", "iters", "rho", "seed", "out",
    ])?;
    let nodes: usize = args.num_or("nodes", 8)?;
    let epochs: usize = args.num_or("epochs", 3)?;
    let seed: u64 = args.num_or("seed", 42)?;
    if nodes < 3 || epochs < 3 {
        return Err(ParseError(
            "elastic: every scenario needs --nodes >= 3 and --epochs >= 3".to_string(),
        ));
    }
    let scenario = match args.get_or("scenario", "evict") {
        "steady" => ElasticScenario::steady(seed, nodes, epochs),
        "evict" => ElasticScenario::evict(seed, nodes, epochs),
        "evict-join" => ElasticScenario::evict_join(seed, nodes, epochs),
        "rack" => ElasticScenario::rack_loss(seed, nodes, epochs),
        other => {
            return Err(ParseError(format!(
                "unknown scenario `{other}` (steady|evict|evict-join|rack)"
            )))
        }
    };
    let mode = args.get_or("mode", "replay");
    if !matches!(mode, "replay" | "reshard") {
        return Err(ParseError(format!(
            "unknown mode `{mode}` (replay|reshard)"
        )));
    }

    println!(
        "elastic scenario `{}`: {} nodes, {} epochs, seed {}",
        scenario.name, nodes, epochs, seed
    );
    let timeline = scenario.simulate();
    println!("membership events (virtual clock):");
    for e in &timeline.events {
        println!("  t={:>6.2}s  node {:>3}  {:?}", e.at, e.node, e.kind);
    }
    let resharding = timeline.reshard_events(scenario.seed, scenario.dataset_len);
    println!("resharding ({} cached samples):", scenario.dataset_len);
    if resharding.is_empty() {
        println!("  none (membership never changed)");
    }
    for ev in &resharding {
        println!(
            "  epoch {}  {:<5} node {:>3}: moved {:>6} ({:.2}%), survivor churn {} ({:.2}%)",
            ev.epoch,
            ev.kind,
            ev.node,
            ev.stats.moved,
            ev.stats.moved_pct(),
            ev.stats.excess_moved,
            ev.stats.excess_pct()
        );
    }

    if mode == "reshard" {
        // Control-plane accounting only: no training, just the ledger.
        let mut reg = Registry::new();
        timeline.coordinator.publish(&mut reg);
        for ev in &resharding {
            ev.publish(&mut reg);
        }
        return emit_elastic_registry(args, &reg);
    }

    let cfg = DistConfig {
        nodes,
        gpus_per_node: args.num_or("gpus", 1)?,
        epochs,
        iters_per_epoch: args.num_or("iters", 4)?,
        local_batch: 4,
        eval_samples: 16,
        seed,
        ..DistConfig::small(
            Strategy::MsTopKHiTopK {
                rho: args.num_or("rho", 0.05)?,
                samplings: 20,
            },
            Workload::Mlp,
        )
    };
    let trainer = DistTrainer::new(cfg);
    let elastic = trainer.run_elastic(&scenario);
    let planned = trainer.run_elastic_planned(&scenario);
    println!("segments:");
    for s in &elastic.segments {
        println!(
            "  epochs {:>2}..{:<3} {:>2} node(s): {:?}",
            s.start_epoch,
            s.start_epoch + s.epochs,
            s.nodes.len(),
            s.nodes
        );
    }
    println!(
        "{:<7} {:>10} {:>8} {:>12}",
        "epoch", "loss", "top1", "residual"
    );
    for e in &elastic.report.epochs {
        println!(
            "{:<7} {:>10.4} {:>7.1}% {:>12.3}",
            e.epoch,
            e.train_loss,
            e.val_top1 * 100.0,
            e.residual_norm
        );
    }
    let bitwise = elastic.bitwise_eq(&planned);
    println!(
        "checkpoint replay vs in-memory twin: {}",
        if bitwise {
            "bitwise identical"
        } else {
            "DIVERGED"
        }
    );
    emit_elastic_registry(args, &elastic.registry)?;
    if !bitwise {
        return Err(ParseError(
            "elastic: checkpoint replay diverged from the planned twin".to_string(),
        ));
    }
    Ok(())
}

fn emit_elastic_registry(args: &Args, reg: &Registry) -> Result<(), ParseError> {
    match args.get_or("out", "") {
        "" => {}
        path => {
            std::fs::write(path, reg.to_jsonl())
                .map_err(|e| ParseError(format!("--out {path}: {e}")))?;
            // stderr, so stdout stays byte-identical across runs for the
            // elastic gate's `cmp` regardless of where --out points.
            eprintln!("wrote JSONL snapshot to {path}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn strategy_parsing_covers_all() {
        for (name, label) in [
            ("dense", "Dense-SGD"),
            ("2dtar", "2DTAR-SGD"),
            ("topk", "TopK-SGD"),
            ("mstopk", "MSTopK-SGD"),
            ("gtopk", "gTopK-SGD"),
            ("qsgd", "QSGD"),
        ] {
            let a = args(&format!("simulate --strategy {name}"));
            assert_eq!(strategy_of(&a).unwrap().label(), label);
        }
        assert!(strategy_of(&args("simulate --strategy nope")).is_err());
    }

    #[test]
    fn model_and_cluster_parsing() {
        let a = args("simulate --model vgg19 --cloud aliyun --nodes 8");
        assert_eq!(model_of(&a).unwrap().name, "VGG-19");
        assert_eq!(cluster_of(&a).unwrap().nodes, 8);
        assert!(model_of(&args("simulate --model nope")).is_err());
        assert!(cluster_of(&args("simulate --cloud nope")).is_err());
    }

    #[test]
    fn simulate_and_sweep_run_end_to_end() {
        dispatch(&args("simulate --model resnet50-96 --strategy mstopk")).unwrap();
        dispatch(&args("sweep --model transformer")).unwrap();
        dispatch(&args("dawnbench --cloud ib")).unwrap();
    }

    #[test]
    fn faults_ablation_runs_and_validates_flags() {
        dispatch(&args(
            "faults --model resnet50-96 --nodes 4 --seeds 2 --drops 0.02 --stragglers 1",
        ))
        .unwrap();
        assert!(dispatch(&args("faults --drops 1.5")).is_err());
        assert!(dispatch(&args("faults --nodes 2 --stragglers 3")).is_err());
        assert!(dispatch(&args("faults --bogus 1")).is_err());
    }

    #[test]
    fn elastic_validates_flags() {
        assert!(dispatch(&args("elastic --scenario nope")).is_err());
        assert!(dispatch(&args("elastic --mode nope --nodes 4")).is_err());
        assert!(dispatch(&args("elastic --nodes 2")).is_err());
        assert!(dispatch(&args("elastic --epochs 1")).is_err());
        assert!(dispatch(&args("elastic --bogus 1")).is_err());
        assert!(dispatch(&args("elastic --nodes zero")).is_err());
    }

    #[test]
    fn elastic_replay_runs_and_passes_its_own_bitwise_gate() {
        dispatch(&args(
            "elastic --scenario evict --mode replay --nodes 4 --epochs 3 --iters 3 --seed 7",
        ))
        .unwrap();
    }

    #[test]
    fn elastic_reshard_snapshot_is_byte_stable() {
        let out =
            std::env::temp_dir().join(format!("cloudtrain-elastic-test-{}", std::process::id()));
        let cmd = format!(
            "elastic --scenario rack --mode reshard --nodes 16 --seed 3 --out {}",
            out.display()
        );
        dispatch(&args(&cmd)).unwrap();
        let first = std::fs::read(&out).unwrap();
        dispatch(&args(&cmd)).unwrap();
        let second = std::fs::read(&out).unwrap();
        assert_eq!(first, second, "same-seed snapshots must be byte-identical");
        let _ = std::fs::remove_file(&out);
        let text = String::from_utf8(first).unwrap();
        assert!(text.contains("elastic/reshard_events"));
        assert!(text.contains("elastic/events/evicted"));
    }

    #[test]
    fn trace_snapshot_is_byte_stable() {
        let out =
            std::env::temp_dir().join(format!("cloudtrain-trace-test-{}", std::process::id()));
        let cmd = format!(
            "trace --model resnet50-96 --strategy mstopk --nodes 4 --samples 32 --out {}",
            out.display()
        );
        dispatch(&args(&cmd)).unwrap();
        let first = std::fs::read(&out).unwrap();
        dispatch(&args(&cmd)).unwrap();
        let second = std::fs::read(&out).unwrap();
        assert_eq!(first, second, "same-seed traces must be byte-identical");
        let text = String::from_utf8(first).unwrap();
        // Fig. 8 stage spans and Fig. 9 tier counters are both present.
        assert!(text.contains("hitopk/inter all-gather"));
        assert!(text.contains("cache/from_memory"));
        assert!(text.contains("\"type\":\"gauge\",\"name\":\"iter/total\""));
        let _ = std::fs::remove_file(&out);
        assert!(dispatch(&args("trace --bogus 1")).is_err());
    }

    #[test]
    fn trace_runs_every_strategy_to_stdout() {
        for s in ["dense", "2dtar", "topk", "gtopk", "qsgd"] {
            dispatch(&args(&format!(
                "trace --strategy {s} --nodes 2 --samples 4"
            )))
            .unwrap();
        }
    }

    #[test]
    fn conformance_report_is_byte_stable() {
        let dir = std::env::temp_dir();
        let corpus = dir.join(format!("cloudtrain-conf-corpus-{}", std::process::id()));
        std::fs::write(
            &corpus,
            "oracle ring m=2 n=2 d=64 seed=5\n\
             oracle hitopk m=2 n=2 d=96 rho=0.1 comp=mstopk seed=6\n\
             cost torus nodes=4 gpus=8 d=100000 gbps=25\n\
             meta scale comp=sorttopk d=256 k=16 seed=7\n",
        )
        .unwrap();
        let out = dir.join(format!("cloudtrain-conf-out-{}", std::process::id()));
        let cmd = format!(
            "conformance --corpus {} --out {}",
            corpus.display(),
            out.display()
        );
        dispatch(&args(&cmd)).unwrap();
        let first = std::fs::read(&out).unwrap();
        dispatch(&args(&cmd)).unwrap();
        let second = std::fs::read(&out).unwrap();
        assert_eq!(first, second, "two runs must produce byte-identical JSONL");
        let text = String::from_utf8(first).unwrap();
        assert!(text.contains("\"case\":\"case-000\""));
        assert!(text.contains("\"status\":\"pass\""));
        assert!(text.contains("conformance/divergences"));
        let _ = std::fs::remove_file(&corpus);
        let _ = std::fs::remove_file(&out);
        assert!(dispatch(&args("conformance --bogus 1")).is_err());
        assert!(dispatch(&args("conformance --corpus /no/such/file")).is_err());
    }

    #[test]
    fn conformance_deny_enforces_coverage() {
        // A passing-but-partial corpus is fine without --deny and an error
        // with it: --deny gates on full pairing coverage, not just zero
        // divergences.
        let corpus =
            std::env::temp_dir().join(format!("cloudtrain-conf-partial-{}", std::process::id()));
        std::fs::write(&corpus, "oracle ring m=2 n=2 d=32 seed=1\n").unwrap();
        let plain = format!("conformance --corpus {}", corpus.display());
        dispatch(&args(&plain)).unwrap();
        let err = dispatch(&args(&format!("{plain} --deny"))).unwrap_err();
        assert!(err.to_string().contains("uncovered"), "{err}");
        let _ = std::fs::remove_file(&corpus);
    }

    #[test]
    fn conformance_shipped_corpus_passes_deny_with_fuzz() {
        dispatch(&args("conformance --deny --fuzz 4 --seed 9")).unwrap();
    }

    #[test]
    fn unknown_command_and_flags_fail() {
        assert!(dispatch(&args("frobnicate")).is_err());
        assert!(dispatch(&args("simulate --bogus 1")).is_err());
    }

    #[test]
    fn reorder_runs_and_validates_flags() {
        dispatch(&args("reorder --nodes 4 --bytes 65536 --seed 3")).unwrap();
        dispatch(&args("reorder --scramble off")).unwrap();
        assert!(dispatch(&args("reorder --nodes 1")).is_err());
        assert!(dispatch(&args("reorder --scramble maybe")).is_err());
        assert!(dispatch(&args("reorder --bogus 1")).is_err());
    }

    #[test]
    fn reorder_probe_is_deterministic_and_beats_identity() {
        // Same seed -> bit-identical probe, cost model, and permutation.
        let spec = clouds::tencent(4);
        let (o1, id1, opt1) = probed_ring_order(&spec, 1 << 20, 7, true);
        let (o2, id2, opt2) = probed_ring_order(&spec, 1 << 20, 7, true);
        assert_eq!(o1, o2, "same-seed probe->reorder must be deterministic");
        assert_eq!(id1.to_bits(), id2.to_bits());
        assert_eq!(opt1.to_bits(), opt2.to_bits());
        // On the rack-scrambled fabric the optimizer beats the identity.
        assert!(opt1 < id1, "optimized {opt1} should beat identity {id1}");
        // On the uniform clean fabric every order prices the same.
        let (_, id_u, opt_u) = probed_ring_order(&spec, 1 << 20, 7, false);
        assert!((id_u - opt_u).abs() < 1e-15);
    }

    #[test]
    fn autotune_runs_and_validates_flags() {
        dispatch(&args("autotune --workload transformer --nodes 4 --gpus 4")).unwrap();
        dispatch(&args("autotune --workload mlp --overlap 1.0 --rho 0.05")).unwrap();
        assert!(dispatch(&args("autotune --nodes 1")).is_err());
        assert!(dispatch(&args("autotune --overlap 1.5")).is_err());
        assert!(dispatch(&args("autotune --rho 0")).is_err());
        assert!(dispatch(&args("autotune --workload nope")).is_err());
        assert!(dispatch(&args("autotune --bogus 1")).is_err());
    }

    #[test]
    fn autotune_report_is_byte_stable() {
        let out = std::env::temp_dir().join(format!("cloudtrain-autotune-{}", std::process::id()));
        let cmd = format!(
            "autotune --workload transformer --nodes 4 --gpus 4 --out {}",
            out.display()
        );
        dispatch(&args(&cmd)).unwrap();
        let first = std::fs::read(&out).unwrap();
        dispatch(&args(&cmd)).unwrap();
        let second = std::fs::read(&out).unwrap();
        assert_eq!(first, second, "same-flag reports must be byte-identical");
        let text = String::from_utf8(first).unwrap();
        assert!(text.contains("\"crossovers\""));
        assert!(text.contains("\"forced_totals\""));
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn tails_runs_and_validates_flags() {
        // At the default 1 MiB payload chunks are beta-dominated and the
        // deadline wins every cell, so --deny passes.
        dispatch(&args("tails --nodes 4 --seeds 2 --deny")).unwrap();
        assert!(dispatch(&args("tails --nodes 1")).is_err());
        assert!(dispatch(&args("tails --seeds 0")).is_err());
        assert!(dispatch(&args("tails --mult 0.5")).is_err());
        assert!(dispatch(&args("tails --bogus 1")).is_err());
    }

    #[test]
    fn tails_deny_flags_alpha_dominated_regression() {
        // At 256 KiB the straggler-family chunks are alpha-dominated: an
        // abandoned hop ties the NIC for the full budget while riding out
        // frees it after serialization, so the deadline's p99 regresses.
        // Without --deny that is a warning; with it, an error.
        dispatch(&args("tails --nodes 4 --seeds 1 --bytes 262144")).unwrap();
        let err = dispatch(&args("tails --nodes 4 --seeds 1 --bytes 262144 --deny")).unwrap_err();
        assert!(err.to_string().contains("regressed"), "{err}");
    }

    #[test]
    fn tiny_training_run_via_cli() {
        dispatch(&args(
            "train --workload mlp --strategy 2dtar --epochs 1 --iters 3 --nodes 1 --gpus 2",
        ))
        .unwrap();
    }
}
