//! `cloudtrain` — command-line front end for the reproduction.
//!
//! ```text
//! cloudtrain train     --workload mlp --strategy mstopk --epochs 4
//! cloudtrain simulate  --model resnet50-96 --strategy 2dtar --nodes 16
//! cloudtrain sweep     --model resnet50-96 --nodes 16
//! cloudtrain dawnbench --cloud tencent
//! cloudtrain faults    --model resnet50-96 --drops 0.01 --stragglers 2
//! cloudtrain trace     --model resnet50-96 --strategy mstopk --out obs.jsonl
//! cloudtrain help
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "help" || raw[0] == "--help" {
        commands::print_help();
        return;
    }
    let code = match Args::parse(raw) {
        Ok(args) => match commands::dispatch(&args) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("error: {e}");
                2
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            commands::print_help();
            2
        }
    };
    std::process::exit(code);
}
