//! Hand-rolled argument parsing for the `cloudtrain` binary.
//!
//! `--key value` / `--key=value` flags after a subcommand; a flag
//! followed by another flag (or end of input) is boolean `true`. Unknown
//! flags are errors with a hint, so typos fail loudly instead of silently
//! using defaults.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
///
/// Options live in a `BTreeMap` so error messages (and any future
/// iteration over flags) are deterministic regardless of argument order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (`train`, `simulate`, `dawnbench`, `sweep`).
    pub command: String,
    options: BTreeMap<String, String>,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    /// Returns a [`ParseError`] on missing subcommand or a stray
    /// positional argument. A flag followed by another flag (or the end
    /// of the arguments) is recorded as boolean `"true"`.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ParseError> {
        let mut it = raw.into_iter().peekable();
        let command = it
            .next()
            .ok_or_else(|| ParseError("missing subcommand (try `cloudtrain help`)".into()))?;
        let mut options = BTreeMap::new();
        while let Some(tok) = it.next() {
            let Some(stripped) = tok.strip_prefix("--") else {
                return Err(ParseError(format!(
                    "unexpected positional argument `{tok}`"
                )));
            };
            if let Some((k, v)) = stripped.split_once('=') {
                options.insert(k.to_string(), v.to_string());
            } else if it.peek().is_none_or(|next| next.starts_with("--")) {
                options.insert(stripped.to_string(), "true".to_string());
            } else {
                let v = it.next().unwrap_or_default();
                options.insert(stripped.to_string(), v);
            }
        }
        Ok(Self { command, options })
    }

    /// Whether a boolean flag was passed (`--flag` or `--flag true`).
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).map(String::as_str) == Some("true")
    }

    /// A string option or its default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// A parsed numeric option or its default.
    ///
    /// # Errors
    /// Returns a [`ParseError`] if the value does not parse.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ParseError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("invalid value `{v}` for --{key}"))),
        }
    }

    /// Rejects any option not in `allowed` (typo protection).
    ///
    /// # Errors
    /// Returns a [`ParseError`] naming the unknown flag.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ParseError> {
        for k in self.options.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ParseError(format!(
                    "unknown flag --{k} for `{}` (allowed: {})",
                    self.command,
                    allowed.join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ParseError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = parse("train --epochs 4 --strategy=mstopk").unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get_or("epochs", "1"), "4");
        assert_eq!(a.get_or("strategy", "dense"), "mstopk");
        assert_eq!(a.get_or("missing", "dflt"), "dflt");
    }

    #[test]
    fn numeric_parsing_with_defaults() {
        let a = parse("simulate --nodes 16").unwrap();
        assert_eq!(a.num_or::<usize>("nodes", 4).unwrap(), 16);
        assert_eq!(a.num_or::<usize>("gpus", 8).unwrap(), 8);
        assert!(parse("simulate --nodes abc")
            .unwrap()
            .num_or::<usize>("nodes", 4)
            .is_err());
    }

    #[test]
    fn errors_are_loud() {
        assert!(parse("").is_err());
        assert!(parse("train stray").is_err());
        // A value-less numeric flag parses as boolean `true` and then
        // fails loudly at the numeric conversion.
        let a = parse("train --epochs").unwrap();
        assert!(a.num_or::<usize>("epochs", 1).is_err());
        let a = parse("train --epochz 4").unwrap();
        let err = a.reject_unknown(&["epochs"]).unwrap_err();
        assert!(err.to_string().contains("epochz"));
    }

    #[test]
    fn equals_values_keep_embedded_equals_signs() {
        // Only the first `=` splits: paths and key=value payloads survive.
        let a = parse("trace --out=/tmp/a=b.jsonl").unwrap();
        assert_eq!(a.get_or("out", ""), "/tmp/a=b.jsonl");
        // `--key=` is an explicit empty value, not a boolean.
        let a = parse("trace --out=").unwrap();
        assert_eq!(a.get_or("out", "dflt"), "");
        assert!(!a.flag("out"));
    }

    #[test]
    fn duplicate_flags_last_one_wins() {
        let a = parse("simulate --nodes 4 --nodes 16").unwrap();
        assert_eq!(a.num_or::<usize>("nodes", 1).unwrap(), 16);
        let a = parse("simulate --nodes=4 --nodes=8").unwrap();
        assert_eq!(a.num_or::<usize>("nodes", 1).unwrap(), 8);
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let a = parse("lint --deny --out report.jsonl").unwrap();
        assert!(a.flag("deny"));
        assert_eq!(a.get_or("out", ""), "report.jsonl");
        // Trailing flag with no value is boolean too.
        let a = parse("lint --out x --deny").unwrap();
        assert!(a.flag("deny"));
    }

    #[test]
    fn boolean_flags() {
        let a = parse("lint --deny --root .").unwrap();
        assert!(a.flag("deny"));
        assert_eq!(a.get_or("root", "/"), ".");
        assert!(!a.flag("root"));
        assert!(!a.flag("missing"));
        assert!(parse("lint --deny=true").unwrap().flag("deny"));
    }
}
