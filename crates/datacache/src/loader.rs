//! The combined multi-level loader: memory KV → local disk → NFS
//! (Fig. 5's full read path).

use std::sync::Arc;

use cloudtrain_obs::Registry;

use crate::decode::{augment, decode, Sample};
use crate::disk::DiskCache;
use crate::memcache::MemoryCache;
use crate::nfs::SyntheticNfs;
use crate::timing::CpuModel;
use crate::SampleId;

/// Loader configuration.
#[derive(Debug, Clone)]
pub struct LoaderConfig {
    /// Memory-cache capacity in bytes.
    pub mem_capacity: usize,
    /// Whether the disk tier is enabled (the "Naive" baseline of Fig. 9
    /// disables both cache tiers).
    pub use_disk: bool,
    /// Whether the memory tier is enabled.
    pub use_memory: bool,
    /// CPU cost model for decode/augment.
    pub cpu: CpuModel,
}

impl Default for LoaderConfig {
    fn default() -> Self {
        Self {
            mem_capacity: 8 << 30,
            use_disk: true,
            use_memory: true,
            cpu: CpuModel::default(),
        }
    }
}

/// Which tier ultimately served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Pre-processed sample straight from the in-memory KV store.
    Memory,
    /// Blob from the node-local file cache (decode still required).
    Disk,
    /// Blob fetched from the networked file system.
    Nfs,
}

/// Cumulative per-tier accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierStats {
    /// Requests served by the memory tier.
    pub from_memory: u64,
    /// Requests served by the disk tier.
    pub from_disk: u64,
    /// Requests served by NFS.
    pub from_nfs: u64,
    /// Virtual seconds spent on storage I/O.
    pub io_seconds: f64,
    /// Virtual seconds spent on CPU decode/augment.
    pub cpu_seconds: f64,
}

impl TierStats {
    /// Total virtual data-pipeline seconds (I/O + CPU).
    pub fn total_seconds(&self) -> f64 {
        self.io_seconds + self.cpu_seconds
    }

    /// Publishes the per-tier counters and time gauges into an
    /// observability registry (`cache/from_memory`, `cache/from_disk`,
    /// `cache/from_nfs`, `cache/io_seconds`, `cache/cpu_seconds`).
    pub fn publish(&self, reg: &mut Registry) {
        reg.counter_add("cache/from_memory", self.from_memory);
        reg.counter_add("cache/from_disk", self.from_disk);
        reg.counter_add("cache/from_nfs", self.from_nfs);
        reg.gauge_set("cache/io_seconds", self.io_seconds);
        reg.gauge_set("cache/cpu_seconds", self.cpu_seconds);
    }
}

/// Multi-level cached sample loader.
///
/// # Examples
/// ```
/// use cloudtrain_datacache::loader::{LoaderConfig, ServedBy};
/// use cloudtrain_datacache::{CachedLoader, SyntheticNfs};
///
/// let cfg = LoaderConfig { use_disk: false, ..LoaderConfig::default() };
/// let mut loader = CachedLoader::new(SyntheticNfs::new(32 * 32 * 3, 1), None, cfg);
/// let (_, first, _) = loader.load(7);
/// let (_, second, t) = loader.load(7);
/// assert_eq!(first, ServedBy::Nfs);
/// assert_eq!(second, ServedBy::Memory);
/// assert!(t < 1e-4); // microseconds, not milliseconds
/// ```
#[derive(Debug)]
pub struct CachedLoader {
    nfs: SyntheticNfs,
    disk: Option<DiskCache>,
    mem: Option<MemoryCache>,
    cfg: LoaderConfig,
    stats: TierStats,
}

impl CachedLoader {
    /// Builds a loader over `nfs` with the given config; `disk` must be
    /// provided when `cfg.use_disk` is set.
    ///
    /// # Panics
    /// Panics if `cfg.use_disk` is set but no disk cache is supplied.
    pub fn new(nfs: SyntheticNfs, disk: Option<DiskCache>, cfg: LoaderConfig) -> Self {
        assert!(
            !cfg.use_disk || disk.is_some(),
            "CachedLoader: use_disk requires a DiskCache"
        );
        let mem = cfg.use_memory.then(|| MemoryCache::new(cfg.mem_capacity));
        Self {
            nfs,
            disk,
            mem,
            cfg,
            stats: TierStats::default(),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> TierStats {
        self.stats
    }

    /// Resets the cumulative statistics (e.g. between epochs) without
    /// touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = TierStats::default();
    }

    /// Loads sample `id`, returning it, the tier that served it, and the
    /// virtual seconds the access cost.
    pub fn load(&mut self, id: SampleId) -> (Arc<Sample>, ServedBy, f64) {
        // Tier 1: pre-processed sample in memory.
        if let Some(mem) = self.mem.as_mut() {
            if let Some((sample, t)) = mem.get(id) {
                self.stats.from_memory += 1;
                self.stats.io_seconds += t;
                return (sample, ServedBy::Memory, t);
            }
        }

        // Tier 2: raw blob on local disk.
        let (blob, io_t, served) = match self.disk.as_mut().and_then(|d| d.get(id)) {
            Some((blob, t)) => (blob, t, ServedBy::Disk),
            None => {
                let (blob, t_nfs) = self.nfs.fetch(id);
                let mut t = t_nfs;
                if self.cfg.use_disk {
                    if let Some(d) = self.disk.as_mut() {
                        if let Ok(t_w) = d.put(id, &blob) {
                            t += t_w;
                        }
                    }
                }
                (blob, t, ServedBy::Nfs)
            }
        };

        // CPU stage: decode + augment.
        // lint:allow(panic_free, reason = "the blob came from this crate's own synthetic NFS generator; a malformed one is a generator bug, not input")
        let (mut sample, t_dec) = decode(&blob, &self.cfg.cpu).expect("synthetic blob must decode");
        let t_aug = augment(&mut sample, id.is_multiple_of(2), &self.cfg.cpu);
        let sample = Arc::new(sample);

        if let Some(mem) = self.mem.as_mut() {
            mem.put(id, Arc::clone(&sample));
        }

        match served {
            ServedBy::Disk => self.stats.from_disk += 1,
            ServedBy::Nfs => self.stats.from_nfs += 1,
            ServedBy::Memory => unreachable!(),
        }
        self.stats.io_seconds += io_t;
        self.stats.cpu_seconds += t_dec + t_aug;
        (sample, served, io_t + t_dec + t_aug)
    }

    /// [`Self::load`] with the access recorded as a span in `reg`, named
    /// after the tier that served it (`cache/memory`, `cache/disk`,
    /// `cache/nfs`) and charged in virtual seconds — so a trace snapshot
    /// reproduces Fig. 9's per-tier time breakdown directly from
    /// [`cloudtrain_obs::Registry::span_total`].
    pub fn load_traced(
        &mut self,
        id: SampleId,
        reg: &mut Registry,
    ) -> (Arc<Sample>, ServedBy, f64) {
        let (sample, served, t) = self.load(id);
        let name = match served {
            ServedBy::Memory => "cache/memory",
            ServedBy::Disk => "cache/disk",
            ServedBy::Nfs => "cache/nfs",
        };
        let span = reg.span_open(name, reg.now());
        reg.advance(t);
        reg.span_close(span, reg.now());
        (sample, served, t)
    }

    /// Publishes the loader's cumulative tier statistics — and the memory
    /// tier's hit/miss/eviction counters when enabled — into `reg`.
    pub fn publish_obs(&self, reg: &mut Registry) {
        self.stats.publish(reg);
        if let Some(mem) = self.mem.as_ref() {
            mem.stats().publish(reg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cloudtrain-loader-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn loader(tag: &str, cfg: LoaderConfig) -> CachedLoader {
        let nfs = SyntheticNfs::new(96 * 96 * 3, 1);
        let disk = cfg.use_disk.then(|| DiskCache::open(tmpdir(tag)).unwrap());
        CachedLoader::new(nfs, disk, cfg)
    }

    #[test]
    fn tiers_escalate_nfs_then_memory() {
        let mut l = loader("escalate", LoaderConfig::default());
        let (_, by1, t1) = l.load(7);
        assert_eq!(by1, ServedBy::Nfs);
        let (_, by2, t2) = l.load(7);
        assert_eq!(by2, ServedBy::Memory);
        // The memory hit skips NFS latency and decode entirely.
        assert!(t2 < t1 / 100.0, "t2={t2} t1={t1}");
    }

    #[test]
    fn disk_serves_when_memory_disabled() {
        let cfg = LoaderConfig {
            use_memory: false,
            ..LoaderConfig::default()
        };
        let mut l = loader("diskonly", cfg);
        let (_, by1, _) = l.load(3);
        assert_eq!(by1, ServedBy::Nfs);
        let (_, by2, t2) = l.load(3);
        assert_eq!(by2, ServedBy::Disk);
        // Disk still pays the decode cost.
        assert!(t2 > CpuModel::default().decode_time(96 * 96 * 3));
    }

    #[test]
    fn naive_mode_always_hits_nfs() {
        let cfg = LoaderConfig {
            use_disk: false,
            use_memory: false,
            ..LoaderConfig::default()
        };
        let mut l = loader("naive", cfg);
        for _ in 0..3 {
            let (_, by, _) = l.load(5);
            assert_eq!(by, ServedBy::Nfs);
        }
        assert_eq!(l.stats().from_nfs, 3);
    }

    #[test]
    fn samples_are_identical_across_tiers() {
        let mut l = loader("consistent", LoaderConfig::default());
        let (a, _, _) = l.load(11);
        let (b, _, _) = l.load(11);
        assert_eq!(*a, *b);
    }

    #[test]
    fn traced_load_records_tier_spans_in_virtual_seconds() {
        let mut l = loader("traced", LoaderConfig::default());
        let mut reg = Registry::new();
        let (_, by1, t1) = l.load_traced(7, &mut reg);
        let (_, by2, t2) = l.load_traced(7, &mut reg);
        assert_eq!((by1, by2), (ServedBy::Nfs, ServedBy::Memory));
        assert_eq!(reg.spans().len(), 2);
        assert_eq!(reg.span_total("cache/nfs"), t1);
        // The memory span's duration is `(t1 + t2) - t1` — exact equality
        // with `t2` is lost to float rounding, closeness is not.
        assert!((reg.span_total("cache/memory") - t2).abs() < t2 * 1e-9);
        assert_eq!(reg.now(), t1 + t2);
        l.publish_obs(&mut reg);
        assert_eq!(reg.counter("cache/from_nfs"), 1);
        assert_eq!(reg.counter("cache/from_memory"), 1);
        assert_eq!(reg.counter("memcache/hits"), 1);
        assert_eq!(reg.gauge("cache/io_seconds").unwrap(), l.stats().io_seconds);
    }

    #[test]
    fn epoch_two_io_collapses() {
        // The Fig. 9 mechanism in miniature: epoch 1 pays NFS + decode,
        // epoch 2 is pure memory.
        let mut l = loader("epochs", LoaderConfig::default());
        let ids: Vec<u64> = (0..50).collect();
        for &id in &ids {
            l.load(id);
        }
        let epoch1 = l.stats().total_seconds();
        l.reset_stats();
        for &id in &ids {
            l.load(id);
        }
        let epoch2 = l.stats().total_seconds();
        assert!(
            epoch1 > 10.0 * epoch2,
            "epoch1 {epoch1} should dwarf epoch2 {epoch2}"
        );
        assert_eq!(l.stats().from_memory, 50);
    }
}
