//! In-memory key-value cache of *pre-processed* samples (the second cache
//! level of Fig. 5).
//!
//! The key is the sample index, the value is the decoded, training-ready
//! sample — so a hit skips both the I/O and the CPU decode. Capacity is
//! bounded in bytes with FIFO eviction; the paper bounds memory by sharding
//! the data set across nodes (see [`crate::sampler`]), in which case each
//! node's shard fits and eviction never triggers.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use crate::decode::Sample;
use crate::timing::StorageSpec;
use crate::SampleId;

/// Cache eviction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict in insertion order (the paper's sharded workload never
    /// revisits out of order, so FIFO suffices there).
    #[default]
    Fifo,
    /// Evict the least recently *used* entry (for globally shuffled access
    /// patterns that exceed capacity).
    Lru,
}

/// Hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl MemStats {
    /// Publishes the counters into an observability registry
    /// (`memcache/hits`, `memcache/misses`, `memcache/evictions`).
    pub fn publish(&self, reg: &mut cloudtrain_obs::Registry) {
        reg.counter_add("memcache/hits", self.hits);
        reg.counter_add("memcache/misses", self.misses);
        reg.counter_add("memcache/evictions", self.evictions);
    }
}

/// Stale queue entries tolerated beyond the compaction bound before the
/// eviction queue is rebuilt in place (see [`MemoryCache::queue_len`]).
const QUEUE_SLACK: usize = 16;

/// Bounded in-memory store of decoded samples.
///
/// Both maps are `BTreeMap`s: lookups here are nowhere near the hot path
/// (virtual access time dominates), and ordered keys make any future
/// iteration over the cache deterministic by construction.
#[derive(Debug)]
pub struct MemoryCache {
    map: BTreeMap<SampleId, Arc<Sample>>,
    /// Eviction queue of `(id, seq)`; stale entries (seq no longer the
    /// id's latest) are skipped lazily on eviction.
    order: VecDeque<(SampleId, u64)>,
    latest_seq: BTreeMap<SampleId, u64>,
    next_seq: u64,
    policy: EvictionPolicy,
    used_bytes: usize,
    capacity_bytes: usize,
    spec: StorageSpec,
    stats: MemStats,
}

impl MemoryCache {
    /// Creates a FIFO cache bounded to `capacity_bytes` of sample payload.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_policy(capacity_bytes, EvictionPolicy::Fifo)
    }

    /// Creates a cache with an explicit eviction policy.
    pub fn with_policy(capacity_bytes: usize, policy: EvictionPolicy) -> Self {
        Self {
            map: BTreeMap::new(),
            order: VecDeque::new(),
            latest_seq: BTreeMap::new(),
            next_seq: 0,
            policy,
            used_bytes: 0,
            capacity_bytes,
            spec: StorageSpec::memory(),
            stats: MemStats::default(),
        }
    }

    fn touch(&mut self, id: SampleId) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.latest_seq.insert(id, seq);
        self.order.push_back((id, seq));
        // Under LRU every hit pushes a fresh queue entry, so a hot working
        // set that never evicts would grow the queue without bound. Once the
        // stale fraction dominates, rebuild the queue from the live entries
        // (amortised O(1) per touch: a compaction halves the length, so at
        // least half the queue must be re-pushed before the next one).
        if self.order.len() > 2 * self.latest_seq.len() + QUEUE_SLACK {
            let latest = &self.latest_seq;
            self.order.retain(|(v, s)| latest.get(v) == Some(s));
        }
    }

    /// Current payload bytes held.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of cached samples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Current eviction-queue length, stale entries included. Bounded by
    /// `2 * len() + QUEUE_SLACK + 2` after every operation: the queue is
    /// compacted as soon as stale entries outnumber live ones beyond the
    /// slack, so LRU hit storms cannot grow it without bound.
    pub fn queue_len(&self) -> usize {
        self.order.len()
    }

    /// Looks up a sample, returning it and the virtual access time.
    pub fn get(&mut self, id: SampleId) -> Option<(Arc<Sample>, f64)> {
        match self.map.get(&id) {
            Some(s) => {
                self.stats.hits += 1;
                let t = self.spec.access_time(s.mem_bytes());
                let s = Arc::clone(s);
                if self.policy == EvictionPolicy::Lru {
                    self.touch(id);
                }
                Some((s, t))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a sample, evicting FIFO as needed. A sample larger than the
    /// whole capacity is not cached.
    pub fn put(&mut self, id: SampleId, sample: Arc<Sample>) {
        let bytes = sample.mem_bytes();
        if bytes > self.capacity_bytes {
            return;
        }
        if self.map.contains_key(&id) {
            // A re-put is a use: refresh recency under LRU (the stored
            // sample and the byte accounting stay as they are). FIFO keeps
            // strict insertion order.
            if self.policy == EvictionPolicy::Lru {
                self.touch(id);
            }
            return;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let Some((victim, seq)) = self.order.pop_front() else {
                break;
            };
            // Skip stale queue entries (the id was touched more recently).
            if self.latest_seq.get(&victim) != Some(&seq) {
                continue;
            }
            if let Some(old) = self.map.remove(&victim) {
                self.used_bytes -= old.mem_bytes();
                self.latest_seq.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.used_bytes += bytes;
        self.touch(id);
        self.map.insert(id, sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(elems: usize) -> Arc<Sample> {
        Arc::new(Sample {
            data: vec![0.5; elems],
            label: 0,
        })
    }

    #[test]
    fn hit_after_put() {
        let mut c = MemoryCache::new(1 << 20);
        assert!(c.get(1).is_none());
        c.put(1, sample(10));
        let (s, t) = c.get(1).unwrap();
        assert_eq!(s.data.len(), 10);
        assert!(t > 0.0 && t < 1e-5);
        assert_eq!(
            c.stats(),
            MemStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        // Each sample is 48 bytes (10 f32 + 8); capacity fits two.
        let bytes = sample(10).mem_bytes();
        let mut c = MemoryCache::new(2 * bytes);
        c.put(1, sample(10));
        c.put(2, sample(10));
        c.put(3, sample(10));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none(), "oldest entry should be evicted");
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.used_bytes() <= 2 * bytes);
    }

    #[test]
    fn lru_keeps_recently_used_entries() {
        let bytes = sample(10).mem_bytes();
        let mut c = MemoryCache::with_policy(2 * bytes, EvictionPolicy::Lru);
        c.put(1, sample(10));
        c.put(2, sample(10));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1).is_some());
        c.put(3, sample(10));
        assert!(c.get(1).is_some(), "recently used entry evicted");
        assert!(c.get(2).is_none(), "LRU victim survived");
        assert!(c.get(3).is_some());
        assert!(c.used_bytes() <= 2 * bytes);
    }

    #[test]
    fn fifo_ignores_recency() {
        let bytes = sample(10).mem_bytes();
        let mut c = MemoryCache::with_policy(2 * bytes, EvictionPolicy::Fifo);
        c.put(1, sample(10));
        c.put(2, sample(10));
        assert!(c.get(1).is_some());
        c.put(3, sample(10));
        // FIFO evicts 1 despite the recent touch.
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
    }

    #[test]
    fn lru_scan_loop_does_not_leak_queue_entries() {
        let bytes = sample(10).mem_bytes();
        let mut c = MemoryCache::with_policy(3 * bytes, EvictionPolicy::Lru);
        for round in 0..100u64 {
            for id in 0..3 {
                if c.get(id).is_none() {
                    c.put(id, sample(10));
                }
                let _ = round;
            }
        }
        // All three stay resident; nothing was evicted.
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn oversized_sample_is_not_cached() {
        let mut c = MemoryCache::new(16);
        c.put(1, sample(100));
        assert!(c.is_empty());
    }

    #[test]
    fn duplicate_put_is_ignored() {
        let mut c = MemoryCache::new(1 << 20);
        c.put(1, sample(10));
        c.put(1, sample(10));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), sample(10).mem_bytes());
    }

    #[test]
    fn lru_re_put_refreshes_recency() {
        let bytes = sample(10).mem_bytes();
        let mut c = MemoryCache::with_policy(2 * bytes, EvictionPolicy::Lru);
        c.put(1, sample(10));
        c.put(2, sample(10));
        // Re-putting 1 must count as a use: 2 becomes the LRU victim.
        c.put(1, sample(10));
        assert_eq!(c.len(), 2, "re-put must not duplicate the entry");
        c.put(3, sample(10));
        assert!(c.get(1).is_some(), "re-put entry was evicted");
        assert!(c.get(2).is_none(), "LRU victim survived");
        assert!(c.get(3).is_some());
        assert!(c.used_bytes() <= 2 * bytes);
    }

    #[test]
    fn lru_hit_storm_keeps_queue_bounded() {
        // A hot working set that never evicts: every hit pushes a queue
        // entry, so without compaction the queue grows by one per get.
        let bytes = sample(10).mem_bytes();
        let mut c = MemoryCache::with_policy(8 * bytes, EvictionPolicy::Lru);
        for id in 0..8 {
            c.put(id, sample(10));
        }
        for round in 0..10_000u64 {
            let id = round % 8;
            assert!(c.get(id).is_some());
            assert!(
                c.queue_len() <= 2 * c.len() + QUEUE_SLACK + 2,
                "round {round}: queue grew to {} for {} live entries",
                c.queue_len(),
                c.len()
            );
        }
        assert_eq!(c.stats().evictions, 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn queue_stays_bounded_under_mixed_workload(
                ops in prop::collection::vec((0u64..32, any::<bool>()), 1..400),
                lru in any::<bool>(),
            ) {
                let bytes = sample(10).mem_bytes();
                let policy = if lru { EvictionPolicy::Lru } else { EvictionPolicy::Fifo };
                let mut c = MemoryCache::with_policy(6 * bytes, policy);
                for (id, is_put) in ops {
                    if is_put {
                        c.put(id, sample(10));
                    } else {
                        let _ = c.get(id);
                    }
                    prop_assert!(c.queue_len() <= 2 * c.len() + QUEUE_SLACK + 2);
                    prop_assert!(c.used_bytes() <= 6 * bytes);
                }
            }
        }
    }

    #[test]
    fn stats_publish_into_registry() {
        let mut c = MemoryCache::new(1 << 20);
        let _ = c.get(1);
        c.put(1, sample(10));
        let _ = c.get(1);
        let mut reg = cloudtrain_obs::Registry::new();
        c.stats().publish(&mut reg);
        assert_eq!(reg.counter("memcache/hits"), 1);
        assert_eq!(reg.counter("memcache/misses"), 1);
        assert_eq!(reg.counter("memcache/evictions"), 0);
    }
}
