//! In-memory key-value cache of *pre-processed* samples (the second cache
//! level of Fig. 5).
//!
//! The key is the sample index, the value is the decoded, training-ready
//! sample — so a hit skips both the I/O and the CPU decode. Capacity is
//! bounded in bytes with FIFO eviction; the paper bounds memory by sharding
//! the data set across nodes (see [`crate::sampler`]), in which case each
//! node's shard fits and eviction never triggers.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::decode::Sample;
use crate::timing::StorageSpec;
use crate::SampleId;

/// Cache eviction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict in insertion order (the paper's sharded workload never
    /// revisits out of order, so FIFO suffices there).
    #[default]
    Fifo,
    /// Evict the least recently *used* entry (for globally shuffled access
    /// patterns that exceed capacity).
    Lru,
}

/// Hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

/// Bounded in-memory store of decoded samples.
#[derive(Debug)]
pub struct MemoryCache {
    map: HashMap<SampleId, Arc<Sample>>,
    /// Eviction queue of `(id, seq)`; stale entries (seq no longer the
    /// id's latest) are skipped lazily on eviction.
    order: VecDeque<(SampleId, u64)>,
    latest_seq: HashMap<SampleId, u64>,
    next_seq: u64,
    policy: EvictionPolicy,
    used_bytes: usize,
    capacity_bytes: usize,
    spec: StorageSpec,
    stats: MemStats,
}

impl MemoryCache {
    /// Creates a FIFO cache bounded to `capacity_bytes` of sample payload.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_policy(capacity_bytes, EvictionPolicy::Fifo)
    }

    /// Creates a cache with an explicit eviction policy.
    pub fn with_policy(capacity_bytes: usize, policy: EvictionPolicy) -> Self {
        Self {
            map: HashMap::new(),
            order: VecDeque::new(),
            latest_seq: HashMap::new(),
            next_seq: 0,
            policy,
            used_bytes: 0,
            capacity_bytes,
            spec: StorageSpec::memory(),
            stats: MemStats::default(),
        }
    }

    fn touch(&mut self, id: SampleId) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.latest_seq.insert(id, seq);
        self.order.push_back((id, seq));
    }

    /// Current payload bytes held.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of cached samples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Looks up a sample, returning it and the virtual access time.
    pub fn get(&mut self, id: SampleId) -> Option<(Arc<Sample>, f64)> {
        match self.map.get(&id) {
            Some(s) => {
                self.stats.hits += 1;
                let t = self.spec.access_time(s.mem_bytes());
                let s = Arc::clone(s);
                if self.policy == EvictionPolicy::Lru {
                    self.touch(id);
                }
                Some((s, t))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a sample, evicting FIFO as needed. A sample larger than the
    /// whole capacity is not cached.
    pub fn put(&mut self, id: SampleId, sample: Arc<Sample>) {
        let bytes = sample.mem_bytes();
        if bytes > self.capacity_bytes {
            return;
        }
        if self.map.contains_key(&id) {
            return;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let Some((victim, seq)) = self.order.pop_front() else {
                break;
            };
            // Skip stale queue entries (the id was touched more recently).
            if self.latest_seq.get(&victim) != Some(&seq) {
                continue;
            }
            if let Some(old) = self.map.remove(&victim) {
                self.used_bytes -= old.mem_bytes();
                self.latest_seq.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.used_bytes += bytes;
        self.touch(id);
        self.map.insert(id, sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(elems: usize) -> Arc<Sample> {
        Arc::new(Sample {
            data: vec![0.5; elems],
            label: 0,
        })
    }

    #[test]
    fn hit_after_put() {
        let mut c = MemoryCache::new(1 << 20);
        assert!(c.get(1).is_none());
        c.put(1, sample(10));
        let (s, t) = c.get(1).unwrap();
        assert_eq!(s.data.len(), 10);
        assert!(t > 0.0 && t < 1e-5);
        assert_eq!(
            c.stats(),
            MemStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        // Each sample is 48 bytes (10 f32 + 8); capacity fits two.
        let bytes = sample(10).mem_bytes();
        let mut c = MemoryCache::new(2 * bytes);
        c.put(1, sample(10));
        c.put(2, sample(10));
        c.put(3, sample(10));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none(), "oldest entry should be evicted");
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.used_bytes() <= 2 * bytes);
    }

    #[test]
    fn lru_keeps_recently_used_entries() {
        let bytes = sample(10).mem_bytes();
        let mut c = MemoryCache::with_policy(2 * bytes, EvictionPolicy::Lru);
        c.put(1, sample(10));
        c.put(2, sample(10));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1).is_some());
        c.put(3, sample(10));
        assert!(c.get(1).is_some(), "recently used entry evicted");
        assert!(c.get(2).is_none(), "LRU victim survived");
        assert!(c.get(3).is_some());
        assert!(c.used_bytes() <= 2 * bytes);
    }

    #[test]
    fn fifo_ignores_recency() {
        let bytes = sample(10).mem_bytes();
        let mut c = MemoryCache::with_policy(2 * bytes, EvictionPolicy::Fifo);
        c.put(1, sample(10));
        c.put(2, sample(10));
        assert!(c.get(1).is_some());
        c.put(3, sample(10));
        // FIFO evicts 1 despite the recent touch.
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
    }

    #[test]
    fn lru_scan_loop_does_not_leak_queue_entries() {
        let bytes = sample(10).mem_bytes();
        let mut c = MemoryCache::with_policy(3 * bytes, EvictionPolicy::Lru);
        for round in 0..100u64 {
            for id in 0..3 {
                if c.get(id).is_none() {
                    c.put(id, sample(10));
                }
                let _ = round;
            }
        }
        // All three stay resident; nothing was evicted.
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn oversized_sample_is_not_cached() {
        let mut c = MemoryCache::new(16);
        c.put(1, sample(100));
        assert!(c.is_empty());
    }

    #[test]
    fn duplicate_put_is_ignored() {
        let mut c = MemoryCache::new(1 << 20);
        c.put(1, sample(10));
        c.put(1, sample(10));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), sample(10).mem_bytes());
    }
}
