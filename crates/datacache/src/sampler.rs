//! Sharded, seeded epoch sampling.
//!
//! To bound per-node memory, the paper splits the data set into one part
//! per node and each node's workers only ever read their own part — that is
//! what lets the in-memory cache hold a node's entire working set from the
//! second epoch onward. Within a shard, order is reshuffled every epoch
//! from a deterministic (seed, epoch) pair so that all workers agree on the
//! permutation without communication.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::SampleId;

/// Deterministic sharded sampler over `dataset_len` samples.
#[derive(Debug, Clone)]
pub struct ShardedSampler {
    dataset_len: u64,
    nodes: u64,
    node: u64,
    seed: u64,
}

impl ShardedSampler {
    /// Creates the sampler for `node` of `nodes` over a data set of
    /// `dataset_len` samples.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or `node >= nodes`.
    pub fn new(dataset_len: u64, nodes: u64, node: u64, seed: u64) -> Self {
        assert!(nodes > 0, "ShardedSampler: need at least one node");
        assert!(node < nodes, "ShardedSampler: node {node} out of {nodes}");
        Self {
            dataset_len,
            nodes,
            node,
            seed,
        }
    }

    /// The sample ids of this node's shard (round-robin assignment, so
    /// shard sizes differ by at most one).
    pub fn shard(&self) -> Vec<SampleId> {
        (0..self.dataset_len)
            .filter(|id| id % self.nodes == self.node)
            .collect()
    }

    /// Number of samples in this node's shard.
    pub fn shard_len(&self) -> u64 {
        self.dataset_len / self.nodes + u64::from(self.dataset_len % self.nodes > self.node)
    }

    /// The shard, shuffled for the given epoch (Fisher–Yates with a
    /// (seed, epoch)-derived RNG).
    pub fn epoch_order(&self, epoch: u64) -> Vec<SampleId> {
        let mut ids = self.shard();
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.node,
        );
        for i in (1..ids.len()).rev() {
            let j = rng.random_range(0..=i);
            ids.swap(i, j);
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_the_dataset() {
        let n = 4;
        let len = 103;
        let mut seen = vec![false; len as usize];
        for node in 0..n {
            let s = ShardedSampler::new(len, n, node, 7);
            assert_eq!(s.shard().len() as u64, s.shard_len());
            for id in s.shard() {
                assert!(!seen[id as usize]);
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn epoch_order_is_a_permutation_of_the_shard() {
        let s = ShardedSampler::new(100, 3, 1, 42);
        let mut order = s.epoch_order(5);
        let mut shard = s.shard();
        order.sort_unstable();
        shard.sort_unstable();
        assert_eq!(order, shard);
    }

    #[test]
    fn epochs_differ_but_are_reproducible() {
        let s = ShardedSampler::new(1000, 2, 0, 9);
        assert_eq!(s.epoch_order(1), s.epoch_order(1));
        assert_ne!(s.epoch_order(1), s.epoch_order(2));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn bad_node_panics() {
        ShardedSampler::new(10, 2, 2, 0);
    }
}
