//! Sharded, seeded epoch sampling.
//!
//! To bound per-node memory, the paper splits the data set into one part
//! per node and each node's workers only ever read their own part — that is
//! what lets the in-memory cache hold a node's entire working set from the
//! second epoch onward. Within a shard, order is reshuffled every epoch
//! from a deterministic (seed, epoch) pair so that all workers agree on the
//! permutation without communication.

use cloudtrain_elastic::HashRing;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::SampleId;

/// Deterministic sharded sampler over `dataset_len` samples.
#[derive(Debug, Clone)]
pub struct ShardedSampler {
    dataset_len: u64,
    nodes: u64,
    node: u64,
    seed: u64,
}

impl ShardedSampler {
    /// Creates the sampler for `node` of `nodes` over a data set of
    /// `dataset_len` samples.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or `node >= nodes`.
    pub fn new(dataset_len: u64, nodes: u64, node: u64, seed: u64) -> Self {
        assert!(nodes > 0, "ShardedSampler: need at least one node");
        assert!(node < nodes, "ShardedSampler: node {node} out of {nodes}");
        Self {
            dataset_len,
            nodes,
            node,
            seed,
        }
    }

    /// The sample ids of this node's shard (round-robin assignment, so
    /// shard sizes differ by at most one).
    pub fn shard(&self) -> Vec<SampleId> {
        (0..self.dataset_len)
            .filter(|id| id % self.nodes == self.node)
            .collect()
    }

    /// Number of samples in this node's shard.
    pub fn shard_len(&self) -> u64 {
        self.dataset_len / self.nodes + u64::from(self.dataset_len % self.nodes > self.node)
    }

    /// The shard, shuffled for the given epoch (Fisher–Yates with a
    /// (seed, epoch)-derived RNG).
    pub fn epoch_order(&self, epoch: u64) -> Vec<SampleId> {
        let mut ids = self.shard();
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.node,
        );
        for i in (1..ids.len()).rev() {
            let j = rng.random_range(0..=i);
            ids.swap(i, j);
        }
        ids
    }
}

/// Deterministic sampler over a consistent-hash shard: the elastic twin
/// of [`ShardedSampler`]. Where the round-robin shard is rewritten
/// wholesale by any change in node count, the ring shard survives
/// membership churn — after [`Self::reshard`], a surviving node keeps
/// every sample the new ring still assigns to it (<5% of the data set
/// moves per single topology change on gauntlet-sized clusters).
#[derive(Debug, Clone)]
pub struct RingSampler {
    dataset_len: u64,
    ring: HashRing,
    node: usize,
    seed: u64,
}

impl RingSampler {
    /// Creates the sampler for `node` over a data set of `dataset_len`
    /// samples whose ownership the ring decides.
    ///
    /// # Panics
    /// Panics if `node` is not a ring member.
    pub fn new(dataset_len: u64, ring: HashRing, node: usize, seed: u64) -> Self {
        assert!(
            ring.contains(node),
            "RingSampler: node {node} is not a ring member"
        );
        Self {
            dataset_len,
            ring,
            node,
            seed,
        }
    }

    /// The sample ids the ring assigns to this node, ascending.
    pub fn shard(&self) -> Vec<SampleId> {
        (0..self.dataset_len)
            .filter(|&id| self.ring.owner(id) == Some(self.node))
            .collect()
    }

    /// Number of samples in this node's shard.
    pub fn shard_len(&self) -> u64 {
        self.shard().len() as u64
    }

    /// The shard, shuffled for the given epoch with the same
    /// (seed, epoch, node)-derived Fisher–Yates as [`ShardedSampler`] —
    /// all workers agree on the permutation without communication.
    pub fn epoch_order(&self, epoch: u64) -> Vec<SampleId> {
        let mut ids = self.shard();
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.node as u64,
        );
        for i in (1..ids.len()).rev() {
            let j = rng.random_range(0..=i);
            ids.swap(i, j);
        }
        ids
    }

    /// Adopts a new ring after a membership change, returning how many
    /// samples entered or left this node's shard.
    ///
    /// # Panics
    /// Panics if this node is not a member of the new ring.
    pub fn reshard(&mut self, ring: HashRing) -> u64 {
        assert!(
            ring.contains(self.node),
            "RingSampler: node {} evicted by reshard",
            self.node
        );
        let before = self.shard();
        self.ring = ring;
        let after = self.shard();
        let mut moved = 0u64;
        let (mut i, mut j) = (0usize, 0usize);
        // Both shards are ascending: count the symmetric difference.
        while i < before.len() || j < after.len() {
            match (before.get(i), after.get(j)) {
                (Some(a), Some(b)) if a == b => {
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a < b => {
                    moved += 1;
                    i += 1;
                }
                (Some(_), Some(_)) | (None, Some(_)) => {
                    moved += 1;
                    j += 1;
                }
                (Some(_), None) => {
                    moved += 1;
                    i += 1;
                }
                (None, None) => break,
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_the_dataset() {
        let n = 4;
        let len = 103;
        let mut seen = vec![false; len as usize];
        for node in 0..n {
            let s = ShardedSampler::new(len, n, node, 7);
            assert_eq!(s.shard().len() as u64, s.shard_len());
            for id in s.shard() {
                assert!(!seen[id as usize]);
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn epoch_order_is_a_permutation_of_the_shard() {
        let s = ShardedSampler::new(100, 3, 1, 42);
        let mut order = s.epoch_order(5);
        let mut shard = s.shard();
        order.sort_unstable();
        shard.sort_unstable();
        assert_eq!(order, shard);
    }

    #[test]
    fn epochs_differ_but_are_reproducible() {
        let s = ShardedSampler::new(1000, 2, 0, 9);
        assert_eq!(s.epoch_order(1), s.epoch_order(1));
        assert_ne!(s.epoch_order(1), s.epoch_order(2));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn bad_node_panics() {
        ShardedSampler::new(10, 2, 2, 0);
    }

    #[test]
    fn ring_shards_partition_the_dataset() {
        let len = 211u64;
        let members: Vec<usize> = (0..5).collect();
        let ring = HashRing::with_members(9, 64, &members);
        let mut seen = vec![false; len as usize];
        for &node in &members {
            let s = RingSampler::new(len, ring.clone(), node, 7);
            assert_eq!(s.shard().len() as u64, s.shard_len());
            for id in s.shard() {
                assert!(!seen[id as usize], "id {id} owned twice");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&v| v), "orphaned sample");
    }

    #[test]
    fn ring_epoch_order_is_a_reproducible_permutation() {
        let ring = HashRing::with_members(4, 64, &[0, 1, 2]);
        let s = RingSampler::new(300, ring, 1, 42);
        let mut order = s.epoch_order(5);
        let mut shard = s.shard();
        assert_eq!(order, s.epoch_order(5));
        assert_ne!(order, s.epoch_order(6));
        order.sort_unstable();
        shard.sort_unstable();
        assert_eq!(order, shard);
    }

    #[test]
    fn reshard_moves_a_bounded_slice_of_the_survivor_shard() {
        // 24 members, one eviction: a survivor's shard changes by well
        // under the modulo-rehash catastrophe — only ids the victim owned
        // can land here, and none of this node's ids leave.
        let len = 12_000u64;
        let members: Vec<usize> = (0..24).collect();
        let mut ring = HashRing::with_members(11, 128, &members);
        let mut s = RingSampler::new(len, ring.clone(), 3, 7);
        let before = s.shard();
        assert!(ring.evict(17));
        let moved = s.reshard(ring);
        let after = s.shard();
        // Survivor keeps everything it had (consistent-hash guarantee).
        assert!(before.iter().all(|id| after.binary_search(id).is_ok()));
        assert_eq!(moved as usize, after.len() - before.len());
        assert!(
            (moved as f64) < 0.05 * len as f64,
            "reshard moved {moved} of {len} into one survivor"
        );
    }

    #[test]
    #[should_panic(expected = "evicted by reshard")]
    fn reshard_that_evicts_self_panics() {
        let mut ring = HashRing::with_members(0, 32, &[0, 1, 2]);
        let mut s = RingSampler::new(100, ring.clone(), 2, 0);
        ring.evict(2);
        s.reshard(ring);
    }
}
