//! Cluster-cooperative memory caching.
//!
//! §4.1: "To reduce memory consumption, the full data set is split into
//! multiple parts that are separately stored on multiple nodes." Each node
//! holds the pre-processed samples of its own shard in memory; a request
//! for a sample owned by another node is served by a **peer fetch** over
//! the inter-node network — still far cheaper than going back to the NFS
//! — and only unowned/cold samples fall through to the filer.
//!
//! With the sharded sampler of [`crate::sampler`], steady-state training
//! touches only local shards; cooperative fetches cover globally shuffled
//! access patterns (e.g. validation sweeps).

use std::sync::Arc;

use cloudtrain_elastic::HashRing;

use crate::decode::{decode, Sample};
use crate::memcache::MemoryCache;
use crate::nfs::SyntheticNfs;
use crate::timing::{CpuModel, StorageSpec};
use crate::SampleId;

/// Which path served a cooperative lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterServedBy {
    /// This node's own memory shard.
    LocalMemory,
    /// Another node's memory shard, over the network.
    PeerMemory,
    /// The networked file system (then decoded and cached on the owner).
    Nfs,
}

/// Per-cluster counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Lookups served from the requesting node's shard.
    pub local_hits: u64,
    /// Lookups served from a peer node's shard.
    pub peer_hits: u64,
    /// Lookups that went to the NFS.
    pub nfs_fetches: u64,
}

impl ClusterStats {
    /// Publishes the counters into an observability registry
    /// (`cluster/local_hits`, `cluster/peer_hits`, `cluster/nfs_fetches`).
    pub fn publish(&self, reg: &mut cloudtrain_obs::Registry) {
        reg.counter_add("cluster/local_hits", self.local_hits);
        reg.counter_add("cluster/peer_hits", self.peer_hits);
        reg.counter_add("cluster/nfs_fetches", self.nfs_fetches);
    }
}

/// A cluster of node-local memory caches with ownership sharding and
/// peer fetching. Ownership is either round-robin (`owner(id) = id %
/// nodes`, [`Self::new`]) or consistent-hash ([`Self::with_ring`]), where
/// a membership change moves only `~1/m` of the sample space and the
/// cluster can [`Self::reshard`] live: survivors keep their warm caches.
#[derive(Debug)]
pub struct CacheCluster {
    shards: Vec<MemoryCache>,
    /// Stable node id behind each shard slot, ascending.
    members: Vec<usize>,
    /// Consistent-hash ownership; `None` means round-robin.
    ring: Option<HashRing>,
    mem_capacity_per_node: usize,
    nfs: SyntheticNfs,
    peer_link: StorageSpec,
    cpu: CpuModel,
    stats: ClusterStats,
}

impl CacheCluster {
    /// Creates a cluster of `nodes` shards, each bounded to
    /// `mem_capacity_per_node` bytes, over the given NFS.
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize, mem_capacity_per_node: usize, nfs: SyntheticNfs) -> Self {
        assert!(nodes > 0, "CacheCluster: need at least one node");
        Self {
            shards: (0..nodes)
                .map(|_| MemoryCache::new(mem_capacity_per_node))
                .collect(),
            members: (0..nodes).collect(),
            ring: None,
            mem_capacity_per_node,
            nfs,
            // 25GbE-class peer link: far slower than local DRAM, far
            // faster than the filer.
            peer_link: StorageSpec {
                latency: 100e-6,
                bytes_per_sec: 1.4e9,
            },
            cpu: CpuModel::default(),
            stats: ClusterStats::default(),
        }
    }

    /// Creates a cluster whose ownership follows a consistent-hash ring —
    /// one shard per ring member, addressed here by dense slot index in
    /// ascending member order (see [`Self::members`]).
    ///
    /// # Panics
    /// Panics if the ring has no members.
    pub fn with_ring(ring: HashRing, mem_capacity_per_node: usize, nfs: SyntheticNfs) -> Self {
        assert!(!ring.is_empty(), "CacheCluster: ring has no members");
        let members = ring.members();
        let mut cluster = Self::new(members.len(), mem_capacity_per_node, nfs);
        cluster.members = members;
        cluster.ring = Some(ring);
        cluster
    }

    /// Replaces the ownership ring after a membership change. Shards of
    /// surviving members carry their cached samples over untouched (the
    /// consistent-hash guarantee: no sample moves between survivors), an
    /// evicted member's cache is dropped with its node, and joiners start
    /// cold. Only samples the victim owned re-enter through the NFS.
    ///
    /// # Panics
    /// Panics if the cluster was built round-robin ([`Self::new`]) or the
    /// new ring has no members.
    pub fn reshard(&mut self, ring: HashRing) {
        assert!(
            self.ring.is_some(),
            "CacheCluster: reshard requires ring ownership"
        );
        assert!(!ring.is_empty(), "CacheCluster: ring has no members");
        let new_members = ring.members();
        let mut new_shards = Vec::with_capacity(new_members.len());
        for &m in &new_members {
            match self.members.iter().position(|&x| x == m) {
                Some(i) => {
                    new_shards.push(std::mem::replace(&mut self.shards[i], MemoryCache::new(0)))
                }
                None => new_shards.push(MemoryCache::new(self.mem_capacity_per_node)),
            }
        }
        self.shards = new_shards;
        self.members = new_members;
        self.ring = Some(ring);
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.shards.len()
    }

    /// Stable node id behind each shard slot, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The shard slot (dense index) that owns a sample.
    pub fn owner(&self, id: SampleId) -> usize {
        match &self.ring {
            Some(ring) => {
                let slot = ring
                    .owner(id)
                    .and_then(|node| self.members.binary_search(&node).ok());
                match slot {
                    Some(s) => s,
                    // The ring is non-empty (asserted at construction) and
                    // every owner is in the sorted slot list by invariant.
                    None => unreachable!("ring owner must be a member"),
                }
            }
            None => (id % self.shards.len() as u64) as usize,
        }
    }

    /// Cluster statistics so far.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Loads sample `id` on behalf of `node`, returning the sample, the
    /// serving path, and the virtual seconds charged to the requester.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn load(&mut self, node: usize, id: SampleId) -> (Arc<Sample>, ClusterServedBy, f64) {
        assert!(node < self.shards.len(), "CacheCluster: bad node {node}");
        let owner = self.owner(id);

        if let Some((sample, t)) = self.shards[owner].get(id) {
            return if owner == node {
                self.stats.local_hits += 1;
                (sample, ClusterServedBy::LocalMemory, t)
            } else {
                self.stats.peer_hits += 1;
                let t = t + self.peer_link.access_time(sample.mem_bytes());
                (sample, ClusterServedBy::PeerMemory, t)
            };
        }

        // Cold: fetch + decode, then cache on the owner.
        self.stats.nfs_fetches += 1;
        let (blob, t_nfs) = self.nfs.fetch(id);
        // lint:allow(panic_free, reason = "the blob came from this crate's own synthetic NFS generator; a malformed one is a generator bug, not input")
        let (sample, t_dec) = decode(&blob, &self.cpu).expect("synthetic blob must decode");
        let sample = Arc::new(sample);
        self.shards[owner].put(id, Arc::clone(&sample));
        let mut t = t_nfs + t_dec;
        if owner != node {
            t += self.peer_link.access_time(sample.mem_bytes());
        }
        (sample, ClusterServedBy::Nfs, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(nodes: usize) -> CacheCluster {
        CacheCluster::new(nodes, 1 << 30, SyntheticNfs::new(16 * 16 * 3, 4))
    }

    #[test]
    fn ownership_is_round_robin() {
        let c = cluster(4);
        assert_eq!(c.owner(0), 0);
        assert_eq!(c.owner(5), 1);
        assert_eq!(c.owner(7), 3);
        assert_eq!(c.nodes(), 4);
    }

    #[test]
    fn cold_then_local_then_peer() {
        let mut c = cluster(2);
        // id 0 is owned by node 0. Cold fetch by the owner:
        let (_, by, t_cold) = c.load(0, 0);
        assert_eq!(by, ClusterServedBy::Nfs);
        // Warm local hit:
        let (_, by, t_local) = c.load(0, 0);
        assert_eq!(by, ClusterServedBy::LocalMemory);
        // Warm peer hit from node 1:
        let (_, by, t_peer) = c.load(1, 0);
        assert_eq!(by, ClusterServedBy::PeerMemory);
        assert!(t_local < t_peer, "local {t_local} !< peer {t_peer}");
        assert!(t_peer < t_cold, "peer {t_peer} !< cold {t_cold}");
        assert_eq!(
            c.stats(),
            ClusterStats {
                local_hits: 1,
                peer_hits: 1,
                nfs_fetches: 1
            }
        );
    }

    #[test]
    fn samples_identical_across_paths() {
        let mut c = cluster(3);
        let (a, _, _) = c.load(2, 7);
        let (b, _, _) = c.load(0, 7);
        let (d, _, _) = c.load(1, 7);
        assert_eq!(*a, *b);
        assert_eq!(*a, *d);
    }

    #[test]
    fn sharded_epoch_is_all_local_after_warmup() {
        // Each node reads only its own shard (the sampler's contract):
        // epoch 2 must be 100% local memory.
        let mut c = cluster(4);
        let dataset = 64u64;
        for epoch in 0..2 {
            for id in 0..dataset {
                let node = c.owner(id);
                let (_, by, _) = c.load(node, id);
                if epoch == 1 {
                    assert_eq!(by, ClusterServedBy::LocalMemory, "id {id}");
                }
            }
        }
        assert_eq!(c.stats().nfs_fetches, dataset);
        assert_eq!(c.stats().local_hits, dataset);
        assert_eq!(c.stats().peer_hits, 0);
    }

    #[test]
    fn ring_ownership_matches_the_ring_and_partitions_ids() {
        let members: Vec<usize> = vec![0, 2, 5, 9];
        let ring = HashRing::with_members(7, 64, &members);
        let c = CacheCluster::with_ring(ring.clone(), 1 << 30, SyntheticNfs::new(16 * 16 * 3, 4));
        assert_eq!(c.nodes(), 4);
        assert_eq!(c.members(), &members[..]);
        for id in 0..256u64 {
            let slot = c.owner(id);
            assert_eq!(Some(members[slot]), ring.owner(id));
        }
    }

    #[test]
    fn reshard_keeps_survivor_caches_warm() {
        // Warm the whole dataset, evict one node, reshard: samples whose
        // owner survived must still be served from memory — only the
        // victim's former share goes back to the filer.
        let dataset = 128u64;
        let members: Vec<usize> = (0..8).collect();
        let mut ring = HashRing::with_members(3, 64, &members);
        let mut c =
            CacheCluster::with_ring(ring.clone(), 1 << 30, SyntheticNfs::new(16 * 16 * 3, 4));
        let owner_before: Vec<usize> = (0..dataset).map(|id| c.owner(id)).collect();
        for id in 0..dataset {
            let node = c.owner(id);
            c.load(node, id);
        }
        let warm_fetches = c.stats().nfs_fetches;
        assert_eq!(warm_fetches, dataset);

        let victim = 4usize;
        let moved: u64 = (0..dataset)
            .filter(|&id| members[owner_before[id as usize]] == victim)
            .count() as u64;
        assert!(ring.evict(victim));
        c.reshard(ring);
        assert_eq!(c.nodes(), 7);
        assert!(!c.members().contains(&victim));
        for id in 0..dataset {
            let node = c.owner(id);
            c.load(node, id);
        }
        // Exactly the victim's former share re-entered through the NFS;
        // every surviving shard stayed warm (local hits, no peer traffic
        // because each request comes from the owner).
        assert_eq!(c.stats().nfs_fetches - warm_fetches, moved);
        assert!(moved < dataset / 2, "victim owned an implausible share");
    }

    #[test]
    #[should_panic(expected = "reshard requires ring ownership")]
    fn reshard_of_round_robin_cluster_panics() {
        let mut c = cluster(4);
        c.reshard(HashRing::with_members(0, 16, &[0, 1]));
    }

    #[test]
    fn global_shuffle_uses_peer_fetches_not_nfs() {
        // After warmup, a node scanning the whole dataset hits peers for
        // the 3/4 it does not own — never the filer.
        let mut c = cluster(4);
        for id in 0..32u64 {
            let node = c.owner(id);
            c.load(node, id);
        }
        let before = c.stats().nfs_fetches;
        for id in 0..32u64 {
            c.load(0, id);
        }
        assert_eq!(c.stats().nfs_fetches, before);
        assert_eq!(c.stats().peer_hits, 24);
    }
}
