//! DataCache: multi-level caching for training-data input pipelines
//! (§4.1 of the paper, Fig. 5/9).
//!
//! On public clouds the training set lives on a networked file system whose
//! bandwidth and latency throttle every epoch, and sample decoding burns
//! CPU. The paper's fix is a two-level cache: blobs fetched from NFS are
//! kept in the node-local file system, and *pre-processed* (decoded,
//! normalised) samples are kept in an in-memory key-value store sharded
//! across nodes, so from the second epoch onward data loading is a memory
//! lookup fully overlapped with GPU compute.
//!
//! This crate reproduces the mechanism with a functional/virtual-time
//! split:
//!
//! * the cache *mechanics* are real — a deterministic synthetic NFS serves
//!   JPEG-like blobs, [`disk::DiskCache`] writes real files,
//!   [`decode::decode`] does real byte-level work, [`memcache::MemoryCache`]
//!   is a real bounded KV store, and [`pipeline::Prefetcher`] overlaps
//!   loading with compute on a real background thread;
//! * the *timing* of each tier is virtual — every access returns the
//!   simulated seconds it would cost on the paper's hardware
//!   ([`timing::StorageSpec`], Table 1-class CFS/SSD/DRAM numbers), so
//!   Fig. 9 is reproducible on any machine.
//!
//! [`cluster`] adds the paper's node-sharded cooperative layer: each node
//! holds one shard of the pre-processed set in memory and serves peers
//! over the (fast-enough) inter-node link instead of the filer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod decode;
pub mod disk;
pub mod loader;
pub mod memcache;
pub mod nfs;
pub mod pipeline;
pub mod sampler;
pub mod timing;

pub use loader::{CachedLoader, LoaderConfig, TierStats};
pub use nfs::SyntheticNfs;
pub use sampler::{RingSampler, ShardedSampler};
pub use timing::StorageSpec;

/// Identifier of one training sample within the data set.
pub type SampleId = u64;
