//! Node-local file-system cache (the first cache level of Fig. 5).
//!
//! Blobs fetched from NFS are written to a local directory and served from
//! there on later epochs (and later *runs* — the paper notes this makes
//! hyper-parameter sweeps over the same data cheap). Files are real;
//! access time is charged from the local-SSD spec.

use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;

use bytes::Bytes;

use crate::timing::StorageSpec;
use crate::SampleId;

/// Per-tier hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Reads served from the local cache.
    pub hits: u64,
    /// Reads that fell through to the backing store.
    pub misses: u64,
}

/// A real on-disk blob cache with virtual-time accounting.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    spec: StorageSpec,
    stats: DiskStats,
}

impl DiskCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    /// Returns any I/O error from creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            spec: StorageSpec::local_ssd(),
            stats: DiskStats::default(),
        })
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    fn path_of(&self, id: SampleId) -> PathBuf {
        self.dir.join(format!("sample_{id:016x}.bin"))
    }

    /// Returns the cached blob and its virtual read time, or `None` on miss.
    pub fn get(&mut self, id: SampleId) -> Option<(Bytes, f64)> {
        let path = self.path_of(id);
        match fs::File::open(&path) {
            Ok(mut f) => {
                let mut buf = Vec::new();
                if f.read_to_end(&mut buf).is_err() {
                    self.stats.misses += 1;
                    return None;
                }
                self.stats.hits += 1;
                let t = self.spec.access_time(buf.len());
                Some((Bytes::from(buf), t))
            }
            Err(_) => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a blob, returning the virtual write time.
    ///
    /// # Errors
    /// Returns any I/O error from the write.
    pub fn put(&mut self, id: SampleId, blob: &Bytes) -> std::io::Result<f64> {
        let path = self.path_of(id);
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(blob)?;
        }
        fs::rename(&tmp, &path)?;
        Ok(self.spec.access_time(blob.len()))
    }

    /// Removes every cached blob (e.g. between experiments).
    ///
    /// # Errors
    /// Returns any I/O error from the directory walk.
    pub fn clear(&mut self) -> std::io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().starts_with("sample_") {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cloudtrain-diskcache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn miss_then_hit_roundtrip() {
        let mut c = DiskCache::open(tmpdir("roundtrip")).unwrap();
        assert!(c.get(1).is_none());
        let blob = Bytes::from_static(b"hello blob");
        let tw = c.put(1, &blob).unwrap();
        assert!(tw > 0.0);
        let (got, tr) = c.get(1).unwrap();
        assert_eq!(got, blob);
        assert!(tr > 0.0);
        assert_eq!(c.stats(), DiskStats { hits: 1, misses: 1 });
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = DiskCache::open(tmpdir("clear")).unwrap();
        c.put(1, &Bytes::from_static(b"a")).unwrap();
        c.put(2, &Bytes::from_static(b"b")).unwrap();
        c.clear().unwrap();
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_none());
    }

    #[test]
    fn ids_do_not_collide() {
        let mut c = DiskCache::open(tmpdir("ids")).unwrap();
        c.put(0x10, &Bytes::from_static(b"x")).unwrap();
        c.put(0x1000, &Bytes::from_static(b"y")).unwrap();
        assert_eq!(c.get(0x10).unwrap().0, Bytes::from_static(b"x"));
        assert_eq!(c.get(0x1000).unwrap().0, Bytes::from_static(b"y"));
    }
}
