//! Sample decoding and augmentation (the CPU stage of the input pipeline).
//!
//! Decoding parses the synthetic blob layout of [`crate::nfs`] and converts
//! the 8-bit payload to normalised `f32` — real byte-level work whose
//! *duration* is charged from [`crate::timing::CpuModel`] (JPEG-class
//! throughput), keeping mechanics real and timing virtual.

use bytes::Bytes;

use crate::nfs::BLOB_HEADER;
use crate::timing::CpuModel;

/// A decoded, training-ready sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Normalised pixel data in `[-1, 1]`.
    pub data: Vec<f32>,
    /// Class label.
    pub label: u32,
}

impl Sample {
    /// In-memory footprint in bytes (for cache capacity accounting).
    pub fn mem_bytes(&self) -> usize {
        self.data.len() * 4 + 8
    }
}

/// Error returned for a malformed blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Decodes a blob into a sample, returning the virtual CPU seconds charged.
///
/// # Errors
/// Returns [`DecodeError`] if the header is truncated or inconsistent with
/// the payload length.
pub fn decode(blob: &Bytes, cpu: &CpuModel) -> Result<(Sample, f64), DecodeError> {
    let Some(&[p0, p1, p2, p3, l0, l1, l2, l3]) = blob.get(..BLOB_HEADER) else {
        return Err(DecodeError(format!(
            "blob of {} bytes has no header",
            blob.len()
        )));
    };
    let pixels = usize::try_from(u32::from_le_bytes([p0, p1, p2, p3]))
        .map_err(|_| DecodeError("declared pixel count exceeds the address space".into()))?;
    let label = u32::from_le_bytes([l0, l1, l2, l3]);
    let expected = BLOB_HEADER
        .checked_add(pixels)
        .ok_or_else(|| DecodeError(format!("declared pixel count {pixels} overflows")))?;
    if blob.len() != expected {
        return Err(DecodeError(format!(
            "header says {} pixels but payload has {} bytes",
            pixels,
            blob.len() - BLOB_HEADER
        )));
    }
    let data: Vec<f32> = blob[BLOB_HEADER..]
        .iter()
        .map(|&b| b as f32 / 127.5 - 1.0)
        .collect();
    let t = cpu.decode_time(blob.len());
    Ok((Sample { data, label }, t))
}

/// In-place augmentation: mirrors the sample with probability given by a
/// per-call coin derived from `flip`, then renormalises — a stand-in for
/// crop/mirror with the paper's cost profile. Returns the virtual seconds
/// charged.
pub fn augment(sample: &mut Sample, flip: bool, cpu: &CpuModel) -> f64 {
    if flip {
        sample.data.reverse();
    }

    cpu.augment_time(sample.data.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfs::synth_blob;

    #[test]
    fn decode_roundtrip() {
        let blob = synth_blob(5, 200, 3);
        let (s, t) = decode(&blob, &CpuModel::default()).unwrap();
        assert_eq!(s.data.len(), 200);
        assert!(s.label < 1000);
        assert!(s.data.iter().all(|v| (-1.0..=1.0).contains(v)));
        assert!(t > 0.0);
    }

    #[test]
    fn decode_is_deterministic() {
        let blob = synth_blob(5, 200, 3);
        let a = decode(&blob, &CpuModel::default()).unwrap().0;
        let b = decode(&blob, &CpuModel::default()).unwrap().0;
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_blob_errors() {
        let blob = Bytes::from_static(&[1, 2, 3]);
        assert!(decode(&blob, &CpuModel::default()).is_err());
        // Header inconsistent with payload.
        let mut bad = synth_blob(5, 100, 3).to_vec();
        bad.truncate(50);
        assert!(decode(&Bytes::from(bad), &CpuModel::default()).is_err());
    }

    #[test]
    fn augment_mirror_is_involutive() {
        let blob = synth_blob(5, 64, 3);
        let (mut s, _) = decode(&blob, &CpuModel::default()).unwrap();
        let orig = s.clone();
        augment(&mut s, true, &CpuModel::default());
        assert_ne!(s, orig);
        augment(&mut s, true, &CpuModel::default());
        assert_eq!(s, orig);
        let t = augment(&mut s, false, &CpuModel::default());
        assert_eq!(s, orig);
        assert!(t > 0.0);
    }

    #[test]
    fn mem_bytes_accounts_data() {
        let s = Sample {
            data: vec![0.0; 100],
            label: 1,
        };
        assert_eq!(s.mem_bytes(), 408);
    }
}
