//! A deterministic synthetic networked file system.
//!
//! Stands in for the cloud NFS (CFS) holding the training set: every sample
//! id maps to a reproducible JPEG-like blob (pseudo-random bytes behind a
//! small header), and every fetch is charged NFS-class virtual time. The
//! blob layout is what [`crate::decode`] parses, so the full read→decode→
//! cache path does real byte work.

use bytes::{BufMut, Bytes, BytesMut};

use crate::timing::StorageSpec;
use crate::SampleId;

/// Header length of a synthetic blob: pixel count (u32) + class label (u32).
pub const BLOB_HEADER: usize = 8;

/// Statistics of one blob source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NfsStats {
    /// Number of fetches served.
    pub fetches: u64,
    /// Total bytes served.
    pub bytes: u64,
}

/// Deterministic remote blob store with NFS-class virtual timing.
#[derive(Debug)]
pub struct SyntheticNfs {
    spec: StorageSpec,
    /// Decoded sample size in pixels (e.g. 96*96*3 for the DAWNBench warmup
    /// resolution).
    pixels: usize,
    /// Dataset-level seed, so different datasets produce different blobs.
    seed: u64,
    stats: NfsStats,
}

impl SyntheticNfs {
    /// Creates a store whose samples decode to `pixels` values each.
    pub fn new(pixels: usize, seed: u64) -> Self {
        Self {
            spec: StorageSpec::nfs(),
            pixels,
            seed,
            stats: NfsStats::default(),
        }
    }

    /// Overrides the storage timing (e.g. a slower shared filer).
    pub fn with_spec(mut self, spec: StorageSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Decoded sample size in pixels.
    pub fn pixels(&self) -> usize {
        self.pixels
    }

    /// Source statistics so far.
    pub fn stats(&self) -> NfsStats {
        self.stats
    }

    /// Fetches the blob for `id`, returning the bytes and the virtual
    /// seconds charged.
    pub fn fetch(&mut self, id: SampleId) -> (Bytes, f64) {
        let blob = synth_blob(id, self.pixels, self.seed);
        self.stats.fetches += 1;
        self.stats.bytes += blob.len() as u64;
        let t = self.spec.access_time(blob.len());
        (blob, t)
    }
}

/// Builds the deterministic blob for a sample: an 8-byte header (pixel
/// count, class label) followed by one "compressed" byte per pixel derived
/// from a splitmix-style hash. Compression ratio is therefore 1 byte per
/// pixel — JPEG-like for 8-bit RGB at quality ~90.
pub fn synth_blob(id: SampleId, pixels: usize, seed: u64) -> Bytes {
    let label = (hash64(id ^ seed.rotate_left(17)) % 1000) as u32;
    let mut out = BytesMut::with_capacity(BLOB_HEADER + pixels);
    out.put_u32_le(pixels as u32);
    out.put_u32_le(label);
    let mut state = hash64(id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed);
    let mut word = 0u64;
    for i in 0..pixels {
        if i % 8 == 0 {
            state = hash64(state);
            word = state;
        }
        out.put_u8((word & 0xFF) as u8);
        word >>= 8;
    }
    out.freeze()
}

/// SplitMix64 finaliser — a cheap, high-quality 64-bit mix.
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_deterministic() {
        assert_eq!(synth_blob(7, 100, 1), synth_blob(7, 100, 1));
        assert_ne!(synth_blob(7, 100, 1), synth_blob(8, 100, 1));
        assert_ne!(synth_blob(7, 100, 1), synth_blob(7, 100, 2));
    }

    #[test]
    fn blob_layout() {
        let b = synth_blob(3, 50, 0);
        assert_eq!(b.len(), BLOB_HEADER + 50);
        let pixels = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        assert_eq!(pixels, 50);
        let label = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);
        assert!(label < 1000);
    }

    #[test]
    fn fetch_charges_nfs_time_and_counts() {
        let mut nfs = SyntheticNfs::new(96 * 96 * 3, 42);
        let (blob, t) = nfs.fetch(0);
        assert_eq!(blob.len(), BLOB_HEADER + 96 * 96 * 3);
        let expect = StorageSpec::nfs().access_time(blob.len());
        assert!((t - expect).abs() < 1e-12);
        assert_eq!(nfs.stats().fetches, 1);
        assert_eq!(nfs.stats().bytes, blob.len() as u64);
    }

    #[test]
    fn pixel_bytes_look_random() {
        // Entropy check: byte histogram of a large blob should be flat-ish.
        let b = synth_blob(1, 100_000, 9);
        let mut hist = [0usize; 256];
        for &byte in &b[BLOB_HEADER..] {
            hist[byte as usize] += 1;
        }
        let expect = 100_000 / 256;
        assert!(hist.iter().all(|&c| c > expect / 2 && c < expect * 2));
    }
}
