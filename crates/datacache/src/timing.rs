//! Virtual-time cost models for the storage tiers and CPU pre-processing.
//!
//! The numbers are calibrated to the paper's environment (Table 1: CFS on
//! Tencent Cloud over the instance's shared network; node-local NVMe; DRAM)
//! and to typical single-core JPEG decode throughput. They parameterise the
//! virtual clock only — the cache mechanics run for real.

/// Latency/bandwidth model of one storage tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageSpec {
    /// Per-access latency in seconds.
    pub latency: f64,
    /// Sustained bandwidth in bytes/second.
    pub bytes_per_sec: f64,
}

impl StorageSpec {
    /// Time to read `bytes` from this tier.
    pub fn access_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bytes_per_sec
    }

    /// Cloud NFS (CFS-class): millisecond latency, ~150 MB/s per client.
    pub fn nfs() -> Self {
        Self {
            latency: 2e-3,
            bytes_per_sec: 150e6,
        }
    }

    /// Node-local NVMe SSD with OS page cache effects amortised.
    pub fn local_ssd() -> Self {
        Self {
            latency: 80e-6,
            bytes_per_sec: 1.5e9,
        }
    }

    /// In-memory KV store access.
    pub fn memory() -> Self {
        Self {
            latency: 2e-7,
            bytes_per_sec: 10e9,
        }
    }
}

/// CPU cost model for sample pre-processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Seconds per encoded byte for decode (JPEG-class: ~100 MB/s/core).
    pub decode_per_byte: f64,
    /// Seconds per decoded element for augmentation (crop/mirror/normalise).
    pub augment_per_elem: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        Self {
            decode_per_byte: 1.0 / 100e6,
            augment_per_elem: 2e-9,
        }
    }
}

impl CpuModel {
    /// Time to decode an encoded blob of `bytes`.
    pub fn decode_time(&self, bytes: usize) -> f64 {
        bytes as f64 * self.decode_per_byte
    }

    /// Time to augment a decoded sample of `elems` values.
    pub fn augment_time(&self, elems: usize) -> f64 {
        elems as f64 * self.augment_per_elem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ordering_is_physical() {
        let nfs = StorageSpec::nfs();
        let ssd = StorageSpec::local_ssd();
        let mem = StorageSpec::memory();
        for bytes in [1usize << 10, 100 << 10, 1 << 20] {
            assert!(nfs.access_time(bytes) > ssd.access_time(bytes));
            assert!(ssd.access_time(bytes) > mem.access_time(bytes));
        }
    }

    #[test]
    fn access_time_formula() {
        let s = StorageSpec {
            latency: 1e-3,
            bytes_per_sec: 1e6,
        };
        assert!((s.access_time(1_000_000) - 1.001).abs() < 1e-9);
    }

    #[test]
    fn decode_dominates_augment_for_typical_images() {
        // A 100 KB JPEG decoding to 150k pixels: decode ~1 ms, augment ~0.3 ms.
        let m = CpuModel::default();
        assert!(m.decode_time(100_000) > m.augment_time(150_000));
    }
}
