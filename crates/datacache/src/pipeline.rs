//! Prefetch pipelining: overlapping data loading with GPU compute.
//!
//! The paper's loader hides the (post-warmup) data-pipeline time behind the
//! GPU's forward/backward pass. Two pieces reproduce that:
//!
//! * [`Prefetcher`] — a real background thread that runs a
//!   [`CachedLoader`] ahead of the consumer over a bounded channel, so the
//!   mechanics of the overlap (bounded lookahead, backpressure, shutdown)
//!   are exercised for real;
//! * [`overlapped_iteration_time`] — the virtual-time composition used by
//!   the Fig. 1/9 harnesses: with pipelining, one iteration costs
//!   `max(io, compute)` plus whichever warmup remainder cannot be hidden.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver};

use crate::decode::Sample;
use crate::loader::CachedLoader;
use crate::SampleId;

/// One prefetched item: the sample and the virtual seconds its load cost.
#[derive(Debug)]
pub struct Prefetched {
    /// The sample id.
    pub id: SampleId,
    /// The loaded sample.
    pub sample: Arc<Sample>,
    /// Virtual data-pipeline seconds for this sample.
    pub load_seconds: f64,
}

/// Background prefetching wrapper around a [`CachedLoader`].
///
/// Loads the given id sequence on a worker thread, `depth` items ahead of
/// the consumer. Dropping the prefetcher (or consuming it fully) joins the
/// worker; the loader is returned by [`Prefetcher::finish`] so its caches
/// and statistics survive across epochs.
#[derive(Debug)]
pub struct Prefetcher {
    rx: Receiver<Prefetched>,
    handle: Option<JoinHandle<CachedLoader>>,
}

impl Prefetcher {
    /// Starts prefetching `ids` through `loader`, `depth` items ahead.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn start(loader: CachedLoader, ids: Vec<SampleId>, depth: usize) -> Self {
        assert!(depth > 0, "Prefetcher: depth must be positive");
        let (tx, rx) = bounded(depth);
        // lint:allow(ambient, reason = "the single prefetch worker produces an in-order id stream; consumer order is the deterministic channel order")
        let handle = std::thread::spawn(move || {
            let mut loader = loader;
            for id in ids {
                let (sample, _, t) = loader.load(id);
                let item = Prefetched {
                    id,
                    sample,
                    load_seconds: t,
                };
                if tx.send(item).is_err() {
                    break; // consumer hung up
                }
            }
            loader
        });
        Self {
            rx,
            handle: Some(handle),
        }
    }

    /// Receives the next prefetched sample, or `None` when the sequence is
    /// exhausted.
    #[allow(clippy::should_implement_trait)] // blocking recv, not an Iterator
    pub fn next(&mut self) -> Option<Prefetched> {
        self.rx.recv().ok()
    }

    /// Drains the worker and returns the loader (with its caches intact).
    ///
    /// # Panics
    /// Panics if the worker thread panicked.
    pub fn finish(mut self) -> CachedLoader {
        // Dropping the receiver unblocks a worker stuck on a full channel.
        let (_, dead_rx) = bounded(1);
        self.rx = dead_rx;
        self.handle
            .take()
            // lint:allow(panic_free, reason = "finish consumes self, so the handle is always present; documented in the Panics section")
            .expect("finish called twice")
            .join()
            // lint:allow(panic_free, reason = "propagating a worker panic to the caller is the documented contract")
            .expect("prefetch worker panicked")
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let (_, dead_rx) = bounded(1);
            self.rx = dead_rx;
            let _ = h.join();
        }
    }
}

/// Virtual time of one training iteration when the data pipeline is
/// overlapped with compute: the pipeline contributes only the part that
/// compute cannot hide.
pub fn overlapped_iteration_time(pipeline_seconds: f64, compute_seconds: f64) -> f64 {
    compute_seconds + (pipeline_seconds - compute_seconds).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::LoaderConfig;
    use crate::nfs::SyntheticNfs;

    fn loader() -> CachedLoader {
        let cfg = LoaderConfig {
            use_disk: false,
            ..LoaderConfig::default()
        };
        CachedLoader::new(SyntheticNfs::new(32 * 32 * 3, 5), None, cfg)
    }

    #[test]
    fn prefetcher_yields_all_samples_in_order() {
        let ids: Vec<u64> = (0..20).collect();
        let mut p = Prefetcher::start(loader(), ids.clone(), 4);
        let mut got = Vec::new();
        while let Some(item) = p.next() {
            assert!(item.load_seconds > 0.0);
            got.push(item.id);
        }
        assert_eq!(got, ids);
    }

    #[test]
    fn finish_returns_loader_with_warm_cache() {
        let ids: Vec<u64> = (0..10).collect();
        let mut p = Prefetcher::start(loader(), ids.clone(), 2);
        while p.next().is_some() {}
        let mut l = p.finish();
        assert_eq!(l.stats().from_nfs, 10);
        // Second epoch through the same loader hits memory.
        let (_, by, _) = l.load(0);
        assert_eq!(by, crate::loader::ServedBy::Memory);
    }

    #[test]
    fn early_drop_does_not_deadlock() {
        let ids: Vec<u64> = (0..100).collect();
        let mut p = Prefetcher::start(loader(), ids, 2);
        let _ = p.next();
        drop(p); // worker blocked on the bounded channel must unblock
    }

    #[test]
    fn overlap_math() {
        assert_eq!(overlapped_iteration_time(2.0, 5.0), 5.0);
        assert_eq!(overlapped_iteration_time(5.0, 2.0), 5.0);
        assert_eq!(overlapped_iteration_time(3.0, 3.0), 3.0);
        assert_eq!(overlapped_iteration_time(0.0, 1.0), 1.0);
    }
}
