//! Property-based tests for the data-cache subsystem.

use cloudtrain_datacache::decode::decode;
use cloudtrain_datacache::loader::{CachedLoader, LoaderConfig, ServedBy};
use cloudtrain_datacache::memcache::{EvictionPolicy, MemoryCache};
use cloudtrain_datacache::nfs::{synth_blob, SyntheticNfs};
use cloudtrain_datacache::sampler::ShardedSampler;
use cloudtrain_datacache::timing::CpuModel;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every blob decodes, and the decode is a pure function of the blob.
    #[test]
    fn decode_total_and_pure(id in 0u64..100_000, pixels in 1usize..5_000, seed in 0u64..100) {
        let blob = synth_blob(id, pixels, seed);
        let cpu = CpuModel::default();
        let (a, ta) = decode(&blob, &cpu).unwrap();
        let (b, tb) = decode(&blob, &cpu).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(ta, tb);
        prop_assert_eq!(a.data.len(), pixels);
        prop_assert!(a.data.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    /// Sharded sampling is a partition for any (len, nodes) and every
    /// epoch order is a permutation of the shard.
    #[test]
    fn sampler_partitions_and_permutes(
        len in 1u64..500,
        nodes in 1u64..17,
        epoch in 0u64..50,
        seed in 0u64..100,
    ) {
        let mut seen = vec![false; len as usize];
        for node in 0..nodes {
            let s = ShardedSampler::new(len, nodes, node, seed);
            let mut order = s.epoch_order(epoch);
            for &id in &order {
                prop_assert!(!seen[id as usize], "duplicate id {id}");
                seen[id as usize] = true;
            }
            order.sort_unstable();
            let mut shard = s.shard();
            shard.sort_unstable();
            prop_assert_eq!(order, shard);
        }
        prop_assert!(seen.iter().all(|&v| v));
    }

    /// Memory cache never exceeds capacity and a hit always returns what
    /// was inserted, under an arbitrary put/get workload, both policies.
    #[test]
    fn memcache_respects_capacity(
        ops in prop::collection::vec((0u64..20, any::<bool>()), 1..100),
        lru in any::<bool>(),
    ) {
        let sample = |id: u64| {
            Arc::new(cloudtrain_datacache::decode::Sample {
                data: vec![id as f32; 10],
                label: id as u32,
            })
        };
        let bytes = sample(0).mem_bytes();
        let policy = if lru { EvictionPolicy::Lru } else { EvictionPolicy::Fifo };
        let mut c = MemoryCache::with_policy(3 * bytes, policy);
        for (id, is_put) in ops {
            if is_put {
                c.put(id, sample(id));
            } else if let Some((s, _)) = c.get(id) {
                prop_assert_eq!(s.label, id as u32);
            }
            prop_assert!(c.used_bytes() <= 3 * bytes);
            prop_assert!(c.len() <= 3);
        }
    }

    /// The multi-level loader always serves the same sample bytes no
    /// matter which tier answered, and memory-tier hit rate reaches 100%
    /// for a working set within capacity.
    #[test]
    fn loader_consistency(working_set in 1u64..40, seed in 0u64..50) {
        let cfg = LoaderConfig {
            use_disk: false,
            ..LoaderConfig::default()
        };
        let mut loader = CachedLoader::new(SyntheticNfs::new(12 * 12 * 3, seed), None, cfg);
        let mut first: Vec<Arc<cloudtrain_datacache::decode::Sample>> = Vec::new();
        for id in 0..working_set {
            first.push(loader.load(id).0);
        }
        for id in 0..working_set {
            let (s, by, _) = loader.load(id);
            prop_assert_eq!(&*s, &*first[id as usize]);
            prop_assert_eq!(by, ServedBy::Memory);
        }
    }
}
