//! Intraprocedural dataflow rules: `cast_flow` and `float_determinism`.
//!
//! `cast_flow` extends `checked_decode`'s length-arithmetic discipline to
//! the whole workspace: a length-derived value that goes through a lossy
//! `as` integer cast (optionally with unchecked `+`/`*`) is *tainted*,
//! and a tainted value reaching an allocation or indexing sink
//! (`Vec::with_capacity`, `.reserve`, `vec![_; n]`, `buf[x]`) is a
//! finding — a huge or crafted length truncates at the cast and the sink
//! then allocates or indexes on the wrong number. Guarded flows
//! (`min`/`clamp`/`checked_*`/`try_from`/`saturating_*`/`div_ceil`) are
//! clean, as are decode-path functions already owned by `checked_decode`.
//!
//! `float_determinism` flags order-sensitive `f32` reduction loops
//! (`let mut acc = 0.0; ... acc += ...` and `.sum::<f32>()`) in the
//! kernel crates outside the sanctioned fixed-shape reductions — any body
//! that derives its traversal from `REDUCE_BLOCK` or the SIMD `LANES`
//! constant is sanctioned, because those kernels pin the reduction tree
//! shape byte-stably regardless of caller slicing.

use std::collections::BTreeSet;

use crate::lexer::{is_ident, is_punct, Tok, Token};
use crate::rules::is_lengthish;
use crate::symbols::SymbolTable;
use crate::{FileUnit, Finding};

/// Integer types an `as` cast can truncate into.
const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64",
];

/// Guard call names that sanitise a length before a sink.
fn is_guard(name: &str) -> bool {
    name == "min"
        || name == "clamp"
        || name == "try_from"
        || name == "div_ceil"
        || name.starts_with("checked_")
        || name.starts_with("saturating_")
}

/// Whether the inclusive token range holds a lossy `as <int>` cast.
fn has_int_cast(tokens: &[Token], range: std::ops::Range<usize>) -> bool {
    range.clone().any(|i| {
        is_ident(&tokens[i], "as")
            && matches!(tokens.get(i + 1), Some(n) if matches!(&n.tok, Tok::Ident(t) if INT_TYPES.contains(&t.as_str())))
    })
}

/// Like [`has_int_cast`] but only at bracket depth 0 of the range: a cast
/// buried inside a call's argument list produces the *callee's* return
/// value, not the cast value, so it must not taint the binding.
fn has_top_level_int_cast(tokens: &[Token], range: std::ops::Range<usize>) -> bool {
    let mut depth = 0i32;
    for i in range {
        match tokens[i].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            _ => {}
        }
        if depth == 0
            && is_ident(&tokens[i], "as")
            && matches!(tokens.get(i + 1), Some(n) if matches!(&n.tok, Tok::Ident(t) if INT_TYPES.contains(&t.as_str())))
        {
            return true;
        }
    }
    false
}

/// Whether the range mentions a guard call.
fn has_guard(tokens: &[Token], range: std::ops::Range<usize>) -> bool {
    range
        .clone()
        .any(|i| matches!(&tokens[i].tok, Tok::Ident(n) if is_guard(n)))
}

/// Whether the range mentions a length-like or already-tainted name.
/// Cast target types are excluded — `usize` contains the `size` fragment
/// but names the type, not a length source.
fn has_length_source(
    tokens: &[Token],
    range: std::ops::Range<usize>,
    tainted: &BTreeSet<String>,
) -> bool {
    range.clone().any(|i| {
        matches!(&tokens[i].tok, Tok::Ident(n) if !INT_TYPES.contains(&n.as_str())
            && (is_lengthish(n) || tainted.contains(n)))
    })
}

/// Token index of the `;` (or unbalanced end) closing the statement
/// starting at `i`, scanning no further than `end`.
fn statement_end(tokens: &[Token], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = i;
    while k <= end {
        match tokens[k].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(';') if depth <= 0 => return k,
            _ => {}
        }
        k += 1;
    }
    end
}

/// Runs `cast_flow` over every non-test fn body in the workspace.
pub fn cast_flow(units: &[FileUnit], table: &SymbolTable, findings: &mut Vec<Finding>) {
    for sym in &table.fns {
        if sym.in_test {
            continue;
        }
        // Decode paths are `checked_decode`'s jurisdiction — one finding
        // per defect, not two.
        if sym.name == "from_bytes" || sym.name.contains("decode") {
            continue;
        }
        let unit = &units[sym.file];
        check_body(unit, sym.body, findings);
    }
}

/// The taint walk over one body span.
fn check_body(unit: &FileUnit, body: (usize, usize), findings: &mut Vec<Finding>) {
    let toks = &unit.tokens;
    let (start, end) = body;
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    let mut i = start;
    while i <= end {
        // Taint source: `let [mut] name = <expr>;` whose RHS casts a
        // length-derived value with `as <int>` and is unguarded.
        if is_ident(&toks[i], "let") {
            let mut j = i + 1;
            if matches!(toks.get(j), Some(n) if is_ident(n, "mut")) {
                j += 1;
            }
            if let Some(Tok::Ident(name)) = toks.get(j).map(|t| &t.tok) {
                if matches!(toks.get(j + 1), Some(n) if is_punct(n, '=')) {
                    let stop = statement_end(toks, j + 2, end);
                    let rhs = j + 2..stop;
                    if has_top_level_int_cast(toks, rhs.clone())
                        && has_length_source(toks, rhs.clone(), &tainted)
                        && !has_guard(toks, rhs.clone())
                    {
                        tainted.insert(name.clone());
                    }
                    // Advance past the binding only: the RHS may itself
                    // contain a sink fed by a previously tainted name.
                    i = j + 2;
                    continue;
                }
            }
        }
        // Allocation sinks: `with_capacity(expr)` / `reserve(expr)` /
        // `vec![init; expr]`.
        if let Tok::Ident(name) = &toks[i].tok {
            let sink = (name == "with_capacity" || name == "reserve")
                && matches!(toks.get(i + 1), Some(n) if is_punct(n, '('));
            if sink {
                let close = matching(toks, i + 1, end);
                let arg = i + 2..close;
                if sink_is_hot(toks, arg.clone(), &tainted) {
                    findings.push(finding(unit, toks[i].line, name, &tainted, toks, arg));
                    i = close + 1;
                    continue;
                }
            }
            if name == "vec" && matches!(toks.get(i + 1), Some(n) if is_punct(n, '!')) {
                if let Some(open) = (i + 2..=end).next().filter(|&k| is_punct(&toks[k], '[')) {
                    let close = matching(toks, open, end);
                    // The repeat form's length is everything after `;`.
                    if let Some(semi) = (open..close).find(|&k| is_punct(&toks[k], ';')) {
                        let arg = semi + 1..close;
                        if sink_is_hot(toks, arg.clone(), &tainted) {
                            findings.push(finding(
                                unit,
                                toks[i].line,
                                "vec![..; n]",
                                &tainted,
                                toks,
                                arg,
                            ));
                            i = close + 1;
                            continue;
                        }
                    }
                }
            }
        }
        // Indexing sink: `buf[t]` with a single tainted identifier.
        if is_punct(&toks[i], '[')
            && i > start
            && matches!(&toks[i - 1].tok, Tok::Ident(_))
            && matches!(toks.get(i + 2), Some(n) if is_punct(n, ']'))
        {
            if let Some(Tok::Ident(idx)) = toks.get(i + 1).map(|t| &t.tok) {
                if tainted.contains(idx) {
                    findings.push(Finding {
                        rule: "cast_flow",
                        path: unit.rel_path.clone(),
                        line: toks[i].line,
                        message: format!(
                            "`{idx}` is a length-derived value that went through an unchecked `as` \
                             cast and now indexes a slice; validate with `usize::try_from`/bounds \
                             `min` before the cast so a crafted length fails instead of wrapping"
                        ),
                    });
                    i += 3;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// Whether a sink argument range carries unguarded tainted/cast length.
fn sink_is_hot(toks: &[Token], arg: std::ops::Range<usize>, tainted: &BTreeSet<String>) -> bool {
    if has_guard(toks, arg.clone()) {
        return false;
    }
    let carries_taint = arg
        .clone()
        .any(|k| matches!(&toks[k].tok, Tok::Ident(n) if tainted.contains(n)));
    // Inline form: the cast happens right in the argument.
    let inline = has_int_cast(toks, arg.clone())
        && arg
            .clone()
            .any(|k| matches!(&toks[k].tok, Tok::Ident(n) if is_lengthish(n)));
    carries_taint || inline
}

fn matching(toks: &[Token], open: usize, end: usize) -> usize {
    crate::callgraph::matching_close(toks, open, end)
}

fn finding(
    unit: &FileUnit,
    line: u32,
    sink: &str,
    tainted: &BTreeSet<String>,
    toks: &[Token],
    arg: std::ops::Range<usize>,
) -> Finding {
    let carrier = arg
        .clone()
        .find_map(|k| match &toks[k].tok {
            Tok::Ident(n) if tainted.contains(n) || is_lengthish(n) => Some(n.clone()),
            _ => None,
        })
        .unwrap_or_else(|| "length".to_string());
    Finding {
        rule: "cast_flow",
        path: unit.rel_path.clone(),
        line,
        message: format!(
            "length-derived `{carrier}` reaches `{sink}` through an unchecked `as` cast; \
             validate with `usize::try_from` or bound with `.min(..)` before allocating"
        ),
    }
}

/// Runs `float_determinism` over the kernel crates' non-test fn bodies.
pub fn float_determinism(
    units: &[FileUnit],
    table: &SymbolTable,
    float_crates: &[String],
    findings: &mut Vec<Finding>,
) {
    for sym in &table.fns {
        if sym.in_test || !float_crates.contains(&sym.crate_name) {
            continue;
        }
        let unit = &units[sym.file];
        let toks = &unit.tokens;
        let (start, end) = sym.body;
        // Sanctioned: the body shapes its traversal with the fixed-size
        // reduction block or the SIMD lane constant — the reduction tree
        // is pinned regardless of input length.
        let sanctioned = (start..=end)
            .any(|i| is_ident(&toks[i], "REDUCE_BLOCK") || is_ident(&toks[i], "LANES"));
        if sanctioned {
            continue;
        }
        // Detector 1: scalar float accumulator `let mut x = 0.0; .. x += ..`.
        let mut accs: Vec<String> = Vec::new();
        for i in start..=end {
            if !is_ident(&toks[i], "let") {
                continue;
            }
            let mut j = i + 1;
            if matches!(toks.get(j), Some(n) if is_ident(n, "mut")) {
                j += 1;
            } else {
                continue;
            }
            let Some(Tok::Ident(name)) = toks.get(j).map(|t| &t.tok) else {
                continue;
            };
            // `= 0.0` or `= 0.0f32` (typed float literal).
            if matches!(toks.get(j + 1), Some(n) if is_punct(n, '='))
                && matches!(toks.get(j + 2), Some(n) if matches!(n.tok, Tok::Float))
            {
                accs.push(name.clone());
            }
        }
        for i in start..=end {
            if let Tok::Ident(name) = &toks[i].tok {
                let deref = i > start && is_punct(&toks[i - 1], '*');
                let compound = matches!(toks.get(i + 1), Some(n) if is_punct(n, '+'))
                    && matches!(toks.get(i + 2), Some(n) if is_punct(n, '='));
                if compound && !deref && accs.contains(name) {
                    findings.push(Finding {
                        rule: "float_determinism",
                        path: unit.rel_path.clone(),
                        line: toks[i].line,
                        message: format!(
                            "`{name} +=` accumulates floats in traversal order; route the \
                             reduction through the REDUCE_BLOCK-chunked kernels (ops::sum_* / \
                             block::*) so the tree shape is pinned"
                        ),
                    });
                }
            }
        }
        // Detector 2: `.sum::<f32>()` / `.sum::<f64>()` iterator folds.
        for i in start..=end {
            if is_ident(&toks[i], "sum")
                && i > start
                && is_punct(&toks[i - 1], '.')
                && matches!(toks.get(i + 1), Some(n) if is_punct(n, ':'))
                && matches!(toks.get(i + 3), Some(n) if is_punct(n, '<'))
                && matches!(toks.get(i + 4), Some(n) if is_ident(n, "f32") || is_ident(n, "f64"))
            {
                findings.push(Finding {
                    rule: "float_determinism",
                    path: unit.rel_path.clone(),
                    line: toks[i].line,
                    message: "`.sum::<float>()` folds in iterator order; use the \
                              REDUCE_BLOCK-chunked kernel so two runs reduce in the same tree"
                        .to_string(),
                });
            }
        }
    }
}
