//! Call-site extraction and the workspace call graph.
//!
//! For every function body in the [`crate::symbols::SymbolTable`] this
//! pass records the called names, token-level: an identifier directly
//! followed by `(` is a call (free function, method, or tuple-struct
//! constructor — the twin rules care about the *name*, not the kind).
//! Assertion macros (`assert!`/`debug_assert_eq!`/...) are transparent to
//! runtime structure, so calls inside their argument lists are skipped —
//! a `debug_assert_eq!(shard, shard_for(...))` in one twin must not read
//! as a structural `shard_for` hop. Other macro invocations keep their
//! argument calls but the macro name itself is never an edge.

use crate::lexer::{is_ident, is_punct, Tok, Token};
use crate::symbols::SymbolTable;
use crate::FileUnit;

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (last path segment as written).
    pub callee: String,
    /// 1-based source line.
    pub line: u32,
}

/// Per-function call lists, indexed like `SymbolTable::fns`.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `calls[i]` are the call sites of function `i`, in source order.
    pub calls: Vec<Vec<CallSite>>,
    /// Number of call sites whose callee resolved to a workspace symbol.
    pub resolved_edges: usize,
}

/// Control-flow keywords that look like calls token-wise (`if (`,
/// `while (`, ...) plus binding forms.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "mut", "move", "in",
    "as", "where", "impl", "dyn",
];

/// Macros whose argument lists are assertion-only (stripped wholesale).
fn is_assert_macro(name: &str) -> bool {
    name.starts_with("assert")
        || name.starts_with("debug_assert")
        || name == "panic"
        || name == "unreachable"
}

impl CallGraph {
    /// Extracts call sites for every function in `table`.
    pub fn build(units: &[FileUnit], table: &SymbolTable) -> Self {
        let mut graph = CallGraph::default();
        for sym in &table.fns {
            let unit = &units[sym.file];
            let sites = extract_calls(&unit.tokens, sym.body);
            graph.resolved_edges += sites
                .iter()
                .filter(|s| table.resolve(&s.callee, &sym.crate_name).is_some())
                .count();
            graph.calls.push(sites);
        }
        graph
    }
}

/// Token index of the `)`/`]`/`}` closing the bracket opened at `open`,
/// or `span_end` if unbalanced.
pub(crate) fn matching_close(tokens: &[Token], open: usize, span_end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i <= span_end && i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    span_end
}

/// Scans the inclusive token span `body` for call sites.
pub fn extract_calls(tokens: &[Token], body: (usize, usize)) -> Vec<CallSite> {
    let (start, end) = body;
    let mut out = Vec::new();
    let mut i = start;
    while i <= end && i < tokens.len() {
        let Tok::Ident(name) = &tokens[i].tok else {
            i += 1;
            continue;
        };
        // Macro invocation: `name!(...)` / `name![...]` / `name!{...}`.
        if i < end && is_punct(&tokens[i + 1], '!') {
            let opener = i + 2 <= end
                && matches!(
                    tokens[i + 2].tok,
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{')
                );
            if is_assert_macro(name) && opener {
                // Skip the whole argument list: assertion arguments are
                // not runtime structure.
                i = matching_close(tokens, i + 2, end) + 1;
            } else {
                // Non-assert macro: skip only the name, keep scanning its
                // arguments for real calls.
                i += 2;
            }
            continue;
        }
        let is_call = i < end
            && is_punct(&tokens[i + 1], '(')
            && !KEYWORDS.contains(&name.as_str())
            && !(i > start && is_ident(&tokens[i - 1], "fn"));
        if is_call {
            out.push(CallSite {
                callee: name.clone(),
                line: tokens[i].line,
            });
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn calls_of(src: &str) -> Vec<String> {
        let (tokens, _) = lex(src);
        extract_calls(&tokens, (0, tokens.len().saturating_sub(1)))
            .into_iter()
            .map(|c| c.callee)
            .collect()
    }

    #[test]
    fn records_free_and_method_calls() {
        let got = calls_of("{ helper(x); peer.send_f32(t, buf); Foo::new(3); if cond { g() } }");
        assert_eq!(got, vec!["helper", "send_f32", "new", "g"]);
    }

    #[test]
    fn assert_macro_arguments_are_transparent() {
        let got = calls_of("{ debug_assert_eq!(shard, shard_for(d, n, r)); real_call(); }");
        assert_eq!(got, vec!["real_call"]);
    }

    #[test]
    fn other_macros_keep_inner_calls_but_not_the_name() {
        let got = calls_of("{ vec![make(1); count(n)]; format!(\"{}\", render(x)); }");
        assert_eq!(got, vec!["make", "count", "render"]);
    }
}
