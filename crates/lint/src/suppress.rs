//! Inline suppressions.
//!
//! A finding can be waived at the site with a comment of the form
//! `lint:allow(panic_free, reason = "why the rule does not apply here")`
//! placed on the finding's line or the line directly above it — the first
//! argument names the rule being waived. The reason is mandatory and must be
//! non-empty: an allow without a documented why is itself a finding
//! (rule `suppression`), so suppressions can never silently accumulate.

use crate::lexer::Comment;
use crate::Finding;

/// One parsed suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule this suppression waives.
    pub rule: String,
    /// 1-based line of the comment; waives findings on this line and the
    /// next one (so it can sit above a multi-line statement's trigger).
    pub line: u32,
    /// The documented justification.
    pub reason: String,
}

const MARKER: &str = "lint:allow(";

/// Extracts suppressions from a file's comments. Malformed suppressions
/// (missing rule, missing or empty reason, unknown rule name) are returned
/// as findings instead.
pub fn parse(
    path: &str,
    comments: &[Comment],
    known_rules: &[&str],
) -> (Vec<Suppression>, Vec<Finding>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(at) = c.text.find(MARKER) else {
            continue;
        };
        let rest = &c.text[at + MARKER.len()..];
        let mut fail = |msg: String| {
            bad.push(Finding {
                rule: "suppression",
                path: path.to_string(),
                line: c.line,
                message: msg,
            });
        };
        // Parsed left to right so a `)` inside the quoted reason — e.g. a
        // method call in the justification — does not truncate it.
        let Some((rule_part, after_comma)) = rest.split_once(',') else {
            if rest.contains(')') {
                fail("lint:allow needs `reason = \"...\"` after the rule".to_string());
            } else {
                fail("unterminated lint:allow — missing `)`".to_string());
            }
            continue;
        };
        let rule = rule_part.trim();
        if !known_rules.contains(&rule) {
            fail(format!(
                "lint:allow names unknown rule `{rule}` (known: {})",
                known_rules.join(", ")
            ));
            continue;
        }
        let quoted = after_comma
            .trim_start()
            .strip_prefix("reason")
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('='))
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('"'));
        let Some(quoted) = quoted else {
            fail("lint:allow needs `reason = \"...\"` after the rule".to_string());
            continue;
        };
        let Some((reason, tail)) = quoted.split_once('"') else {
            fail("unterminated reason string in lint:allow".to_string());
            continue;
        };
        let reason = reason.trim().to_string();
        if reason.is_empty() {
            fail(format!(
                "lint:allow({rule}) has an empty reason — document why the rule does not apply"
            ));
            continue;
        }
        if !tail.trim_start().starts_with(')') {
            fail("unterminated lint:allow — missing `)`".to_string());
            continue;
        }
        ok.push(Suppression {
            rule: rule.to_string(),
            line: c.line,
            reason,
        });
    }
    (ok, bad)
}

/// Splits `findings` into (kept, suppressed-count) by applying the
/// suppressions: a finding is waived when a suppression for its rule sits
/// on its line or the line above. `attr_lines` holds the 1-based line
/// ranges of outer attributes (see `Regions::attr_lines`): a suppression
/// directly above a multi-line `#[cfg(...)]` attribute covers findings
/// anywhere inside that attribute's span, so the allow does not have to
/// chase the exact line the `feature` token lands on.
pub fn apply(
    findings: Vec<Finding>,
    sup: &[Suppression],
    attr_lines: &[(u32, u32)],
) -> (Vec<Finding>, usize) {
    let mut kept = Vec::new();
    let mut waived = 0usize;
    for f in findings {
        let hit = sup.iter().any(|s| {
            s.rule == f.rule
                && (s.line == f.line
                    || s.line + 1 == f.line
                    || attr_lines.iter().any(|&(first, last)| {
                        (s.line == first || s.line + 1 == first)
                            && f.line >= first
                            && f.line <= last
                    }))
        });
        if hit {
            waived += 1;
        } else {
            kept.push(f);
        }
    }
    (kept, waived)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const RULES: &[&str] = &["panic_free", "ambient"];

    fn parse_src(src: &str) -> (Vec<Suppression>, Vec<Finding>) {
        let (_, comments) = lex(src);
        parse("f.rs", &comments, RULES)
    }

    #[test]
    fn well_formed_suppression_parses() {
        let (ok, bad) =
            parse_src("// lint:allow(panic_free, reason = \"invariant upheld by caller\")\nx();");
        assert!(bad.is_empty());
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].rule, "panic_free");
        assert_eq!(ok[0].line, 1);
        assert!(ok[0].reason.contains("invariant"));
    }

    #[test]
    fn missing_or_empty_reason_is_a_finding() {
        let (ok, bad) =
            parse_src("// lint:allow(panic_free)\n// lint:allow(ambient, reason = \"\")");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 2);
        assert!(bad.iter().all(|f| f.rule == "suppression"));
    }

    #[test]
    fn unknown_rule_is_a_finding() {
        let (ok, bad) = parse_src("// lint:allow(nonsense, reason = \"because\")");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("nonsense"));
    }

    #[test]
    fn apply_waives_same_line_and_next_line() {
        let sup = vec![Suppression {
            rule: "panic_free".to_string(),
            line: 10,
            reason: "r".to_string(),
        }];
        let mk = |rule: &'static str, line| Finding {
            rule,
            path: "f.rs".to_string(),
            line,
            message: String::new(),
        };
        let (kept, waived) = apply(
            vec![
                mk("panic_free", 10),
                mk("panic_free", 11),
                mk("panic_free", 12),
                mk("ambient", 10),
            ],
            &sup,
            &[],
        );
        assert_eq!(waived, 2);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn apply_covers_a_multiline_attribute_span() {
        let sup = vec![Suppression {
            rule: "feature_gate".to_string(),
            line: 1,
            reason: "r".to_string(),
        }];
        let mk = |line| Finding {
            rule: "feature_gate",
            path: "f.rs".to_string(),
            line,
            message: String::new(),
        };
        // Attribute spans lines 2..=4; the finding sits on line 4, past the
        // plain line+1 window, but the suppression above the attribute
        // still covers it. Line 5 is outside the attribute and stays.
        let (kept, waived) = apply(vec![mk(4), mk(5)], &sup, &[(2, 4)]);
        assert_eq!(waived, 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 5);
    }
}
