//! Workspace symbol table.
//!
//! One pass over every file's token stream and [`crate::regions`] output
//! yields the function universe the whole-workspace rules reason over:
//! `twin_drift` discovers suffix families in it, `coverage_conformance`
//! derives the exported collective surface from it, and the call graph
//! resolves callee names against it. Test-region functions are indexed but
//! flagged, so structural rules can skip them while keeping indices stable.

use std::collections::HashMap;

use crate::FileUnit;

/// One function in the workspace.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// The function's name as written.
    pub name: String,
    /// Owning crate's `package.name`.
    pub crate_name: String,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Index of the defining file in the unit list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the item is exported (`pub`, not `pub(crate)`).
    pub is_pub: bool,
    /// Inclusive token span of the body braces in the defining file.
    pub body: (usize, usize),
    /// Whether the definition sits in test code.
    pub in_test: bool,
}

/// The function universe, with a by-name index.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every function, in (file, source) order.
    pub fns: Vec<FnSym>,
    /// Name → indices into `fns` (a name may have many definitions:
    /// trait impls, per-module helpers).
    pub by_name: HashMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Indexes every named function body of every unit.
    pub fn build(units: &[FileUnit]) -> Self {
        let mut table = SymbolTable::default();
        for (file, unit) in units.iter().enumerate() {
            for f in &unit.regions.fns {
                let idx = table.fns.len();
                table.fns.push(FnSym {
                    name: f.name.clone(),
                    crate_name: unit.crate_name.clone(),
                    path: unit.rel_path.clone(),
                    file,
                    line: unit.tokens[f.decl].line,
                    is_pub: f.is_pub,
                    body: f.body,
                    in_test: unit.regions.in_test(f.decl),
                });
                table.by_name.entry(f.name.clone()).or_default().push(idx);
            }
        }
        table
    }

    /// Resolves a callee name from the point of view of `from_crate`:
    /// non-test definitions in the caller's crate win; otherwise a unique
    /// non-test definition anywhere. Ambiguous names resolve to `None` —
    /// the structural rules treat an unresolved callee as opaque rather
    /// than guessing.
    pub fn resolve(&self, name: &str, from_crate: &str) -> Option<usize> {
        let candidates = self.by_name.get(name)?;
        let live: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| !self.fns[i].in_test)
            .collect();
        let local: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| self.fns[i].crate_name == from_crate)
            .collect();
        match (local.len(), live.len()) {
            (1, _) => Some(local[0]),
            (0, 1) => Some(live[0]),
            _ => None,
        }
    }

    /// Whether any non-test definition of `name` lives in `crate_name`
    /// (weaker than [`Self::resolve`]: duplicated per-module helpers like
    /// `member_index` count even though they are ambiguous to resolve).
    pub fn defined_in_crate(&self, name: &str, crate_name: &str) -> bool {
        self.by_name.get(name).is_some_and(|c| {
            c.iter()
                .any(|&i| !self.fns[i].in_test && self.fns[i].crate_name == crate_name)
        })
    }

    /// Non-test functions of `crate_name`, as indices.
    pub fn crate_fns<'a>(&'a self, crate_name: &'a str) -> impl Iterator<Item = usize> + 'a {
        (0..self.fns.len())
            .filter(move |&i| !self.fns[i].in_test && self.fns[i].crate_name == crate_name)
    }
}
