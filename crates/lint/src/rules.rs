//! The six determinism & safety rules, plus the `forbid(unsafe_code)`
//! attribute check.
//!
//! Every rule is a pure function over one file's token stream and region
//! table — no I/O, no global state — so rule order and file order fully
//! determine the report bytes.
//!
//! | rule            | protects                                            |
//! |-----------------|-----------------------------------------------------|
//! | `wall_clock`    | the three virtual clock domains (no `Instant::now`) |
//! | `unordered_iter`| exported output from hash-order nondeterminism      |
//! | `panic_free`    | library code of the core planes from panics         |
//! | `checked_decode`| decode paths from length-arithmetic overflow        |
//! | `feature_gate`  | `cfg(feature)` against undeclared feature names     |
//! | `ambient`       | against unseeded RNG and ungated thread spawns      |
//! | `forbid_unsafe` | leaf crates keep `#![forbid(unsafe_code)]`          |

use crate::lexer::{is_ident, is_punct, Tok, Token};
use crate::regions::Regions;
use crate::{Config, Finding};

/// Everything the rules need to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// Package name from the owning crate's `Cargo.toml`.
    pub crate_name: &'a str,
    /// Feature names declared by the owning crate.
    pub features: &'a [String],
    /// Lexed tokens.
    pub tokens: &'a [Token],
    /// Structural regions.
    pub regions: &'a Regions,
    /// Rule configuration.
    pub config: &'a Config,
}

impl FileCtx<'_> {
    fn is_bin(&self) -> bool {
        self.path.contains("/src/bin/") || self.path.ends_with("/main.rs")
    }

    fn finding(&self, rule: &'static str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            path: self.path.to_string(),
            line,
            message,
        }
    }
}

/// Runs every rule over one file.
pub fn run_all(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    wall_clock(ctx, &mut out);
    unordered_iter(ctx, &mut out);
    panic_free(ctx, &mut out);
    checked_decode(ctx, &mut out);
    feature_gate(ctx, &mut out);
    ambient(ctx, &mut out);
    forbid_unsafe(ctx, &mut out);
    out
}

/// Rule 1: wall-clock ban. `Instant::now`, `SystemTime`, and `.elapsed()`
/// are forbidden outside the bench-bin allowlist — every exported
/// timestamp must come from a virtual clock domain.
fn wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx
        .config
        .wall_clock_allow_prefixes
        .iter()
        .any(|p| ctx.path.starts_with(p.as_str()))
    {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.regions.in_test(i) {
            continue;
        }
        let t = &toks[i];
        if is_ident(t, "Instant")
            && matches!(toks.get(i + 1), Some(n) if is_punct(n, ':'))
            && matches!(toks.get(i + 3), Some(n) if is_ident(n, "now"))
        {
            out.push(ctx.finding(
                "wall_clock",
                t.line,
                "Instant::now() reads the wall clock; charge time from the plane's virtual clock"
                    .to_string(),
            ));
        } else if is_ident(t, "SystemTime") {
            out.push(ctx.finding(
                "wall_clock",
                t.line,
                "SystemTime is wall-clock time; exported output must be derived from virtual time"
                    .to_string(),
            ));
        } else if is_ident(t, "elapsed")
            && i > 0
            && is_punct(&toks[i - 1], '.')
            && matches!(toks.get(i + 1), Some(n) if is_punct(n, '('))
        {
            out.push(
                ctx.finding(
                    "wall_clock",
                    t.line,
                    ".elapsed() measures wall time; use the registry's logical clock instead"
                        .to_string(),
                ),
            );
        }
    }
}

/// Iteration methods whose order is the hasher's, not the data's.
const UNORDERED_ITERS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Rule 2: unordered iteration. Finds identifiers bound to a
/// `HashMap`/`HashSet` in this file, then flags any order-observing
/// iteration over them (`for .. in &m`, `.iter()`, `.keys()`, ...). The
/// fix is a `BTreeMap`/`BTreeSet` or an explicit sort before export.
fn unordered_iter(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    // Pass 1: names bound to hash collections. Declarations considered:
    //   `name: HashMap<..>` (fields, params, typed lets) and
    //   `let [mut] name = .. HashMap/HashSet ..;` (constructor or collect).
    let mut hash_names: Vec<String> = Vec::new();
    let mut note = |name: &str| {
        if !hash_names.iter().any(|n| n == name) {
            hash_names.push(name.to_string());
        }
    };
    for i in 0..toks.len() {
        match &toks[i].tok {
            Tok::Ident(name) if matches!(toks.get(i + 1), Some(n) if is_punct(n, ':')) => {
                // Scan the type expression until a separator token.
                let mut depth = 0i32;
                for t in toks.iter().skip(i + 2) {
                    match &t.tok {
                        Tok::Punct('<') | Tok::Punct('(') => depth += 1,
                        Tok::Punct('>') | Tok::Punct(')') if depth > 0 => depth -= 1,
                        Tok::Punct(',')
                        | Tok::Punct(';')
                        | Tok::Punct('=')
                        | Tok::Punct('{')
                        | Tok::Punct(')')
                        | Tok::Punct('}') => break,
                        Tok::Ident(ty) if ty == "HashMap" || ty == "HashSet" => {
                            note(name);
                            break;
                        }
                        _ => {}
                    }
                }
            }
            Tok::Ident(kw) if kw == "let" => {
                let mut j = i + 1;
                if matches!(toks.get(j), Some(n) if is_ident(n, "mut")) {
                    j += 1;
                }
                let Some(Tok::Ident(name)) = toks.get(j).map(|t| &t.tok) else {
                    continue;
                };
                if !matches!(toks.get(j + 1), Some(n) if is_punct(n, '=')) {
                    continue;
                }
                for t in toks.iter().skip(j + 2) {
                    match &t.tok {
                        Tok::Punct(';') => break,
                        Tok::Ident(ty) if ty == "HashMap" || ty == "HashSet" => {
                            note(name);
                            break;
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    if hash_names.is_empty() {
        return;
    }
    let is_hash_name =
        |t: &Token| matches!(&t.tok, Tok::Ident(s) if hash_names.iter().any(|n| n == s));

    // Pass 2: order-observing uses.
    for i in 0..toks.len() {
        if ctx.regions.in_test(i) {
            continue;
        }
        let t = &toks[i];
        // `name.iter()` / `self.field.keys()` ...
        if let Tok::Ident(m) = &t.tok {
            if UNORDERED_ITERS.contains(&m.as_str())
                && i >= 2
                && is_punct(&toks[i - 1], '.')
                && is_hash_name(&toks[i - 2])
                && matches!(toks.get(i + 1), Some(n) if is_punct(n, '('))
            {
                out.push(ctx.finding(
                    "unordered_iter",
                    t.line,
                    format!(
                        "`.{m}()` on hash collection `{}` observes hasher order; use a BTree \
                         collection or sort before the result can reach exported output",
                        match &toks[i - 2].tok {
                            Tok::Ident(s) => s.clone(),
                            _ => String::new(),
                        }
                    ),
                ));
            }
        }
        // `for pat in &name {` / `for pat in name {`
        if is_ident(t, "in") {
            let mut j = i + 1;
            while matches!(toks.get(j), Some(n) if is_punct(n, '&') || is_ident(n, "mut")) {
                j += 1;
            }
            // `for .. in &self.field` — step to the field identifier.
            if matches!(toks.get(j), Some(n) if is_ident(n, "self"))
                && matches!(toks.get(j + 1), Some(n) if is_punct(n, '.'))
            {
                j += 2;
            }
            if let Some(n) = toks.get(j) {
                if is_hash_name(n) && matches!(toks.get(j + 1), Some(b) if is_punct(b, '{')) {
                    out.push(ctx.finding(
                        "unordered_iter",
                        n.line,
                        format!(
                            "`for .. in` over hash collection `{}` observes hasher order; use a \
                             BTree collection or an explicit sort",
                            match &n.tok {
                                Tok::Ident(s) => s.clone(),
                                _ => String::new(),
                            }
                        ),
                    ));
                }
            }
        }
    }
}

/// Rule 3: panic-free libraries. In the non-test library code of the
/// configured crates, `unwrap`, `expect`, `panic!`, and indexing by an
/// integer literal must be converted to `Result` or carry a documented
/// suppression.
fn panic_free(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx
        .config
        .panic_free_crates
        .iter()
        .any(|c| c == ctx.crate_name)
        || ctx.is_bin()
    {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.regions.in_test(i) {
            continue;
        }
        let t = &toks[i];
        match &t.tok {
            Tok::Ident(m) if (m == "unwrap" || m == "expect") && i > 0 => {
                let called = matches!(toks.get(i + 1), Some(n) if is_punct(n, '('));
                // `.unwrap()` as a method call, or `Path::unwrap` passed as
                // a function reference (it panics just the same).
                let hit = (is_punct(&toks[i - 1], '.') && called) || is_punct(&toks[i - 1], ':');
                if hit {
                    out.push(ctx.finding(
                        "panic_free",
                        t.line,
                        format!(
                            "`{m}` can panic in library code; return a Result or document the \
                             invariant with a suppression"
                        ),
                    ));
                }
            }
            Tok::Ident(m) if m == "panic" => {
                if matches!(toks.get(i + 1), Some(n) if is_punct(n, '!')) {
                    out.push(
                        ctx.finding(
                            "panic_free",
                            t.line,
                            "`panic!` in library code; return a Result or document the invariant \
                         with a suppression"
                                .to_string(),
                        ),
                    );
                }
            }
            Tok::Punct('[')
                if i > 0
                    && matches!(&toks[i - 1].tok, Tok::Ident(_))
                    && matches!(toks.get(i + 1), Some(n) if matches!(n.tok, Tok::Int(_)))
                    && matches!(toks.get(i + 2), Some(n) if is_punct(n, ']')) =>
            {
                let name = match &toks[i - 1].tok {
                    Tok::Ident(s) => s.clone(),
                    _ => String::new(),
                };
                let idx = match &toks[i + 1].tok {
                    Tok::Int(s) => s.clone(),
                    _ => String::new(),
                };
                out.push(ctx.finding(
                    "panic_free",
                    t.line,
                    format!(
                        "`{name}[{idx}]` indexes by literal and can panic; use `.get({idx})` or \
                         document the bounds invariant with a suppression"
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// Identifier fragments that mark a value as length-like for rule 4 (and
/// for the workspace-wide `cast_flow` dataflow pass, which shares the
/// taxonomy so the two rules agree on what "length-derived" means).
pub(crate) const LENGTHISH: &[&str] = &[
    "len", "size", "count", "off", "header", "declared", "dim", "bytes", "pixels",
];

pub(crate) fn is_lengthish(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    LENGTHISH.iter().any(|frag| lower.contains(frag))
}

/// Rule 4: checked decode arithmetic. Inside `decode*`/`from_bytes`
/// functions, bare `+`/`*` on length-like operands and lossy `as usize`
/// casts are flagged — a crafted input can overflow the arithmetic into a
/// passing bounds check. Use `checked_add`/`checked_mul`/`usize::try_from`.
fn checked_decode(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.regions.in_test(i) {
            continue;
        }
        let in_decode_fn = ctx
            .regions
            .enclosing_fns(i)
            .any(|n| n == "from_bytes" || n.contains("decode"));
        if !in_decode_fn {
            continue;
        }
        let t = &toks[i];
        match &t.tok {
            Tok::Ident(kw) if kw == "as" => {
                if matches!(toks.get(i + 1), Some(n) if is_ident(n, "usize")) {
                    out.push(ctx.finding(
                        "checked_decode",
                        t.line,
                        "lossy `as usize` in a decode path; use `usize::try_from(..)` so a huge \
                         declared length errors instead of truncating"
                            .to_string(),
                    ));
                }
            }
            Tok::Punct(op) if *op == '+' || *op == '*' => {
                // Compound assignment (`+=`) and unary contexts are skipped.
                if matches!(toks.get(i + 1), Some(n) if is_punct(n, '=')) {
                    continue;
                }
                // Look at the nearest identifiers on both sides (window of
                // three tokens) for a length-like operand.
                let window = |range: std::ops::Range<usize>| {
                    range.filter_map(|j| match toks.get(j).map(|t| &t.tok) {
                        Some(Tok::Ident(s)) => Some(s.clone()),
                        _ => None,
                    })
                };
                let lo = i.saturating_sub(3);
                let nearby: Vec<String> = window(lo..i).chain(window(i + 1..i + 4)).collect();
                // Float arithmetic cannot overflow into a passing bounds
                // check — cost models multiplying `bytes as f64` are fine.
                if nearby.iter().any(|n| n == "f64" || n == "f32") {
                    continue;
                }
                if nearby.iter().any(|n| is_lengthish(n)) {
                    out.push(ctx.finding(
                        "checked_decode",
                        t.line,
                        format!(
                            "bare `{op}` on a length-like value in a decode path; use \
                             `checked_{}` so crafted lengths fail cleanly",
                            if *op == '+' { "add" } else { "mul" }
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Rule 5: feature-gate hygiene. Every `feature = "x"` in a `cfg` must
/// name a feature the owning crate declares in its `Cargo.toml` — an
/// undeclared feature silently compiles the gated code out everywhere.
fn feature_gate(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !is_ident(&toks[i], "feature") {
            continue;
        }
        if !matches!(toks.get(i + 1), Some(n) if is_punct(n, '=')) {
            continue;
        }
        let Some(Tok::Str(name)) = toks.get(i + 2).map(|t| &t.tok) else {
            continue;
        };
        if !ctx.features.iter().any(|f| f == name) {
            out.push(ctx.finding(
                "feature_gate",
                toks[i].line,
                format!(
                    "cfg names feature `{name}` which `{}` does not declare in its Cargo.toml",
                    ctx.crate_name
                ),
            ));
        }
    }
}

/// RNG constructors that seed from the environment instead of the caller.
const UNSEEDED_RNG: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "OsRng"];

/// Rule 6: ambient nondeterminism. Unseeded RNG construction anywhere,
/// and `spawn` outside the feature-gated parallel tier, are flagged —
/// both make two same-seed runs diverge.
fn ambient(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx
        .config
        .wall_clock_allow_prefixes
        .iter()
        .any(|p| ctx.path.starts_with(p.as_str()))
    {
        // Bench binaries may parallelise and self-seed; their output is
        // checked by the twice-run `cmp` gauntlet instead.
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.regions.in_test(i) {
            continue;
        }
        let t = &toks[i];
        if let Tok::Ident(name) = &t.tok {
            if UNSEEDED_RNG.contains(&name.as_str()) {
                out.push(ctx.finding(
                    "ambient",
                    t.line,
                    format!(
                        "`{name}` draws ambient entropy; construct RNGs from an explicit seed \
                         (e.g. `seed_from_u64`)"
                    ),
                ));
            } else if name == "spawn"
                && i > 0
                && (is_punct(&toks[i - 1], '.') || is_punct(&toks[i - 1], ':'))
                && matches!(toks.get(i + 1), Some(n) if is_punct(n, '('))
                && !ctx.regions.in_feature_gated(i)
            {
                out.push(
                    ctx.finding(
                        "ambient",
                        t.line,
                        "thread spawn outside the feature-gated parallel tier; gate it behind \
                     `cfg(feature = ..)` or document the determinism argument with a suppression"
                            .to_string(),
                    ),
                );
            }
        }
    }
}

/// Satellite rule: leaf library crates must carry `#![forbid(unsafe_code)]`
/// at the top of `lib.rs`.
fn forbid_unsafe(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx
        .config
        .forbid_unsafe_crates
        .iter()
        .any(|c| c == ctx.crate_name)
        || !ctx.path.ends_with("src/lib.rs")
    {
        return;
    }
    let toks = ctx.tokens;
    let has = (0..toks.len()).any(|i| {
        is_punct(&toks[i], '#')
            && matches!(toks.get(i + 1), Some(n) if is_punct(n, '!'))
            && matches!(toks.get(i + 3), Some(n) if is_ident(n, "forbid"))
            && matches!(toks.get(i + 5), Some(n) if is_ident(n, "unsafe_code"))
    });
    if !has {
        out.push(ctx.finding(
            "forbid_unsafe",
            1,
            format!(
                "crate `{}` is a leaf library and must carry `#![forbid(unsafe_code)]` in lib.rs",
                ctx.crate_name
            ),
        ));
    }
}
