//! One-stop rule documentation, rendered by `cloudtrain lint --explain`.
//!
//! The table below is the single source for what each rule protects, what
//! a finding means, and how to fix or waive it. A unit test asserts every
//! entry of [`crate::RULES`] is documented, so adding a rule without docs
//! fails the build.

/// `(rule, documentation)` in [`crate::RULES`] order.
pub const RULE_DOCS: &[(&str, &str)] = &[
    (
        "wall_clock",
        "Flags wall-clock reads (Instant::now, SystemTime) outside the bench \
         binaries. Traces and reports must be byte-stable across runs; time \
         belongs in the simnet clock or the bench harness, never in library \
         code. Fix: thread the virtual clock through, or move the timing \
         into crates/bench. Waive: lint:allow(wall_clock, reason) on the \
         offending line.",
    ),
    (
        "unordered_iter",
        "Flags iteration over HashMap/HashSet in library code. Hash order \
         varies across runs and platforms, so anything derived from it \
         (reduction order, report lines) breaks byte-stability. Fix: use \
         BTreeMap/BTreeSet, or collect-and-sort before iterating.",
    ),
    (
        "panic_free",
        "Flags unwrap/expect/panic!/index-free arithmetic hazards in crates \
         whose library code must be panic-free (collectives, compress, \
         engine, ...). A panic in one rank deadlocks the group. Fix: return \
         Result or use checked accessors; tests are exempt.",
    ),
    (
        "checked_decode",
        "Flags unchecked length arithmetic in wire-format decode paths \
         (from_bytes and *decode* fns). A crafted or truncated frame must \
         fail loudly, not over-allocate. Fix: usize::try_from + checked_mul \
         with explicit error returns.",
    ),
    (
        "feature_gate",
        "Flags references to feature-gated names outside a matching \
         #[cfg(feature = ...)] region, and cfg features the crate does not \
         declare. Fix: gate the use site or declare the feature.",
    ),
    (
        "ambient",
        "Flags ambient nondeterminism in library code: std::env reads, \
         thread spawns, rand::thread_rng and friends. All entropy must come \
         from seeded RNGs threaded through init::rng_from_seed. Fix: plumb \
         seeds/config explicitly; bench binaries are exempt by path.",
    ),
    (
        "forbid_unsafe",
        "Checks that each listed crate's lib.rs keeps the \
         #![forbid(unsafe_code)] pragma. The workspace's soundness story is \
         'no unsafe outside shims'. Fix: restore the pragma.",
    ),
    (
        "twin_drift",
        "Structural diff between a suffix twin (_scratch/_ef/_resilient/\
         _deadline/_reordered/_fused/_quantized/_traced) and its base \
         collective. The twin's call skeleton must equal the base's modulo \
         the suffix's declared rewrite set (see crates/lint/src/twins.rs \
         REWRITES). A finding means a hop or stage exists in one variant \
         but not the other - usually a fix applied to the base and \
         forgotten in a twin. Fix: port the change to the twin; if the \
         divergence is intentional, extend the suffix's reviewed rewrite \
         set or waive with lint:allow(twin_drift, reason) at the twin's fn.",
    ),
    (
        "coverage_conformance",
        "Cross-checks three sources of truth: the exported *all_reduce* \
         surface of the collectives crate, the expected_pairings() matrix \
         in the conformance crate, and the oracle::run dispatch arms. A \
         finding means a collective nobody tests, a registered tag with no \
         dispatch arm, or an arm with no registration. Fix: register the \
         pairing and add the oracle arm, or exercise the entry point from \
         a bench/gauntlet harness.",
    ),
    (
        "cast_flow",
        "Dataflow rule: a length-derived value that flows through an \
         unchecked `as` integer cast into an allocation or indexing sink \
         (Vec::with_capacity, reserve, vec![_; n], slice indexing) is \
         flagged workspace-wide. Truncating casts turn a huge length into \
         a small allocation and a later out-of-bounds. Fix: \
         usize::try_from / .min(bound) / checked_* before the sink. \
         Decode paths are covered by checked_decode instead.",
    ),
    (
        "float_determinism",
        "Flags order-sensitive float reductions (let mut acc = 0.0; acc += \
         .., and .sum::<f32>()) in the tensor/compress kernel crates \
         outside the sanctioned REDUCE_BLOCK-chunked kernels. Reduction \
         order is part of the bitwise contract; ad-hoc loops reduce in \
         traversal order and break cross-run/cross-shape stability. Fix: \
         route the reduction through the fixed-shape kernels, or waive a \
         reviewed scalar-sequential loop with lint:allow(float_determinism, \
         reason).",
    ),
    (
        "suppression",
        "Meta-rule: malformed lint:allow comments (unknown rule name, \
         missing reason) are findings themselves, so a typo cannot silently \
         disable a check. Fix: lint:allow(rule, reason) with a rule from \
         --explain's list and a non-empty reason.",
    ),
    (
        "baseline",
        "Meta-rule: lint-baseline.toml entries that no longer match any \
         finding are reported, keeping the baseline shrink-only. Fix: \
         delete the stale [[allow]] entry.",
    ),
];

/// Documentation for `rule`, if it exists.
pub fn explain(rule: &str) -> Option<&'static str> {
    RULE_DOCS
        .iter()
        .find(|(name, _)| *name == rule)
        .map(|(_, doc)| *doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_is_documented_exactly_once() {
        for rule in crate::RULES {
            let n = RULE_DOCS.iter().filter(|(name, _)| name == rule).count();
            assert_eq!(n, 1, "rule `{rule}` must have exactly one doc entry");
        }
        assert_eq!(
            RULE_DOCS.len(),
            crate::RULES.len(),
            "RULE_DOCS must not document unknown rules"
        );
    }

    #[test]
    fn explain_finds_known_and_rejects_unknown() {
        assert!(explain("twin_drift").is_some_and(|d| d.contains("rewrite set")));
        assert!(explain("no_such_rule").is_none());
    }
}
