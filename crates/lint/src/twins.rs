//! Twin-family drift detection (`twin_drift`).
//!
//! Every hot collective ships as a family: a base path plus suffix twins
//! (`_scratch`, `_ef`, `_resilient`, `_deadline`, `_reordered`, `_fused`,
//! `_quantized`, `_traced`) that must repeat the base's structural call
//! skeleton modulo a *declared* per-suffix rewrite. A fix applied to the
//! base but forgotten in one twin shows up here as an unexplained skeleton
//! difference, statically, instead of waiting for a differential test seed
//! to hit it.
//!
//! The comparison model:
//! 1. **Discovery** — for every non-test fn in a twin crate whose name
//!    ends in known suffixes, strip suffixes right-to-left until the
//!    remaining name is a fn in the same crate; that fn is the base and
//!    the stripped set is the twin's rewrite budget (so
//!    `gtopk_all_reduce_ef_resilient` pairs with `gtopk_all_reduce` under
//!    `{ef, resilient}`).
//! 2. **Skeleton** — the set of *significant* callee names in the body:
//!    names defined in the same crate or in the cross-crate vocabulary
//!    (compressor/quantizer/error-feedback methods), excluding neutral
//!    plumbing (`new`, `len`, scratch-pool traffic, obs calls). Callee
//!    names are normalised first: twin suffixes are stripped
//!    (`ring_reduce_scatter_scratch` and `ring_reduce_scatter_resilient`
//!    are the same hop) and declared aliases rewritten
//!    (`inter_members_ordered` ≡ `inter_node_members`, `absorb_lossy` ≡
//!    `absorb`).
//! 3. **Delegation inlining** — a body whose significant skeleton is a
//!    single resolvable same-crate call (`hitopk_all_reduce_fused` →
//!    `..._fused_scratch` → `hitopk_fused_impl`) is replaced by its
//!    target's skeleton, to a fixed depth.
//! 4. **Base expansion** — a twin that calls its own base
//!    (`ring_all_reduce_reordered` permutes then calls `ring_all_reduce`)
//!    absorbs the base's skeleton in place of that call.
//! 5. **Diff** — skeleton-set difference against the base, minus the
//!    union of the suffixes' sanctioned adds/removes. Anything left is a
//!    `twin_drift` finding at the twin's declaration line.
//!
//! Set (not multiset) semantics are deliberate: hops appear once
//! textually, so a dropped hop still surfaces, while incidental repeat
//! counts of helpers (`slice_mut`, `put_f32`) do not false-positive.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::symbols::SymbolTable;
use crate::Finding;

/// The recognised twin suffixes, matched right-to-left at discovery.
pub const SUFFIXES: &[&str] = &[
    "traced",
    "scratch",
    "ef",
    "resilient",
    "deadline",
    "reordered",
    "fused",
    "quantized",
];

/// Cross-crate callee names that count as structural even though they
/// resolve outside the twin crate: the compressor / quantizer / error
/// feedback surface a collective's data flow is built from.
const VOCAB: &[&str] = &[
    "compensate",
    "absorb",
    "absorb_lossy",
    "compress",
    "quantize",
    "decode",
];

/// Neutral plumbing names, never structural: constructors, accessors, the
/// scratch-pool take/put traffic (allocation strategy is exactly what
/// `_scratch` twins are allowed to change), and obs instrumentation.
const NEUTRAL: &[&str] = &[
    "new",
    "default",
    "len",
    "is_empty",
    "clone",
    "to_vec",
    "slice",
    "slice_mut",
    "take_f32",
    "take_u32",
    "put_f32",
    "put_u32",
    "copy_f32",
    "copy_u32",
    "counter_add",
    "gauge_set",
    "span",
    "publish_obs",
    "rank",
    "size",
    "dim",
    "min",
    "max",
    "unit",
];

/// Callee-name aliases applied before comparison: the right-hand side is
/// the canonical form. Declared, not inferred — each line is a reviewed
/// equivalence.
const ALIASES: &[(&str, &str)] = &[
    // A reordered twin visits the same inter-node group through a
    // permutation; membership is equivalent.
    ("inter_members_ordered", "inter_node_members"),
    // The lossy absorb keeps the quantization error in the residual; same
    // ledger role as the exact absorb.
    ("absorb_lossy", "absorb"),
];

/// Per-suffix sanctioned rewrites, over *normalised* callee names.
struct Rewrite {
    suffix: &'static str,
    adds: &'static [&'static str],
    removes: &'static [&'static str],
}

const REWRITES: &[Rewrite] = &[
    Rewrite {
        // Traced twins may only add obs instrumentation — which is
        // neutral, so nothing structural may change at all.
        suffix: "traced",
        adds: &[],
        removes: &[],
    },
    Rewrite {
        // Scratch twins swap allocation sites; pool traffic is neutral.
        suffix: "scratch",
        adds: &[],
        removes: &[],
    },
    Rewrite {
        // Error feedback wraps the sparsification point.
        suffix: "ef",
        adds: &["compensate", "absorb", "shard_k", "empty"],
        removes: &[],
    },
    Rewrite {
        // Retry-ladder twins add fault bookkeeping and may degrade a
        // contribution to an empty selection; the fused pairs gather is
        // replaced by the resilient per-type gathers.
        suffix: "resilient",
        adds: &[
            "begin_instance",
            "contribution_degraded",
            "empty",
            "all_gather_f32",
            "all_gather_u32",
            "report",
        ],
        removes: &["all_gather_pairs"],
    },
    Rewrite {
        // Deadline twins charge each hop against a lateness budget and
        // may miss a contribution.
        suffix: "deadline",
        adds: &[
            "hop_lateness",
            "hop_missed",
            "contribution_lateness",
            "empty",
            "pair_wire_bytes",
        ],
        removes: &[],
    },
    Rewrite {
        // Reordered twins validate and apply a node permutation.
        suffix: "reordered",
        adds: &["assert_valid_order"],
        removes: &[],
    },
    Rewrite {
        // Fused twins stage both gather payloads through the fused pairs
        // gather instead of separate f32/u32 gathers. The shared fused
        // impl also hosts the optional error-feedback compensate/absorb
        // cycle behind an `Option` parameter (plain-fused callers pass
        // `None`), so those two names are sanctioned for the family.
        suffix: "fused",
        adds: &[
            "all_gather_pairs",
            "group_wire_bytes",
            "compensate",
            "absorb",
        ],
        removes: &["all_gather_f32", "all_gather_u32"],
    },
    Rewrite {
        // Quantized twins add the value-quantization stage (quantize, then
        // an elementwise decode of the selection the simulation transmits)
        // and charge the packed wire format explicitly.
        suffix: "quantized",
        adds: &[
            "quantize",
            "decode",
            "member_index",
            "quantized_pair_wire_bytes",
            "pair_wire_bytes",
        ],
        removes: &["ok_sparse_wire_bytes"],
    },
];

/// Summary statistics for the analyzer self-metrics.
#[derive(Debug, Default)]
pub struct TwinStats {
    /// Twin pairs discovered and compared.
    pub families: usize,
}

/// Normalises one callee name: alias rewrite, then iterative suffix strip.
fn normalize(name: &str) -> String {
    let mut n = name.to_string();
    for (from, to) in ALIASES {
        if n == *from {
            n = to.to_string();
        }
    }
    loop {
        let mut stripped = false;
        for s in SUFFIXES {
            if let Some(prefix) = n.strip_suffix(&format!("_{s}")) {
                if !prefix.is_empty() {
                    n = prefix.to_string();
                    stripped = true;
                }
            }
        }
        if !stripped {
            break;
        }
    }
    n
}

/// Whether a normalised callee name is structural for a body in `crate_name`.
fn significant(table: &SymbolTable, crate_name: &str, raw: &str, normalized: &str) -> bool {
    if NEUTRAL.contains(&normalized) || NEUTRAL.contains(&raw) {
        return false;
    }
    VOCAB.contains(&raw)
        || VOCAB.contains(&normalized)
        || table.defined_in_crate(raw, crate_name)
        || table.defined_in_crate(normalized, crate_name)
}

/// The normalised significant skeleton of fn `idx`, with single-call
/// delegation chains inlined to `depth`.
fn skeleton(table: &SymbolTable, graph: &CallGraph, idx: usize, depth: usize) -> BTreeSet<String> {
    let sym = &table.fns[idx];
    let mut out = BTreeSet::new();
    let mut significant_raw: Vec<&str> = Vec::new();
    for site in &graph.calls[idx] {
        let norm = normalize(&site.callee);
        if site.callee != sym.name && significant(table, &sym.crate_name, &site.callee, &norm) {
            significant_raw.push(&site.callee);
            out.insert(norm);
        }
    }
    // Delegation: exactly one distinct significant callee, resolvable in
    // the same crate — use its skeleton instead (wrapper fns only differ
    // in how they thread scratch/registry arguments).
    if depth > 0 && out.len() == 1 {
        let raw = significant_raw[0];
        if let Some(target) = table.resolve(raw, &sym.crate_name) {
            if target != idx && table.fns[target].crate_name == sym.crate_name {
                return skeleton(table, graph, target, depth - 1);
            }
        }
    }
    out
}

/// Runs twin discovery and drift comparison over `twin_crates`.
pub fn check(
    table: &SymbolTable,
    graph: &CallGraph,
    twin_crates: &[String],
    findings: &mut Vec<Finding>,
) -> TwinStats {
    let mut stats = TwinStats::default();
    for crate_name in twin_crates {
        for idx in table.crate_fns(crate_name) {
            let name = &table.fns[idx].name;
            let Some((base_idx, suffixes)) = discover_base(table, crate_name, name) else {
                continue;
            };
            stats.families += 1;
            let base_name = table.fns[base_idx].name.clone();
            let base_skel = skeleton(table, graph, base_idx, 4);
            let mut twin_skel = skeleton(table, graph, idx, 4);
            // Base expansion: a twin that calls its base inherits the
            // base's whole skeleton through that call.
            if twin_skel.remove(&normalize(&base_name)) {
                twin_skel.extend(base_skel.iter().cloned());
            }
            let allowed_adds: BTreeSet<&str> = REWRITES
                .iter()
                .filter(|r| suffixes.contains(&r.suffix))
                .flat_map(|r| r.adds.iter().copied())
                .collect();
            let allowed_removes: BTreeSet<&str> = REWRITES
                .iter()
                .filter(|r| suffixes.contains(&r.suffix))
                .flat_map(|r| r.removes.iter().copied())
                .collect();
            let extra: Vec<&String> = twin_skel
                .difference(&base_skel)
                .filter(|n| !allowed_adds.contains(n.as_str()))
                .collect();
            let missing: Vec<&String> = base_skel
                .difference(&twin_skel)
                .filter(|n| !allowed_removes.contains(n.as_str()))
                .collect();
            if extra.is_empty() && missing.is_empty() {
                continue;
            }
            let mut parts = Vec::new();
            if !missing.is_empty() {
                parts.push(format!(
                    "missing base calls [{}]",
                    missing
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            if !extra.is_empty() {
                parts.push(format!(
                    "unsanctioned extra calls [{}]",
                    extra
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            let sym = &table.fns[idx];
            findings.push(Finding {
                rule: "twin_drift",
                path: sym.path.clone(),
                line: sym.line,
                message: format!(
                    "twin `{name}` drifts from base `{base_name}` beyond the `{}` rewrite set: {}",
                    suffixes.join("`/`"),
                    parts.join("; ")
                ),
            });
        }
    }
    stats
}

/// Strips suffixes right-to-left until an existing non-test fn in
/// `crate_name` is found. Returns the base symbol index and the stripped
/// suffix set (discovery order).
fn discover_base(
    table: &SymbolTable,
    crate_name: &str,
    name: &str,
) -> Option<(usize, Vec<&'static str>)> {
    let mut current = name.to_string();
    let mut stripped: Vec<&'static str> = Vec::new();
    loop {
        let mut advanced = false;
        for s in SUFFIXES {
            if let Some(prefix) = current.strip_suffix(&format!("_{s}")) {
                if prefix.is_empty() {
                    continue;
                }
                stripped.push(s);
                current = prefix.to_string();
                advanced = true;
                break;
            }
        }
        if !advanced {
            return None;
        }
        if let Some(base) = resolve_non_test(table, crate_name, &current) {
            return Some((base, stripped));
        }
    }
}

/// Unique non-test definition of `name` in `crate_name`.
fn resolve_non_test(table: &SymbolTable, crate_name: &str, name: &str) -> Option<usize> {
    let candidates = table.by_name.get(name)?;
    let local: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| !table.fns[i].in_test && table.fns[i].crate_name == crate_name)
        .collect();
    if local.len() == 1 {
        Some(local[0])
    } else {
        None
    }
}
