//! Structural regions over the token stream.
//!
//! The rules need three kinds of context a flat token stream does not
//! give: whether a token sits in test code (`#[cfg(test)]` items or
//! `#[test]` functions), whether it sits under a `cfg(feature = ...)`
//! gate (the deterministic parallel tier is allowed to spawn threads),
//! and which named functions enclose it (the checked-decode rule only
//! applies inside `decode*`/`from_bytes` bodies). All three are computed
//! in one pass with brace matching — no full parse.

use crate::lexer::{is_ident, is_punct, Tok, Token};

/// A half-open token-index range `[start, end]` (inclusive end).
pub type Span = (usize, usize);

/// One named function body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name as written.
    pub name: String,
    /// Token-index span of the body braces, inclusive.
    pub body: Span,
    /// Token index of the `fn` keyword (the declaration site).
    pub decl: usize,
    /// Whether the item is exported (`pub`, not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
}

/// Structural facts about one file.
#[derive(Debug, Default)]
pub struct Regions {
    /// Spans of `#[cfg(test)]` items and `#[test]` functions.
    pub test: Vec<Span>,
    /// Spans of items under a `cfg(feature = ...)` gate.
    pub feature_gated: Vec<Span>,
    /// Every named `fn` body, in source order.
    pub fns: Vec<FnSpan>,
    /// 1-based line ranges `[first, last]` of every outer `#[...]`
    /// attribute — suppression scoping treats a multi-line attribute as
    /// one unit, so an allow above `#[cfg(\n feature = ...\n)]` covers
    /// findings anywhere inside the attribute span.
    pub attr_lines: Vec<(u32, u32)>,
}

impl Regions {
    /// Whether token index `i` falls in test code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test.iter().any(|&(a, b)| a <= i && i <= b)
    }

    /// Whether token index `i` falls under a feature gate.
    pub fn in_feature_gated(&self, i: usize) -> bool {
        self.feature_gated.iter().any(|&(a, b)| a <= i && i <= b)
    }

    /// Names of the functions whose bodies contain token index `i`,
    /// outermost first (closures inherit the named enclosing functions).
    pub fn enclosing_fns(&self, i: usize) -> impl Iterator<Item = &str> {
        self.fns
            .iter()
            .filter(move |f| f.body.0 <= i && i <= f.body.1)
            .map(|f| f.name.as_str())
    }
}

/// Matches `{`/`}` and `[`/`]` pairs; `close_of[i]` is the index of the
/// token closing the bracket opened at `i` (or `usize::MAX`).
fn match_pairs(tokens: &[Token], open: char, close: char) -> Vec<usize> {
    let mut out = vec![usize::MAX; tokens.len()];
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if is_punct(t, open) {
            stack.push(i);
        } else if is_punct(t, close) {
            if let Some(o) = stack.pop() {
                out[o] = i;
            }
        }
    }
    out
}

/// Kinds of attribute relevant to region building.
enum AttrKind {
    Test,
    FeatureGate,
    Other,
}

/// Classifies the attribute tokens between `[` and its matching `]`.
fn classify_attr(tokens: &[Token]) -> AttrKind {
    let mut has_cfg = false;
    let mut has_test = false;
    let mut has_feature = false;
    let mut has_not = false;
    for t in tokens {
        if let Tok::Ident(s) = &t.tok {
            match s.as_str() {
                "cfg" | "cfg_attr" => has_cfg = true,
                "test" => has_test = true,
                "feature" => has_feature = true,
                "not" => has_not = true,
                _ => {}
            }
        }
    }
    if has_cfg && has_test {
        AttrKind::Test
    } else if has_cfg && has_feature && !has_not {
        // `cfg(not(feature = ...))` is the *absence* of the gated tier —
        // it does not earn the tier's exemptions.
        AttrKind::FeatureGate
    } else if has_test && tokens.len() == 1 {
        // Bare `#[test]`.
        AttrKind::Test
    } else {
        AttrKind::Other
    }
}

/// Builds the region table for a token stream.
pub fn analyze(tokens: &[Token]) -> Regions {
    let braces = match_pairs(tokens, '{', '}');
    let brackets = match_pairs(tokens, '[', ']');
    let mut regions = Regions::default();

    // Attribute-driven regions: `#[...]` followed by an item.
    let mut i = 0;
    while i < tokens.len() {
        if !is_punct(&tokens[i], '#') || i + 1 >= tokens.len() {
            i += 1;
            continue;
        }
        // Inner attributes (`#![...]`) apply to the enclosing scope, not
        // a following item — skip them here.
        let open = if is_punct(&tokens[i + 1], '[') {
            i + 1
        } else {
            i += 1;
            continue;
        };
        let close = brackets[open];
        if close == usize::MAX {
            i += 1;
            continue;
        }
        let kind = classify_attr(&tokens[open + 1..close]);
        // Find where the attributed item ends: skip any further outer
        // attributes, then scan to the item's body `{...}` or to `;`.
        let mut j = close + 1;
        while j + 1 < tokens.len() && is_punct(&tokens[j], '#') && is_punct(&tokens[j + 1], '[') {
            let o = j + 1;
            let c = brackets[o];
            if c == usize::MAX {
                break;
            }
            j = c + 1;
        }
        let mut depth = 0i32;
        let mut end = None;
        let mut k = j;
        while k < tokens.len() {
            match &tokens[k].tok {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('{') if depth == 0 => {
                    end = Some(braces[k]);
                    break;
                }
                Tok::Punct(';') if depth == 0 => {
                    end = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        regions
            .attr_lines
            .push((tokens[i].line, tokens[close].line));
        if let Some(end) = end {
            if end != usize::MAX {
                let span = (i, end);
                match kind {
                    AttrKind::Test => regions.test.push(span),
                    AttrKind::FeatureGate => regions.feature_gated.push(span),
                    AttrKind::Other => {}
                }
            }
        }
        i = close + 1;
    }

    // Named function bodies: `fn name ... {body}`. A lone `fn` with a
    // following `(` is a function-pointer type, not a definition.
    let mut i = 0;
    while i + 1 < tokens.len() {
        if is_ident(&tokens[i], "fn") {
            if let Tok::Ident(name) = &tokens[i + 1].tok {
                let mut depth = 0i32;
                let mut k = i + 2;
                while k < tokens.len() {
                    match &tokens[k].tok {
                        Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                        Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                        Tok::Punct('{') if depth == 0 => {
                            let close = braces[k];
                            if close != usize::MAX {
                                regions.fns.push(FnSpan {
                                    name: name.clone(),
                                    body: (k, close),
                                    decl: i,
                                    is_pub: decl_is_pub(tokens, i),
                                });
                            }
                            break;
                        }
                        // Trait method declaration without a body.
                        Tok::Punct(';') if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        i += 1;
    }
    regions
}

/// Whether the declaration qualifiers directly before the `fn` keyword at
/// token index `i` export the item: a bare `pub` counts, `pub(crate)` /
/// `pub(super)` do not.
fn decl_is_pub(tokens: &[Token], i: usize) -> bool {
    // Walk back over the qualifier window (`pub const unsafe extern "C"`),
    // stopping at the first token that is not a declaration qualifier so a
    // preceding item's `pub` is never picked up.
    let mut j = i;
    while j > 0 {
        let prev = &tokens[j - 1];
        let qualifier = ["const", "unsafe", "async", "extern"]
            .iter()
            .any(|q| is_ident(prev, q))
            || matches!(prev.tok, Tok::Str(_));
        if qualifier {
            j -= 1;
            continue;
        }
        break;
    }
    if j == 0 {
        return false;
    }
    // `pub(crate)`/`pub(super)` end in `)` directly before the window.
    is_ident(&tokens[j - 1], "pub")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regions_of(src: &str) -> (Vec<Token>, Regions) {
        let (tokens, _) = lex(src);
        let r = analyze(&tokens);
        (tokens, r)
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { inner(); } }";
        let (tokens, r) = regions_of(src);
        let inner = tokens.iter().position(|t| is_ident(t, "inner")).unwrap();
        let live = tokens.iter().position(|t| is_ident(t, "live")).unwrap();
        assert!(r.in_test(inner));
        assert!(!r.in_test(live));
    }

    #[test]
    fn bare_test_attribute_marks_the_function() {
        let src = "#[test]\nfn check() { probe(); }\nfn other() { free(); }";
        let (tokens, r) = regions_of(src);
        let probe = tokens.iter().position(|t| is_ident(t, "probe")).unwrap();
        let free = tokens.iter().position(|t| is_ident(t, "free")).unwrap();
        assert!(r.in_test(probe));
        assert!(!r.in_test(free));
    }

    #[test]
    fn feature_gate_covers_the_item() {
        let src =
            "#[cfg(feature = \"parallel\")]\nfn par() { spawn_here(); }\nfn serial() { stay(); }";
        let (tokens, r) = regions_of(src);
        let spawn = tokens
            .iter()
            .position(|t| is_ident(t, "spawn_here"))
            .unwrap();
        let stay = tokens.iter().position(|t| is_ident(t, "stay")).unwrap();
        assert!(r.in_feature_gated(spawn));
        assert!(!r.in_feature_gated(stay));
    }

    #[test]
    fn enclosing_fns_nest_through_closures() {
        let src = "fn from_bytes() { let f = |x: usize| { deep(x) }; f(1) }";
        let (tokens, r) = regions_of(src);
        let deep = tokens.iter().position(|t| is_ident(t, "deep")).unwrap();
        let names: Vec<&str> = r.enclosing_fns(deep).collect();
        assert_eq!(names, vec!["from_bytes"]);
    }

    #[test]
    fn stacked_attributes_reach_the_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod m { fn t() { x(); } }";
        let (tokens, r) = regions_of(src);
        let x = tokens.iter().position(|t| is_ident(t, "x")).unwrap();
        assert!(r.in_test(x));
    }
}
