//! Conformance-coverage cross-check (`coverage_conformance`).
//!
//! Three sources of truth must agree, and this rule re-derives each from
//! source tokens instead of trusting a generated artifact:
//!
//! 1. the **exported collective surface** — every `pub fn *all_reduce*`
//!    in the collectives crate, with `_scratch`/`_traced` allocation
//!    twins folded into their base entry;
//! 2. the **conformance matrix** — the dense/sparse tag arrays in
//!    `expected_pairings()` crossed with the `COMPRESSORS` list
//!    (the 84-pairing matrix `BENCH_conformance.json` snapshots);
//! 3. the **oracle dispatch** — the match arms of `oracle::run`.
//!
//! Findings: an exported collective whose derived tag is neither in the
//! matrix nor exercised by a bench harness; a matrix tag without an
//! oracle arm; an oracle arm without a matrix registration. Deleting any
//! one registration (tag, arm, or harness call) therefore turns the lint
//! job red instead of silently shrinking coverage.

use crate::lexer::{is_ident, is_punct, Tok};
use crate::symbols::SymbolTable;
use crate::{FileUnit, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// What the pass extracted, exported as self-metrics and for tests.
#[derive(Debug, Default)]
pub struct CoverageStats {
    /// Dense tags (paired with `-`).
    pub dense_tags: usize,
    /// Sparse tags (crossed with every compressor).
    pub sparse_tags: usize,
    /// Compressors in the corpus list.
    pub compressors: usize,
}

impl CoverageStats {
    /// Total pairing count the matrix enumerates.
    pub fn pairings(&self) -> usize {
        self.dense_tags + self.sparse_tags * self.compressors
    }
}

/// One string-literal occurrence with its source line.
#[derive(Debug, Clone)]
struct TagAt {
    tag: String,
    line: u32,
}

/// Collects the matrix tags from `expected_pairings`: string literals in
/// the body. The dense array is pushed with the `"-"` placeholder, so the
/// `"-"` literal splits the body — tags before it are dense, tags after it
/// are sparse (they cross with `COMPRESSORS`).
fn matrix_tags(units: &[FileUnit], table: &SymbolTable) -> Option<(Vec<TagAt>, Vec<TagAt>)> {
    let idx = table
        .by_name
        .get("expected_pairings")?
        .iter()
        .copied()
        .find(|&i| !table.fns[i].in_test)?;
    let sym = &table.fns[idx];
    let unit = &units[sym.file];
    let (start, end) = sym.body;
    let mut dense = Vec::new();
    let mut sparse = Vec::new();
    let mut seen_dash = false;
    for i in start..=end {
        if let Tok::Str(s) = &unit.tokens[i].tok {
            if s == "-" {
                seen_dash = true;
                continue;
            }
            let at = TagAt {
                tag: s.clone(),
                line: unit.tokens[i].line,
            };
            if seen_dash {
                sparse.push(at);
            } else {
                dense.push(at);
            }
        }
    }
    Some((dense, sparse))
}

/// Counts the corpus `COMPRESSORS` list (string literals between the
/// const's `=` and its `;`).
fn compressor_count(units: &[FileUnit]) -> usize {
    for unit in units {
        if !unit.rel_path.ends_with("conformance/src/corpus.rs") {
            continue;
        }
        let toks = &unit.tokens;
        for i in 0..toks.len() {
            if !is_ident(&toks[i], "COMPRESSORS") {
                continue;
            }
            let mut n = 0usize;
            for t in toks.iter().skip(i + 1) {
                match &t.tok {
                    Tok::Punct(';') => return n,
                    Tok::Str(_) => n += 1,
                    _ => {}
                }
            }
        }
    }
    0
}

/// The oracle dispatch arms: string literals in `oracle::run`'s body that
/// are match patterns (followed by `=>` or `|`).
fn oracle_arms(units: &[FileUnit], table: &SymbolTable) -> BTreeMap<String, u32> {
    let mut arms = BTreeMap::new();
    let Some(run_idx) = table.by_name.get("run").and_then(|c| {
        c.iter().copied().find(|&i| {
            !table.fns[i].in_test && table.fns[i].path.ends_with("conformance/src/oracle.rs")
        })
    }) else {
        return arms;
    };
    let sym = &table.fns[run_idx];
    let unit = &units[sym.file];
    let toks = &unit.tokens;
    let (start, end) = sym.body;
    for i in start..=end {
        let Tok::Str(s) = &toks[i].tok else { continue };
        let arrow = matches!(toks.get(i + 1), Some(n) if is_punct(n, '='))
            && matches!(toks.get(i + 2), Some(n) if is_punct(n, '>'));
        let alt = matches!(toks.get(i + 1), Some(n) if is_punct(n, '|'));
        if arrow || alt {
            arms.entry(s.clone()).or_insert(toks[i].line);
        }
    }
    arms
}

/// Maps one exported collective fn name to the matrix tags that cover it.
/// Returns `None` for names outside the tag grammar (helpers).
fn tags_for(name: &str) -> Option<Vec<String>> {
    // Allocation/tracing twins are covered through their base entry.
    let mut base = name.to_string();
    while let Some(p) = base
        .strip_suffix("_scratch")
        .or_else(|| base.strip_suffix("_traced"))
    {
        base = p.to_string();
    }
    if base == "sparse_all_reduce_naive" {
        return Some(vec!["naiveag".to_string()]);
    }
    if base == "quantized_all_reduce" {
        return Some(
            ["qsgd", "terngrad", "scaledsign"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
    }
    let (prefix, rest) = base.split_once("_all_reduce")?;
    let prefix = match prefix {
        "ok_sparse" => "oksparse",
        p => p,
    };
    let mods: Vec<&str> = rest
        .trim_start_matches('_')
        .split('_')
        .filter(|m| !m.is_empty())
        .map(|m| if m == "resilient" { "res" } else { m })
        .collect();
    let tag = if mods.is_empty() {
        prefix.to_string()
    } else {
        format!("{prefix}_{}", mods.join("_"))
    };
    Some(vec![tag])
}

/// Runs the coverage cross-check. `collectives_crate` names the crate
/// whose exported surface is checked; `harness_prefixes` are path
/// prefixes whose files count as exercising a collective by naming it.
pub fn check(
    units: &[FileUnit],
    table: &SymbolTable,
    collectives_crate: &str,
    harness_prefixes: &[String],
    findings: &mut Vec<Finding>,
) -> CoverageStats {
    let mut stats = CoverageStats::default();
    let Some((dense, sparse)) = matrix_tags(units, table) else {
        return stats;
    };
    stats.dense_tags = dense.len();
    stats.sparse_tags = sparse.len();
    stats.compressors = compressor_count(units);
    let matrix: BTreeMap<&str, u32> = dense
        .iter()
        .chain(sparse.iter())
        .map(|t| (t.tag.as_str(), t.line))
        .collect();
    let arms = oracle_arms(units, table);

    // Harness mentions: identifiers occurring in bench/gauntlet sources.
    let mut harness_names: BTreeSet<&str> = BTreeSet::new();
    for unit in units {
        if !harness_prefixes
            .iter()
            .any(|p| unit.rel_path.starts_with(p.as_str()))
        {
            continue;
        }
        for t in &unit.tokens {
            if let Tok::Ident(n) = &t.tok {
                harness_names.insert(n.as_str());
            }
        }
    }

    // Check 1: every exported collective entry is registered or exercised.
    let mut claimed: BTreeSet<String> = BTreeSet::new();
    for idx in table.crate_fns(collectives_crate) {
        let sym = &table.fns[idx];
        if !sym.is_pub || !sym.name.contains("all_reduce") {
            continue;
        }
        let Some(tags) = tags_for(&sym.name) else {
            continue;
        };
        let registered = tags.iter().any(|t| matrix.contains_key(t.as_str()));
        for t in &tags {
            claimed.insert(t.clone());
        }
        if !registered && !harness_names.contains(sym.name.as_str()) {
            findings.push(Finding {
                rule: "coverage_conformance",
                path: sym.path.clone(),
                line: sym.line,
                message: format!(
                    "exported collective `{}` has no conformance registration (expected tag \
                     `{}`) and no bench/gauntlet harness exercises it — add an oracle pairing \
                     or a harness case",
                    sym.name, tags[0]
                ),
            });
        }
    }
    // Bucketed execution drives the same collective through the fusion
    // bucket scheduler; the tag is claimed by the base entry.
    for base in ["tree", "torus"] {
        if claimed.contains(base) {
            claimed.insert(format!("{base}_bucketed"));
        }
    }

    // Check 2: every matrix tag is claimed by an exported collective and
    // has an oracle dispatch arm.
    let report_path = table
        .by_name
        .get("expected_pairings")
        .and_then(|c| c.first())
        .map(|&i| table.fns[i].path.clone())
        .unwrap_or_default();
    for (tag, line) in &matrix {
        if !claimed.contains(*tag) {
            findings.push(Finding {
                rule: "coverage_conformance",
                path: report_path.clone(),
                line: *line,
                message: format!(
                    "conformance tag `{tag}` is not claimed by any exported collective — \
                     stale registration or a renamed entry point"
                ),
            });
        }
        if !arms.contains_key(*tag) {
            findings.push(Finding {
                rule: "coverage_conformance",
                path: report_path.clone(),
                line: *line,
                message: format!(
                    "conformance tag `{tag}` has no dispatch arm in oracle::run — the matrix \
                     promises a pairing the oracle cannot execute"
                ),
            });
        }
    }

    // Check 3: every oracle arm is a registered tag (deleting a matrix
    // registration while the arm survives is exactly the silent-shrink
    // case this rule exists for).
    let oracle_path = table
        .by_name
        .get("run")
        .and_then(|c| {
            c.iter()
                .find(|&&i| table.fns[i].path.ends_with("conformance/src/oracle.rs"))
        })
        .map(|&i| table.fns[i].path.clone())
        .unwrap_or_default();
    for (arm, line) in &arms {
        if !matrix.contains_key(arm.as_str()) {
            findings.push(Finding {
                rule: "coverage_conformance",
                path: oracle_path.clone(),
                line: *line,
                message: format!(
                    "oracle::run dispatches `{arm}` but expected_pairings does not register \
                     it — the case would never be enumerated"
                ),
            });
        }
    }
    stats
}
