//! Hand-rolled Rust token scanner.
//!
//! The rules operate on a token stream, never on raw text, so string
//! literals, char literals, and comments can never produce false positives
//! (a `"unwrap"` in a message is a [`Tok::Str`], not an identifier).
//! Comments are collected separately with their line numbers — that is
//! where inline suppressions live (see [`crate::suppress`]).
//!
//! The scanner understands exactly as much of the lexical grammar as the
//! rules need: identifiers, lifetimes vs. char literals, cooked / raw /
//! byte strings, nested block comments, and numeric literals (with radix
//! prefixes, underscores, exponents, and type suffixes). Multi-character
//! operators are emitted as single punctuation tokens (`::` is two
//! [`Tok::Punct`] colons); the rule patterns are written against that.

/// One lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (the rules tell them apart by spelling).
    Ident(String),
    /// Integer literal (lexeme as written, suffix included).
    Int(String),
    /// Floating-point literal.
    Float,
    /// String literal of any flavour (cooked/raw/byte), inner text.
    Str(String),
    /// Character or byte literal.
    Char,
    /// Lifetime such as `'a` or `'_`.
    Life,
    /// A single punctuation character.
    Punct(char),
}

/// A token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// A comment (line or block) with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line number of the comment's first character.
    pub line: u32,
}

/// Whether `c` can start an identifier.
fn ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Whether `c` can continue an identifier.
fn ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scanner state over the source characters.
struct Scanner<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars().peekable(),
            line: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Consumes a cooked string body after the opening quote; returns the
    /// inner text. Handles `\"` and `\\` escapes; unterminated strings end
    /// at EOF (the lint keeps going — rustc will reject the file anyway).
    fn cooked_string(&mut self, quote: char) -> String {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push('\\');
                        text.push(esc);
                    }
                }
                c if c == quote => break,
                c => text.push(c),
            }
        }
        text
    }

    /// Consumes a raw string after `r`/`br`, given the number of leading
    /// `#` marks already seen is zero; reads `#`* `"` ... `"` `#`*.
    fn raw_string(&mut self) -> String {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            self.bump();
            hashes += 1;
        }
        if self.peek() != Some('"') {
            return String::new(); // not actually a raw string; be lenient
        }
        self.bump();
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A closing quote must be followed by `hashes` marks.
                let mut seen = 0usize;
                while seen < hashes && self.peek() == Some('#') {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break 'outer;
                }
                text.push('"');
                for _ in 0..seen {
                    text.push('#');
                }
            } else {
                text.push(c);
            }
        }
        text
    }

    /// Consumes a numeric literal starting with `first`; returns the token.
    fn number(&mut self, first: char) -> Tok {
        let mut lexeme = String::new();
        lexeme.push(first);
        let radix_prefixed =
            first == '0' && matches!(self.peek(), Some('x') | Some('o') | Some('b') | Some('X'));
        if radix_prefixed {
            lexeme.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() || c == '_' {
                    lexeme.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            // Type suffix (u32, usize, ...).
            while let Some(c) = self.peek() {
                if ident_cont(c) {
                    self.bump();
                } else {
                    break;
                }
            }
            return Tok::Int(lexeme);
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                lexeme.push(c);
                self.bump();
            } else if c == '.' {
                // `1..4` is a range, `1.f()` a method call — only a digit
                // after the dot makes this a float.
                let mut ahead = self.chars.clone();
                ahead.next();
                match ahead.peek() {
                    Some(d) if d.is_ascii_digit() => {
                        is_float = true;
                        lexeme.push(c);
                        self.bump();
                    }
                    _ => break,
                }
            } else if c == 'e' || c == 'E' {
                let mut ahead = self.chars.clone();
                ahead.next();
                match ahead.peek() {
                    Some(d) if d.is_ascii_digit() || *d == '+' || *d == '-' => {
                        is_float = true;
                        self.bump();
                        self.bump();
                        while let Some(c) = self.peek() {
                            if c.is_ascii_digit() || c == '_' {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                        break;
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        // Type suffix: f32 makes it a float, integer suffixes keep Int.
        let mut suffix = String::new();
        while let Some(c) = self.peek() {
            if ident_cont(c) {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if is_float || suffix.starts_with('f') {
            Tok::Float
        } else {
            Tok::Int(lexeme)
        }
    }
}

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let mut sc = Scanner::new(src);
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    while let Some(c) = sc.peek() {
        let line = sc.line;
        match c {
            c if c.is_whitespace() => {
                sc.bump();
            }
            '/' => {
                sc.bump();
                match sc.peek() {
                    Some('/') => {
                        let mut text = String::new();
                        while let Some(c) = sc.peek() {
                            if c == '\n' {
                                break;
                            }
                            text.push(c);
                            sc.bump();
                        }
                        comments.push(Comment { text, line });
                    }
                    Some('*') => {
                        sc.bump();
                        let mut depth = 1usize;
                        let mut text = String::new();
                        while depth > 0 {
                            match sc.bump() {
                                Some('*') if sc.peek() == Some('/') => {
                                    sc.bump();
                                    depth -= 1;
                                }
                                Some('/') if sc.peek() == Some('*') => {
                                    sc.bump();
                                    depth += 1;
                                }
                                Some(c) => text.push(c),
                                None => break,
                            }
                        }
                        comments.push(Comment { text, line });
                    }
                    _ => tokens.push(Token {
                        tok: Tok::Punct('/'),
                        line,
                    }),
                }
            }
            '"' => {
                sc.bump();
                let text = sc.cooked_string('"');
                tokens.push(Token {
                    tok: Tok::Str(text),
                    line,
                });
            }
            '\'' => {
                sc.bump();
                match sc.peek() {
                    Some('\\') => {
                        // Escaped char literal: consume escape + closing quote.
                        sc.bump();
                        sc.bump();
                        while let Some(c) = sc.peek() {
                            sc.bump();
                            if c == '\'' {
                                break;
                            }
                        }
                        tokens.push(Token {
                            tok: Tok::Char,
                            line,
                        });
                    }
                    Some(c) if ident_start(c) => {
                        sc.bump();
                        if sc.peek() == Some('\'') {
                            sc.bump();
                            tokens.push(Token {
                                tok: Tok::Char,
                                line,
                            });
                        } else {
                            while let Some(c) = sc.peek() {
                                if ident_cont(c) {
                                    sc.bump();
                                } else {
                                    break;
                                }
                            }
                            tokens.push(Token {
                                tok: Tok::Life,
                                line,
                            });
                        }
                    }
                    Some(_) => {
                        // `'x'` with a non-ident char (digits, punctuation).
                        sc.bump();
                        if sc.peek() == Some('\'') {
                            sc.bump();
                        }
                        tokens.push(Token {
                            tok: Tok::Char,
                            line,
                        });
                    }
                    None => {}
                }
            }
            c if c.is_ascii_digit() => {
                sc.bump();
                let tok = sc.number(c);
                tokens.push(Token { tok, line });
            }
            c if ident_start(c) => {
                let mut name = String::new();
                name.push(c);
                sc.bump();
                while let Some(c) = sc.peek() {
                    if ident_cont(c) {
                        name.push(c);
                        sc.bump();
                    } else {
                        break;
                    }
                }
                // String/char prefixes: r"", r#""#, b"", br"", b''.
                match (name.as_str(), sc.peek()) {
                    ("r" | "br" | "rb", Some('"') | Some('#')) => {
                        let text = sc.raw_string();
                        tokens.push(Token {
                            tok: Tok::Str(text),
                            line,
                        });
                    }
                    ("b", Some('"')) => {
                        sc.bump();
                        let text = sc.cooked_string('"');
                        tokens.push(Token {
                            tok: Tok::Str(text),
                            line,
                        });
                    }
                    ("b", Some('\'')) => {
                        sc.bump();
                        if sc.peek() == Some('\\') {
                            sc.bump();
                            sc.bump();
                        } else {
                            sc.bump();
                        }
                        if sc.peek() == Some('\'') {
                            sc.bump();
                        }
                        tokens.push(Token {
                            tok: Tok::Char,
                            line,
                        });
                    }
                    _ => tokens.push(Token {
                        tok: Tok::Ident(name),
                        line,
                    }),
                }
            }
            c => {
                sc.bump();
                tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
            }
        }
    }
    (tokens, comments)
}

/// Whether token `t` is the identifier `name`.
pub fn is_ident(t: &Token, name: &str) -> bool {
    matches!(&t.tok, Tok::Ident(s) if s == name)
}

/// Whether token `t` is the punctuation `p`.
pub fn is_punct(t: &Token, p: char) -> bool {
    matches!(&t.tok, Tok::Punct(c) if *c == p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // unwrap in a comment
            /* and unwrap in /* a nested */ block */
            let x = "unwrap()"; let y = r#"expect"#; let z = b"panic";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let (_, comments) = lex("let a = 1;\n// hello\nlet b = 2; // tail\n");
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].line, 2);
        assert!(comments[0].text.contains("hello"));
        assert_eq!(comments[1].line, 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lives = toks.iter().filter(|t| t.tok == Tok::Life).count();
        let chars = toks.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(lives, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let (toks, _) = lex("let a = 0xff_u32; let b = 1.5e3; let c = 1..4; let d = 2usize;");
        let ints: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.tok, Tok::Int(_)))
            .collect();
        let floats = toks.iter().filter(|t| t.tok == Tok::Float).count();
        // 0xff_u32, 1, 4, 2usize are ints; 1.5e3 is the only float.
        assert_eq!(ints.len(), 4);
        assert_eq!(floats, 1);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let (toks, _) = lex("let a = \"x\ny\nz\";\nlet b = 1;");
        let b = toks.iter().find(|t| is_ident(t, "b")).unwrap();
        assert_eq!(b.line, 4);
    }
}
