//! `cloudtrain-lint` — determinism & safety static analyzer for the
//! cloudtrain workspace.
//!
//! Every plane of the reproduction stakes its correctness on byte-stable
//! determinism: the CI gauntlet `cmp`s twice-run traces, the obs plane
//! exports `{:.9e}` JSONL, and the paper's figures are only meaningful if
//! two same-seed runs emit identical bytes. This crate makes the
//! conventions machine-checked. It walks every `crates/*/src` file with a
//! hand-rolled lexer (no registry deps, consistent with the `shims/`
//! policy) and enforces the rules listed in [`RULES`] — see
//! [`rules`] for what each protects.
//!
//! The analyzer's own report is held to the same bar: file walk order,
//! finding order, and every formatted byte are deterministic, so CI runs
//! it twice and `cmp`s the output.
//!
//! Findings can be waived two ways:
//! * inline, with a documented suppression comment — see [`suppress`];
//! * via the shrink-only `lint-baseline.toml` — see [`baseline`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod coverage;
pub mod dataflow;
pub mod explain;
pub mod lexer;
pub mod regions;
pub mod rules;
pub mod suppress;
pub mod symbols;
pub mod twins;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use baseline::Baseline;
use rules::FileCtx;

/// Every rule the analyzer knows, in report order. The first block are
/// per-file token rules; `twin_drift` through `float_determinism` are the
/// workspace passes over the symbol table / call graph; `suppression` and
/// `baseline` are meta-rules for malformed waivers.
pub const RULES: &[&str] = &[
    "wall_clock",
    "unordered_iter",
    "panic_free",
    "checked_decode",
    "feature_gate",
    "ambient",
    "forbid_unsafe",
    "twin_drift",
    "coverage_conformance",
    "cast_flow",
    "float_determinism",
    "suppression",
    "baseline",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number (0 for file/workspace-level findings).
    pub line: u32,
    /// Human-readable description with the suggested fix.
    pub message: String,
}

/// Rule configuration. The default matches the cloudtrain workspace; the
/// fixture tests narrow or widen it per case.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose library code must be panic-free (rule `panic_free`).
    pub panic_free_crates: Vec<String>,
    /// Crates whose `lib.rs` must `#![forbid(unsafe_code)]`.
    pub forbid_unsafe_crates: Vec<String>,
    /// Path prefixes exempt from `wall_clock` and `ambient` (bench
    /// binaries time real kernels and may parallelise; their output is
    /// gated by the twice-run `cmp` in CI instead).
    pub wall_clock_allow_prefixes: Vec<String>,
    /// Workspace-relative path prefixes the walker skips entirely —
    /// checked-in data corpora (e.g. the conformance seed corpus) are
    /// inputs to harnesses, not source code, and must never influence
    /// lint output. Matched against `/`-separated relative paths.
    pub excluded_path_prefixes: Vec<String>,
    /// Crates whose suffix twin families are held to the declared rewrite
    /// sets (rule `twin_drift`).
    pub twin_crates: Vec<String>,
    /// Crates whose float reductions must go through the sanctioned
    /// fixed-shape kernels (rule `float_determinism`).
    pub float_crates: Vec<String>,
    /// The crate whose exported `*all_reduce*` surface is cross-checked
    /// against the conformance matrix (rule `coverage_conformance`).
    pub collectives_crate: String,
    /// Path prefixes of bench/gauntlet harnesses: naming a collective in
    /// one of these files counts as exercising it.
    pub harness_path_prefixes: Vec<String>,
    /// When set, only this rule's findings are reported and workspace
    /// passes for other rules are skipped entirely (the CLI's `--rule`
    /// filter; CI uses it for per-rule timing rows).
    pub only_rule: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        let owned = |names: &[&str]| names.iter().map(|s| s.to_string()).collect();
        Self {
            panic_free_crates: owned(&[
                "cloudtrain-collectives",
                "cloudtrain-compress",
                "cloudtrain-datacache",
                "cloudtrain-engine",
                "cloudtrain-simnet",
                "cloudtrain-obs",
            ]),
            forbid_unsafe_crates: owned(&[
                "cloudtrain",
                "cloudtrain-compress",
                "cloudtrain-collectives",
                "cloudtrain-datacache",
                "cloudtrain-obs",
                "cloudtrain-simnet",
                "cloudtrain-optim",
                "cloudtrain-pto",
                "cloudtrain-conformance",
            ]),
            wall_clock_allow_prefixes: owned(&["crates/bench/src/bin/"]),
            excluded_path_prefixes: owned(&["crates/conformance/corpus/"]),
            twin_crates: owned(&["cloudtrain-collectives"]),
            float_crates: owned(&["cloudtrain-tensor", "cloudtrain-compress"]),
            collectives_crate: "cloudtrain-collectives".to_string(),
            harness_path_prefixes: owned(&["crates/bench/src/bin/"]),
            only_rule: None,
        }
    }
}

/// Per-file lint result.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Findings that survived inline suppressions.
    pub findings: Vec<Finding>,
    /// Number of findings waived by valid inline suppressions.
    pub suppressed: usize,
}

/// One file's source text plus crate metadata, as handed to [`run_files`].
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Full source text.
    pub src: String,
    /// Owning crate's `package.name`.
    pub crate_name: String,
    /// Feature names the owning crate declares.
    pub features: Vec<String>,
}

/// A lexed and region-analyzed file — the unit the workspace passes
/// (symbol table, call graph, twin/coverage/dataflow rules) share.
#[derive(Debug)]
pub struct FileUnit {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Owning crate's `package.name`.
    pub crate_name: String,
    /// Feature names the owning crate declares.
    pub features: Vec<String>,
    /// Token stream.
    pub tokens: Vec<lexer::Token>,
    /// Comments (suppression carriers).
    pub comments: Vec<lexer::Comment>,
    /// Region analysis over `tokens`.
    pub regions: regions::Regions,
}

/// Lints one file's source text with the per-file rules only (the
/// workspace passes need the whole unit list; see [`run_files`]).
///
/// `crate_name` and `features` come from the owning crate's `Cargo.toml`;
/// `rel_path` should be workspace-relative with `/` separators (it is
/// matched against the config's path allowlists and reported verbatim).
pub fn lint_source(
    rel_path: &str,
    src: &str,
    crate_name: &str,
    features: &[String],
    config: &Config,
) -> FileLint {
    let (tokens, comments) = lexer::lex(src);
    let regions = regions::analyze(&tokens);
    let ctx = FileCtx {
        path: rel_path,
        crate_name,
        features,
        tokens: &tokens,
        regions: &regions,
        config,
    };
    let findings = rules::run_all(&ctx);
    let (sup, mut bad) = suppress::parse(rel_path, &comments, RULES);
    let (mut kept, suppressed) = suppress::apply(findings, &sup, &regions.attr_lines);
    kept.append(&mut bad);
    FileLint {
        findings: kept,
        suppressed,
    }
}

/// The aggregate result of a workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings after suppressions and baseline, sorted by
    /// `(path, line, rule, message)`.
    pub findings: Vec<Finding>,
    /// Findings waived by inline suppressions.
    pub suppressed: usize,
    /// Findings absorbed by the baseline.
    pub baselined: usize,
    /// Files scanned.
    pub files: usize,
    /// Crates scanned.
    pub crates: usize,
    /// Functions the symbol table indexed.
    pub symbols: usize,
    /// Call sites that resolved to a workspace symbol.
    pub call_edges: usize,
    /// Twin pairs discovered and compared by `twin_drift`.
    pub twin_families: usize,
    /// Conformance pairings the coverage pass re-derived from source.
    pub pairings: usize,
}

impl Report {
    /// Whether the run is clean (no findings survived).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
        });
        // Two textually identical sinks on one line are one defect.
        self.findings.dedup();
    }

    /// Human-readable report table, byte-stable across runs.
    pub fn table(&self) -> String {
        let mut out = format!(
            "cloudtrain-lint: {} finding(s) across {} file(s) in {} crate(s) \
             ({} suppressed inline, {} baselined)\n\
             analyzer: {} symbols, {} resolved call edges, {} twin families, \
             {} conformance pairings\n",
            self.findings.len(),
            self.files,
            self.crates,
            self.suppressed,
            self.baselined,
            self.symbols,
            self.call_edges,
            self.twin_families,
            self.pairings
        );
        if !self.findings.is_empty() {
            out.push_str(&format!(
                "{:<15} {:<48} {}\n",
                "rule", "location", "message"
            ));
            for f in &self.findings {
                out.push_str(&format!(
                    "{:<15} {:<48} {}\n",
                    f.rule,
                    format!("{}:{}", f.path, f.line),
                    f.message
                ));
            }
        }
        out
    }

    /// Byte-stable JSONL export: summary counters in the
    /// `cloudtrain-obs` registry format, then one `finding` object per
    /// line in sorted order.
    pub fn to_jsonl(&self) -> String {
        let mut reg = cloudtrain_obs::Registry::new();
        reg.counter_add("lint/baselined", self.baselined as u64);
        reg.counter_add("lint/call_edges", self.call_edges as u64);
        reg.counter_add("lint/crates", self.crates as u64);
        reg.counter_add("lint/files", self.files as u64);
        reg.counter_add("lint/findings", self.findings.len() as u64);
        reg.counter_add("lint/pairings", self.pairings as u64);
        reg.counter_add("lint/suppressed", self.suppressed as u64);
        reg.counter_add("lint/symbols", self.symbols as u64);
        reg.counter_add("lint/twin_families", self.twin_families as u64);
        for rule in RULES {
            let n = self.findings.iter().filter(|f| f.rule == *rule).count();
            reg.counter_add(&format!("lint/rule/{rule}"), n as u64);
        }
        let mut out = reg.to_jsonl();
        for f in &self.findings {
            out.push_str(&format!(
                "{{\"type\":\"finding\",\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}\n",
                escape(f.rule),
                escape(&f.path),
                f.line,
                escape(&f.message)
            ));
        }
        out
    }
}

/// JSON string escaping, matching the `cloudtrain-obs` export convention.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Error from a workspace run (I/O or malformed metadata).
#[derive(Debug)]
pub struct LintError(pub String);

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LintError {}

/// Package metadata the walker extracts from a crate's `Cargo.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrateMeta {
    /// The `package.name` value.
    pub name: String,
    /// Names declared under `[features]`.
    pub features: Vec<String>,
}

/// Parses the small slice of `Cargo.toml` the lint needs: the package
/// name and the declared feature names.
pub fn parse_manifest(text: &str) -> CrateMeta {
    let mut meta = CrateMeta::default();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.to_string();
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            if section == "[package]" && key == "name" {
                meta.name = value.trim().trim_matches('"').to_string();
            } else if section == "[features]" && !key.is_empty() && !key.starts_with('#') {
                meta.features.push(key.to_string());
            }
        }
    }
    meta
}

/// Recursively collects `.rs` files under `dir` in sorted order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| LintError(format!("read {}: {e}", dir.display())))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full analyzer — per-file rules, then the workspace passes
/// (symbol table, call graph, twin drift, conformance coverage, dataflow)
/// — over an in-memory file set. This is the core both
/// [`run_workspace_with`] and the fixture tests drive; it never touches
/// the filesystem, so tests can lint mutated copies of real sources.
///
/// Baseline absorption is the caller's job (the baseline lives next to
/// the real workspace root); the returned report has `baselined == 0`.
pub fn run_files(inputs: &[FileInput], config: &Config) -> Report {
    let mut report = Report::default();
    let mut findings = Vec::new();

    // Lex + region-analyze every file once; the units are shared by the
    // per-file rules and every workspace pass.
    let mut units: Vec<FileUnit> = Vec::with_capacity(inputs.len());
    for input in inputs {
        let (tokens, comments) = lexer::lex(&input.src);
        let regions = regions::analyze(&tokens);
        units.push(FileUnit {
            rel_path: input.rel_path.clone(),
            crate_name: input.crate_name.clone(),
            features: input.features.clone(),
            tokens,
            comments,
            regions,
        });
    }
    report.files = units.len();
    report.crates = {
        let mut names: Vec<&str> = units.iter().map(|u| u.crate_name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    };

    // Per-file stage, keeping each file's parsed suppressions for the
    // workspace findings below.
    let mut waivers: Vec<Vec<suppress::Suppression>> = Vec::with_capacity(units.len());
    for unit in &units {
        let ctx = FileCtx {
            path: &unit.rel_path,
            crate_name: &unit.crate_name,
            features: &unit.features,
            tokens: &unit.tokens,
            regions: &unit.regions,
            config,
        };
        let file_findings = rules::run_all(&ctx);
        let (sup, mut bad) = suppress::parse(&unit.rel_path, &unit.comments, RULES);
        let (mut kept, suppressed) = suppress::apply(file_findings, &sup, &unit.regions.attr_lines);
        report.suppressed += suppressed;
        kept.append(&mut bad);
        findings.extend(kept);
        waivers.push(sup);
    }

    // Workspace stage.
    let table = symbols::SymbolTable::build(&units);
    let graph = callgraph::CallGraph::build(&units, &table);
    report.symbols = table.fns.len();
    report.call_edges = graph.resolved_edges;

    let wants = |rule: &str| config.only_rule.as_deref().is_none_or(|r| r == rule);
    let mut ws_findings = Vec::new();
    if wants("twin_drift") {
        let twin_stats = twins::check(&table, &graph, &config.twin_crates, &mut ws_findings);
        report.twin_families = twin_stats.families;
    }
    if wants("coverage_conformance") {
        let cov_stats = coverage::check(
            &units,
            &table,
            &config.collectives_crate,
            &config.harness_path_prefixes,
            &mut ws_findings,
        );
        report.pairings = cov_stats.pairings();
    }
    if wants("cast_flow") {
        dataflow::cast_flow(&units, &table, &mut ws_findings);
    }
    if wants("float_determinism") {
        dataflow::float_determinism(&units, &table, &config.float_crates, &mut ws_findings);
    }

    // Workspace findings honour the same inline suppressions as per-file
    // ones; route each finding through its file's waiver list.
    let unit_index: BTreeMap<&str, usize> = units
        .iter()
        .enumerate()
        .map(|(i, u)| (u.rel_path.as_str(), i))
        .collect();
    let mut by_unit: BTreeMap<usize, Vec<Finding>> = BTreeMap::new();
    for f in ws_findings {
        match unit_index.get(f.path.as_str()) {
            Some(&i) => by_unit.entry(i).or_default().push(f),
            None => findings.push(f),
        }
    }
    for (i, group) in by_unit {
        let (kept, suppressed) = suppress::apply(group, &waivers[i], &units[i].regions.attr_lines);
        report.suppressed += suppressed;
        findings.extend(kept);
    }

    if let Some(rule) = &config.only_rule {
        findings.retain(|f| f.rule == *rule);
    }
    report.findings = findings;
    report.sort();
    report
}

/// Runs the analyzer over a workspace root (the directory holding
/// `crates/` and `lint-baseline.toml`), applying the default [`Config`].
///
/// # Errors
/// Returns a [`LintError`] for I/O failures or a malformed baseline —
/// both fail the run loudly rather than under-linting.
pub fn run_workspace(root: &Path) -> Result<Report, LintError> {
    run_workspace_with(root, &Config::default())
}

/// [`run_workspace`] with an explicit [`Config`] (fixture tests narrow or
/// widen the crate lists and path prefixes per case).
///
/// # Errors
/// Returns a [`LintError`] for I/O failures or a malformed baseline —
/// both fail the run loudly rather than under-linting.
pub fn run_workspace_with(root: &Path, config: &Config) -> Result<Report, LintError> {
    let inputs = collect_workspace(root, config)?;
    let mut report = run_files(&inputs, config);

    let baseline_path = root.join("lint-baseline.toml");
    let baseline = if baseline_path.is_file() {
        let text = fs::read_to_string(&baseline_path)
            .map_err(|e| LintError(format!("read {}: {e}", baseline_path.display())))?;
        Baseline::parse(&text).map_err(LintError)?
    } else {
        Baseline::default()
    };
    let (kept, absorbed) = baseline.apply(std::mem::take(&mut report.findings));
    report.findings = kept;
    report.baselined = absorbed;
    report.sort();
    Ok(report)
}

/// Reads every lintable `.rs` file under `root/crates` into memory, in
/// deterministic (crate, path) order, with its crate metadata attached.
/// Exposed so tests can load the real workspace, mutate one file's text,
/// and re-run [`run_files`] on the altered snapshot.
///
/// # Errors
/// Returns a [`LintError`] for I/O failures.
pub fn collect_workspace(root: &Path, config: &Config) -> Result<Vec<FileInput>, LintError> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| LintError(format!("read {}: {e}", crates_dir.display())))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut inputs = Vec::new();
    for crate_dir in crate_dirs {
        let manifest_path = crate_dir.join("Cargo.toml");
        let src_dir = crate_dir.join("src");
        if !manifest_path.is_file() || !src_dir.is_dir() {
            continue;
        }
        let manifest = fs::read_to_string(&manifest_path)
            .map_err(|e| LintError(format!("read {}: {e}", manifest_path.display())))?;
        let meta = parse_manifest(&manifest);

        let mut files = Vec::new();
        rust_files(&src_dir, &mut files)?;
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if config
                .excluded_path_prefixes
                .iter()
                .any(|p| rel.starts_with(p.as_str()))
            {
                continue;
            }
            let src = fs::read_to_string(&file)
                .map_err(|e| LintError(format!("read {}: {e}", file.display())))?;
            inputs.push(FileInput {
                rel_path: rel,
                src,
                crate_name: meta.name.clone(),
                features: meta.features.clone(),
            });
        }
    }
    Ok(inputs)
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — the root `run_workspace` expects.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parsing_extracts_name_and_features() {
        let toml = "[package]\nname = \"cloudtrain-tensor\"\nversion = \"0.1.0\"\n\n\
                    [features]\nparallel = []\nrayon = [\"parallel\"]\n\n[dependencies]\nx = \"1\"\n";
        let meta = parse_manifest(toml);
        assert_eq!(meta.name, "cloudtrain-tensor");
        assert_eq!(meta.features, vec!["parallel", "rayon"]);
    }

    #[test]
    fn report_jsonl_counts_rules() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: "panic_free",
            path: "crates/x/src/a.rs".to_string(),
            line: 3,
            message: "msg with \"quotes\"".to_string(),
        });
        r.files = 1;
        r.crates = 1;
        let jsonl = r.to_jsonl();
        assert!(jsonl.contains("\"name\":\"lint/rule/panic_free\",\"value\":1"));
        assert!(jsonl.contains("\"type\":\"finding\",\"rule\":\"panic_free\""));
        assert!(jsonl.contains("msg with \\\"quotes\\\""));
        assert!(!r.clean());
        assert!(Report::default().clean());
    }

    #[test]
    fn findings_sort_deterministically() {
        let mk = |path: &str, line, rule: &'static str| Finding {
            rule,
            path: path.to_string(),
            line,
            message: String::new(),
        };
        let mut r = Report {
            findings: vec![
                mk("b.rs", 1, "ambient"),
                mk("a.rs", 9, "ambient"),
                mk("a.rs", 2, "panic_free"),
                mk("a.rs", 2, "ambient"),
            ],
            ..Report::default()
        };
        r.sort();
        let order: Vec<(String, u32, &str)> = r
            .findings
            .iter()
            .map(|f| (f.path.clone(), f.line, f.rule))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 2, "ambient"),
                ("a.rs".to_string(), 2, "panic_free"),
                ("a.rs".to_string(), 9, "ambient"),
                ("b.rs".to_string(), 1, "ambient"),
            ]
        );
    }
}
