//! Shrink-only finding baseline.
//!
//! `lint-baseline.toml` grandfathers findings that existed when a rule was
//! introduced, as `(rule, path, count)` entries. The contract is strictly
//! monotone: an entry may only ever shrink.
//!
//! * more findings than the entry's count → the **excess** findings fail
//!   the run (the baseline does not grow implicitly);
//! * fewer findings than the count → a `baseline` finding fails the run
//!   until the entry is shrunk or removed (stale credit is not allowed to
//!   sit around and absorb future regressions).
//!
//! The file is a deliberately small TOML subset: comments, and
//! `[[allow]]` tables with `rule`, `path`, and `count` keys.

use std::collections::BTreeMap;

use crate::Finding;

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule name the entry covers.
    pub rule: String,
    /// Workspace-relative path the entry covers.
    pub path: String,
    /// Number of grandfathered findings of `rule` in `path`.
    pub count: usize,
}

/// The parsed baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// All entries, in file order.
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Parses the baseline file contents.
    ///
    /// # Errors
    /// Returns a message naming the offending line for anything outside
    /// the supported subset (so a typo fails the run instead of silently
    /// baselining nothing).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries: Vec<Entry> = Vec::new();
        let mut current: Option<(Option<String>, Option<String>, Option<usize>)> = None;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = n + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(open) = current.take() {
                    entries.push(Self::close(open, lineno)?);
                }
                current = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("baseline line {lineno}: expected `key = value`"));
            };
            let Some(open) = current.as_mut() else {
                return Err(format!(
                    "baseline line {lineno}: `{}` outside an [[allow]] table",
                    key.trim()
                ));
            };
            let value = value.trim();
            match key.trim() {
                "rule" => open.0 = Some(Self::unquote(value, lineno)?),
                "path" => open.1 = Some(Self::unquote(value, lineno)?),
                "count" => {
                    open.2 =
                        Some(value.parse().map_err(|_| {
                            format!("baseline line {lineno}: count must be an integer")
                        })?)
                }
                other => {
                    return Err(format!("baseline line {lineno}: unknown key `{other}`"));
                }
            }
        }
        if let Some(open) = current.take() {
            entries.push(Self::close(open, text.lines().count())?);
        }
        Ok(Self { entries })
    }

    fn unquote(v: &str, lineno: usize) -> Result<String, String> {
        v.strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .map(str::to_string)
            .ok_or_else(|| format!("baseline line {lineno}: expected a quoted string"))
    }

    fn close(
        open: (Option<String>, Option<String>, Option<usize>),
        lineno: usize,
    ) -> Result<Entry, String> {
        match open {
            (Some(rule), Some(path), Some(count)) => Ok(Entry { rule, path, count }),
            _ => Err(format!(
                "baseline entry ending at line {lineno}: needs rule, path, and count"
            )),
        }
    }

    /// Applies the baseline: findings covered by remaining entry credit
    /// are absorbed; excess findings are kept; stale entries (credit left
    /// over) become `baseline` findings. Returns `(kept, absorbed)`.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
        let mut credit: BTreeMap<(String, String), usize> = BTreeMap::new();
        for e in &self.entries {
            *credit.entry((e.rule.clone(), e.path.clone())).or_insert(0) += e.count;
        }
        let mut kept = Vec::new();
        let mut absorbed = 0usize;
        for f in findings {
            let key = (f.rule.to_string(), f.path.clone());
            match credit.get_mut(&key) {
                Some(c) if *c > 0 => {
                    *c -= 1;
                    absorbed += 1;
                }
                _ => kept.push(f),
            }
        }
        for ((rule, path), left) in credit {
            if left > 0 {
                kept.push(Finding {
                    rule: "baseline",
                    path: "lint-baseline.toml".to_string(),
                    line: 0,
                    message: format!(
                        "stale baseline: {left} unused allowance(s) for rule `{rule}` in \
                         `{path}` — shrink or remove the entry (the baseline may only shrink)"
                    ),
                });
            }
        }
        (kept, absorbed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 1,
            message: String::new(),
        }
    }

    #[test]
    fn parse_roundtrip() {
        let text = "# comment\n\n[[allow]]\nrule = \"panic_free\"\npath = \"crates/x/src/a.rs\"\ncount = 2\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].rule, "panic_free");
        assert_eq!(b.entries[0].count, 2);
        assert_eq!(Baseline::parse("").unwrap().entries.len(), 0);
        assert_eq!(
            Baseline::parse("# only comments\n").unwrap().entries.len(),
            0
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("rule = \"x\"\n").is_err()); // outside table
        assert!(Baseline::parse("[[allow]]\nrule = \"x\"\n").is_err()); // incomplete
        assert!(Baseline::parse("[[allow]]\nrule = \"x\"\npath = \"p\"\ncount = lots\n").is_err());
        assert!(Baseline::parse("[[allow]]\nbogus = 1\n").is_err());
    }

    #[test]
    fn absorbs_up_to_count_and_keeps_excess() {
        let b = Baseline::parse("[[allow]]\nrule = \"panic_free\"\npath = \"a.rs\"\ncount = 2\n")
            .unwrap();
        let (kept, absorbed) = b.apply(vec![
            finding("panic_free", "a.rs"),
            finding("panic_free", "a.rs"),
            finding("panic_free", "a.rs"),
            finding("ambient", "a.rs"),
        ]);
        assert_eq!(absorbed, 2);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn stale_credit_is_a_finding() {
        let b = Baseline::parse("[[allow]]\nrule = \"panic_free\"\npath = \"a.rs\"\ncount = 3\n")
            .unwrap();
        let (kept, absorbed) = b.apply(vec![finding("panic_free", "a.rs")]);
        assert_eq!(absorbed, 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "baseline");
        assert!(kept[0].message.contains("2 unused"));
    }
}
