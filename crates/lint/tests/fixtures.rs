//! Fixture-driven rule tests: every rule has at least one positive and one
//! negative fixture under `tests/fixtures/`. Fixtures are linted as if they
//! lived in a library crate named `cloudtrain-fixture` that is subject to the
//! panic-free and forbid-unsafe policies.

use cloudtrain_lint::{lint_source, Config, FileLint};

/// Lint one fixture file under a synthetic crate path.
///
/// `rel_path` is the pretend workspace-relative path of the fixture (the
/// rules key off path shape: `src/lib.rs` roots, `src/bin/` mains, bench
/// allowlist prefixes). `features` is the pretend manifest feature list.
fn lint_fixture(name: &str, rel_path: &str, features: &[&str]) -> FileLint {
    let disk = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src =
        std::fs::read_to_string(&disk).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let mut config = Config::default();
    config
        .panic_free_crates
        .push("cloudtrain-fixture".to_string());
    config
        .forbid_unsafe_crates
        .push("cloudtrain-fixture".to_string());
    let features: Vec<String> = features.iter().map(|f| f.to_string()).collect();
    lint_source(rel_path, &src, "cloudtrain-fixture", &features, &config)
}

fn rule_hits(lint: &FileLint, rule: &str) -> usize {
    lint.findings.iter().filter(|f| f.rule == rule).count()
}

const LIB: &str = "crates/fixture/src/module.rs";

#[test]
fn wall_clock_positive_and_negative() {
    let pos = lint_fixture("wall_clock_pos.rs", LIB, &[]);
    assert!(
        rule_hits(&pos, "wall_clock") >= 3,
        "expected Instant::now, SystemTime, and .elapsed() hits: {:?}",
        pos.findings
    );
    let neg = lint_fixture("wall_clock_neg.rs", LIB, &[]);
    assert_eq!(rule_hits(&neg, "wall_clock"), 0, "{:?}", neg.findings);
}

#[test]
fn wall_clock_bench_bins_are_allowlisted() {
    let bench = lint_fixture("wall_clock_pos.rs", "crates/bench/src/bin/wall.rs", &[]);
    assert_eq!(rule_hits(&bench, "wall_clock"), 0, "{:?}", bench.findings);
}

#[test]
fn unordered_iter_positive_and_negative() {
    let pos = lint_fixture("unordered_iter_pos.rs", LIB, &[]);
    assert!(
        rule_hits(&pos, "unordered_iter") >= 2,
        "expected HashMap iter and HashSet into_iter hits: {:?}",
        pos.findings
    );
    let neg = lint_fixture("unordered_iter_neg.rs", LIB, &[]);
    assert_eq!(rule_hits(&neg, "unordered_iter"), 0, "{:?}", neg.findings);
}

#[test]
fn panic_free_positive_and_negative() {
    let pos = lint_fixture("panic_free_pos.rs", LIB, &[]);
    assert!(
        rule_hits(&pos, "panic_free") >= 3,
        "expected unwrap, literal index, and panic! hits: {:?}",
        pos.findings
    );
    let neg = lint_fixture("panic_free_neg.rs", LIB, &[]);
    assert_eq!(rule_hits(&neg, "panic_free"), 0, "{:?}", neg.findings);
    assert_eq!(
        neg.suppressed, 1,
        "the documented expect must count as suppressed, not clean"
    );
}

#[test]
fn panic_free_only_applies_to_listed_crates() {
    let disk = format!(
        "{}/tests/fixtures/panic_free_pos.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let src = std::fs::read_to_string(&disk).expect("fixture readable");
    // Default config: `cloudtrain-fixture` is NOT a panic-free crate.
    let lint = lint_source(LIB, &src, "cloudtrain-fixture", &[], &Config::default());
    assert_eq!(rule_hits(&lint, "panic_free"), 0, "{:?}", lint.findings);
}

#[test]
fn checked_decode_positive_and_negative() {
    let pos = lint_fixture("checked_decode_pos.rs", LIB, &[]);
    assert!(
        rule_hits(&pos, "checked_decode") >= 2,
        "expected `as usize` and unchecked mul/add hits: {:?}",
        pos.findings
    );
    let neg = lint_fixture("checked_decode_neg.rs", LIB, &[]);
    assert_eq!(rule_hits(&neg, "checked_decode"), 0, "{:?}", neg.findings);
}

#[test]
fn feature_gate_positive_and_negative() {
    let pos = lint_fixture("feature_gate_pos.rs", LIB, &["parallel"]);
    assert_eq!(
        rule_hits(&pos, "feature_gate"),
        1,
        "undeclared `warp_drive` must be flagged: {:?}",
        pos.findings
    );
    let neg = lint_fixture("feature_gate_neg.rs", LIB, &["parallel"]);
    assert_eq!(rule_hits(&neg, "feature_gate"), 0, "{:?}", neg.findings);
}

#[test]
fn feature_gate_covers_the_simd_lane_tier() {
    // The simd dispatch shapes the workspace actually uses: attribute
    // gates both ways plus the `cfg!` expression form. All three sites
    // must be flagged when the manifest lacks the feature, and none when
    // it declares it.
    let pos = lint_fixture("feature_gate_simd_pos.rs", LIB, &["parallel"]);
    assert_eq!(
        rule_hits(&pos, "feature_gate"),
        3,
        "undeclared `simd` must be flagged at every cfg site: {:?}",
        pos.findings
    );
    let neg = lint_fixture("feature_gate_simd_neg.rs", LIB, &["parallel", "simd"]);
    assert_eq!(rule_hits(&neg, "feature_gate"), 0, "{:?}", neg.findings);
}

#[test]
fn ambient_positive_and_negative() {
    let pos = lint_fixture("ambient_pos.rs", LIB, &["parallel"]);
    assert!(
        rule_hits(&pos, "ambient") >= 2,
        "expected thread_rng and ungated spawn hits: {:?}",
        pos.findings
    );
    let neg = lint_fixture("ambient_neg.rs", LIB, &["parallel"]);
    assert_eq!(rule_hits(&neg, "ambient"), 0, "{:?}", neg.findings);
}

#[test]
fn probe_timing_must_come_from_the_virtual_clock() {
    // A probe timed off the wall clock trips the rule at all three read
    // sites; the virtual-clock probe is clean.
    let pos = lint_fixture("probe_wall_clock_pos.rs", LIB, &[]);
    assert!(
        rule_hits(&pos, "wall_clock") >= 3,
        "expected Instant::now, SystemTime, and .elapsed() hits: {:?}",
        pos.findings
    );
    let neg = lint_fixture("probe_wall_clock_neg.rs", LIB, &[]);
    assert_eq!(rule_hits(&neg, "wall_clock"), 0, "{:?}", neg.findings);
}

#[test]
fn deadline_jitter_must_be_seeded_and_gated() {
    // Ambient entropy in the jitter draw and an ungated probe thread are
    // both flagged; the seeded + feature-gated twin is clean.
    let pos = lint_fixture("deadline_ambient_pos.rs", LIB, &["parallel"]);
    assert!(
        rule_hits(&pos, "ambient") >= 2,
        "expected thread_rng and ungated spawn hits: {:?}",
        pos.findings
    );
    let neg = lint_fixture("deadline_ambient_neg.rs", LIB, &["parallel"]);
    assert_eq!(rule_hits(&neg, "ambient"), 0, "{:?}", neg.findings);
}

#[test]
fn forbid_unsafe_positive_and_negative() {
    let root = "crates/fixture/src/lib.rs";
    let pos = lint_fixture("lib_forbid_pos.rs", root, &[]);
    assert_eq!(
        rule_hits(&pos, "forbid_unsafe"),
        1,
        "crate root without the attribute must be flagged: {:?}",
        pos.findings
    );
    let neg = lint_fixture("lib_forbid_neg.rs", root, &[]);
    assert_eq!(rule_hits(&neg, "forbid_unsafe"), 0, "{:?}", neg.findings);
    // Non-root files never carry the obligation.
    let module = lint_fixture("lib_forbid_pos.rs", LIB, &[]);
    assert_eq!(
        rule_hits(&module, "forbid_unsafe"),
        0,
        "{:?}",
        module.findings
    );
}

#[test]
fn malformed_suppressions_are_findings_and_do_not_waive() {
    let pos = lint_fixture("suppression_pos.rs", LIB, &[]);
    assert_eq!(
        rule_hits(&pos, "suppression"),
        3,
        "missing reason, empty reason, and unknown rule must each be flagged: {:?}",
        pos.findings
    );
    assert_eq!(
        rule_hits(&pos, "panic_free"),
        3,
        "malformed suppressions must not waive the underlying findings: {:?}",
        pos.findings
    );
    assert_eq!(pos.suppressed, 0);
}
