//! Lexer/suppression edge-case regressions.
//!
//! Two scenarios that historically risk silent suppression loss:
//! a suppression comment on the file's final line when the file has no
//! trailing newline, and suppressions interacting with multi-line
//! `#[cfg(...)]` attribute spans (the `feature = ...` token can sit
//! several lines below the attribute opener, outside the plain
//! same-line/next-line waiver window).

use cloudtrain_lint::{lexer, lint_source, suppress, Config};

#[test]
fn final_line_suppression_without_trailing_newline_still_applies() {
    // Suppression comment on the final line, no trailing newline: the
    // lexer must still emit the comment at EOF and the waiver must apply.
    let src = "fn f(m: &std::collections::HashMap<u32, u32>) {\n    for v in m.values() {} // lint:allow(unordered_iter, reason = \"fixture: order-insensitive fold\")\n}";
    assert!(!src.ends_with('\n'), "fixture must lack a trailing newline");
    let lint = lint_source("crates/x/src/a.rs", src, "x", &[], &Config::default());
    assert_eq!(
        lint.findings,
        [],
        "the unordered_iter finding must be waived"
    );
    assert_eq!(lint.suppressed, 1);
}

#[test]
fn comment_only_final_line_without_newline_is_lexed_and_parsed() {
    let src = "// lint:allow(panic_free, reason = \"fixture\")";
    let (_, comments) = lexer::lex(src);
    assert_eq!(comments.len(), 1, "EOF must terminate the line comment");
    let (ok, bad) = suppress::parse("f.rs", &comments, &["panic_free"]);
    assert!(bad.is_empty());
    assert_eq!(ok.len(), 1);
    assert_eq!(ok[0].rule, "panic_free");
}

#[test]
fn suppression_above_multiline_cfg_attribute_covers_the_span() {
    // The undeclared-feature finding anchors on the `feature` token, two
    // lines below the suppression — inside the attribute span, so the
    // attr-aware waiver window must cover it.
    let src = "// lint:allow(feature_gate, reason = \"fixture: probing an optional dep\")\n#[cfg(\n    feature = \"nope\"\n)]\nfn f() {}\n";
    let lint = lint_source("crates/x/src/a.rs", src, "x", &[], &Config::default());
    assert_eq!(
        lint.findings,
        [],
        "suppression above the attribute must cover the whole span"
    );
    assert_eq!(lint.suppressed, 1);
}

#[test]
fn suppression_inside_multiline_cfg_attribute_covers_the_span() {
    let src = "#[cfg(\n    // lint:allow(feature_gate, reason = \"fixture: probing an optional dep\")\n    feature = \"nope\"\n)]\nfn f() {}\n";
    let lint = lint_source("crates/x/src/a.rs", src, "x", &[], &Config::default());
    assert_eq!(lint.findings, [], "suppression inside the span must apply");
    assert_eq!(lint.suppressed, 1);
}

#[test]
fn unsuppressed_multiline_cfg_attribute_still_fires() {
    // The waiver widening must not eat legitimate findings: with no
    // suppression anywhere, the undeclared feature is still reported.
    let src = "#[cfg(\n    feature = \"nope\"\n)]\nfn f() {}\n";
    let lint = lint_source("crates/x/src/a.rs", src, "x", &[], &Config::default());
    assert_eq!(lint.findings.len(), 1, "{:?}", lint.findings);
    assert_eq!(lint.findings[0].rule, "feature_gate");
    assert_eq!(lint.suppressed, 0);
}
