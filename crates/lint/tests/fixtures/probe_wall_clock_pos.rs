//! Positive fixture: a pairwise probe timed off the wall clock — exactly
//! the drift `probe_pairwise` must avoid (two same-seed probes would
//! disagree, and the deadline budget derived from them would too).

pub fn probe_link(bytes: usize) -> (f64, f64) {
    let t0 = std::time::Instant::now();
    let _epoch = std::time::SystemTime::now();
    let span = t0.elapsed().as_secs_f64();
    (span, span / bytes.max(1) as f64)
}
