//! Negative fixture: the same `simd` dispatch shapes as the positive
//! fixture, linted against a manifest that declares the feature.

#[cfg(feature = "simd")]
pub fn simd_kernels() {}

#[cfg(not(feature = "simd"))]
pub fn scalar_kernels() {}

pub fn lane_tier() -> &'static str {
    if cfg!(feature = "simd") {
        "simd"
    } else {
        "scalar"
    }
}
