//! Negative fixture: seeded RNG, and spawning only behind a declared
//! feature gate.

pub fn seeded(seed: u64) -> u64 {
    let rng = rand::rngs::StdRng::seed_from_u64(seed);
    let _ = rng;
    seed
}

#[cfg(feature = "parallel")]
pub fn parallel_sum() -> i32 {
    let handle = std::thread::spawn(|| 1 + 1);
    handle.join().unwrap_or(0)
}
