//! Negative fixture: the probe charges alpha/beta from the simulator's
//! virtual clock (send/arrive timestamps supplied by the plane), so two
//! same-seed probes produce bit-identical estimates. Wall-clock reads
//! appear only under `#[cfg(test)]`.

pub fn probe_link(sent_at: f64, arrived_at: f64, bytes: usize) -> (f64, f64) {
    let span = arrived_at - sent_at;
    (span, span / bytes.max(1) as f64)
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_is_fine_in_tests() {
        let t0 = std::time::Instant::now();
        let _ = t0.elapsed();
    }
}
