//! Positive fixture: deadline-jitter faults drawn from ambient entropy
//! and a probe helper on an ungated thread — either one makes two
//! same-seed gauntlet runs diverge, which the twice-run `cmp` gate would
//! only catch after the fact.

pub fn jittered_budget(base: f64) -> f64 {
    let rng = rand::thread_rng();
    let _ = rng;
    base * 1.5
}

pub fn probe_in_background() -> i32 {
    let handle = std::thread::spawn(|| 42);
    handle.join().unwrap_or(0)
}
