//! Negative fixture: fully checked decode arithmetic, and ordinary
//! arithmetic outside decode paths.

pub fn decode_header(blob: &[u8]) -> Option<usize> {
    let head: [u8; 4] = blob.get(..4)?.try_into().ok()?;
    let declared_len = usize::try_from(u32::from_le_bytes(head)).ok()?;
    declared_len.checked_mul(4)?.checked_add(8)
}

pub fn area(width_len: usize, height: usize) -> usize {
    width_len * height + 1
}
