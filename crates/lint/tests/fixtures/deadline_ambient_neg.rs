//! Negative fixture: deadline jitter from a caller-seeded RNG (the
//! `DeadlineFaults::new(seed)` shape), and the probe thread gated behind
//! the declared parallel feature.

pub fn jittered_budget(base: f64, seed: u64) -> f64 {
    let rng = rand::rngs::StdRng::seed_from_u64(seed);
    let _ = rng;
    base * 1.5
}

#[cfg(feature = "parallel")]
pub fn probe_in_background() -> i32 {
    let handle = std::thread::spawn(|| 42);
    handle.join().unwrap_or(0)
}
