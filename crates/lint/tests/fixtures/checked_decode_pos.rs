//! Positive fixture: unchecked length arithmetic in a decode path.

pub fn decode_header(bytes: &[u8]) -> usize {
    let declared_len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    declared_len * 4 + 8
}
