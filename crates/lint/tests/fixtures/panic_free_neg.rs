//! Negative fixture: Result-based library code, a documented suppression,
//! and panics confined to tests.

pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn documented(xs: &[u32]) -> u32 {
    // lint:allow(panic_free, reason = "fixture: the caller guarantees non-empty input")
    xs.first().copied().expect("non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let xs = [1u32];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
