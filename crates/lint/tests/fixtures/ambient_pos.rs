//! Positive fixture: unseeded RNG and an ungated thread spawn.

pub fn entropy() -> u64 {
    let rng = rand::thread_rng();
    let _ = rng;
    0
}

pub fn parallel_sum() -> i32 {
    let handle = std::thread::spawn(|| 1 + 1);
    handle.join().unwrap_or(0)
}
