//! Positive fixture: wall-clock reads in library code.

pub fn timed() -> u128 {
    let t0 = std::time::Instant::now();
    let st = std::time::SystemTime::now();
    let _ = st;
    t0.elapsed().as_nanos()
}
