//! Positive fixture: the `simd` lane tier referenced by a crate whose
//! manifest never declares the feature — the gated kernels would silently
//! compile out of every build, scalar and simd alike.

#[cfg(feature = "simd")]
pub fn simd_kernels() {}

#[cfg(not(feature = "simd"))]
pub fn scalar_kernels() {}

pub fn lane_tier() -> &'static str {
    if cfg!(feature = "simd") {
        "simd"
    } else {
        "scalar"
    }
}
