//! Positive fixture: malformed suppressions that must themselves be
//! findings, and must NOT waive the finding they sit on.

pub fn missing_reason(xs: &[u32]) -> u32 {
    // lint:allow(panic_free)
    xs.first().copied().expect("x")
}

pub fn empty_reason(xs: &[u32]) -> u32 {
    // lint:allow(panic_free, reason = "")
    xs.first().copied().expect("x")
}

pub fn unknown_rule(xs: &[u32]) -> u32 {
    // lint:allow(made_up_rule, reason = "not a rule the linter knows")
    xs.first().copied().expect("x")
}
