//! Positive fixture: hash-order iteration reaching exported output.

use std::collections::{HashMap, HashSet};

pub fn export(m: &HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    for (k, v) in m.iter() {
        out.push(format!("{k}={v}"));
    }
    out
}

pub fn drain_all(names: HashSet<u32>) -> Vec<u32> {
    names.into_iter().collect()
}
