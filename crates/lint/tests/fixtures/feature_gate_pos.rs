//! Positive fixture: cfg on a feature the manifest never declares.

#[cfg(feature = "warp_drive")]
pub fn gated() {}

pub fn always() {}
