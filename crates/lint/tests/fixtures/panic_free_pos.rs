//! Positive fixture: panicking constructs in library code.

pub fn first(xs: &[u32]) -> u32 {
    let head = xs.first().unwrap();
    *head
}

pub fn second(xs: &[u32]) -> u32 {
    xs[1]
}

pub fn explode(kind: u8) -> u8 {
    match kind {
        0 => 0,
        _ => panic!("unsupported kind"),
    }
}
