//! Negative fixture: virtual time in library code, wall clock only in tests.

pub fn timed(clock: f64) -> f64 {
    clock + 1.5e-3
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_is_fine_in_tests() {
        let t0 = std::time::Instant::now();
        let _ = t0.elapsed();
    }
}
