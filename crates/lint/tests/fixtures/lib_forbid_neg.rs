//! Negative fixture: a crate root carrying `#![forbid(unsafe_code)]`.

#![forbid(unsafe_code)]

pub fn present() {}
