//! Negative fixture: cfg only on features the manifest declares.

#[cfg(feature = "parallel")]
pub fn gated() {}

#[cfg(not(feature = "parallel"))]
pub fn fallback() {}
