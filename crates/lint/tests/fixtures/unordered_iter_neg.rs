//! Negative fixture: ordered collections, and hash maps used only for
//! point lookups.

use std::collections::{BTreeMap, HashMap};

pub fn export(m: &BTreeMap<String, u64>) -> Vec<String> {
    m.iter().map(|(k, v)| format!("{k}={v}")).collect()
}

pub fn lookup(index: &HashMap<String, u64>, key: &str) -> Option<u64> {
    index.get(key).copied()
}
