//! Self-run tests: the linter must pass over its own workspace, and the
//! report must be byte-stable across runs — the property the CI gate
//! checks with `cmp` on two consecutive `cloudtrain lint` outputs.

use std::path::{Path, PathBuf};

use cloudtrain_lint::run_workspace;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_modulo_baseline() {
    let report = run_workspace(&workspace_root()).expect("lint run succeeds");
    assert!(report.files > 0, "walker found no Rust sources");
    assert!(report.crates > 0, "walker found no crates");
    assert!(
        report.clean(),
        "workspace has non-baselined lint findings:\n{}",
        report.table()
    );
}

#[test]
fn report_is_byte_stable_across_runs() {
    let root = workspace_root();
    let a = run_workspace(&root).expect("first run succeeds");
    let b = run_workspace(&root).expect("second run succeeds");
    assert_eq!(a.table(), b.table(), "human table drifted between runs");
    assert_eq!(
        a.to_jsonl(),
        b.to_jsonl(),
        "JSONL report drifted between runs"
    );
}
