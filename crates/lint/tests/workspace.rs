//! Self-run tests: the linter must pass over its own workspace, and the
//! report must be byte-stable across runs — the property the CI gate
//! checks with `cmp` on two consecutive `cloudtrain lint` outputs.

use std::path::{Path, PathBuf};

use cloudtrain_lint::run_workspace;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_modulo_baseline() {
    let report = run_workspace(&workspace_root()).expect("lint run succeeds");
    assert!(report.files > 0, "walker found no Rust sources");
    assert!(report.crates > 0, "walker found no crates");
    assert!(
        report.clean(),
        "workspace has non-baselined lint findings:\n{}",
        report.table()
    );
}

#[test]
fn report_is_byte_stable_across_runs() {
    let root = workspace_root();
    let a = run_workspace(&root).expect("first run succeeds");
    let b = run_workspace(&root).expect("second run succeeds");
    assert_eq!(a.table(), b.table(), "human table drifted between runs");
    assert_eq!(
        a.to_jsonl(),
        b.to_jsonl(),
        "JSONL report drifted between runs"
    );
}

/// `excluded_path_prefixes` removes whole subtrees from the walk: a file
/// with an obvious `wall_clock` violation under an excluded prefix
/// produces no findings, while the same tree with no exclusions does.
/// The default config excludes the conformance seed corpus so checked-in
/// case data can never perturb lint output.
#[test]
fn excluded_path_prefixes_skip_subtrees() {
    use cloudtrain_lint::{run_workspace_with, Config};
    use std::fs;

    let root = std::env::temp_dir().join(format!("cloudtrain-lint-excl-{}", std::process::id()));
    let src = root.join("crates/demo/src");
    let gen = src.join("corpus_gen");
    fs::create_dir_all(&gen).expect("mkdir");
    fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write");
    fs::write(
        root.join("crates/demo/Cargo.toml"),
        "[package]\nname = \"cloudtrain-demo\"\n",
    )
    .expect("write");
    fs::write(src.join("lib.rs"), "pub fn ok() {}\n").expect("write");
    fs::write(
        gen.join("bad.rs"),
        "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n",
    )
    .expect("write");

    let mut config = Config::default();
    assert!(
        config
            .excluded_path_prefixes
            .contains(&"crates/conformance/corpus/".to_string()),
        "default config must exclude the conformance seed corpus"
    );

    config.excluded_path_prefixes = vec!["crates/demo/src/corpus_gen/".to_string()];
    let excluded = run_workspace_with(&root, &config).expect("lint run succeeds");
    assert_eq!(excluded.files, 1, "only lib.rs should be walked");
    assert!(excluded.clean(), "excluded subtree still produced findings");

    config.excluded_path_prefixes.clear();
    let included = run_workspace_with(&root, &config).expect("lint run succeeds");
    assert_eq!(included.files, 2, "both files should be walked");
    assert!(
        !included.findings.is_empty(),
        "wall_clock violation should be reported without the exclusion"
    );

    let _ = fs::remove_dir_all(&root);
}
