//! Workspace-pass tests: twin drift, conformance coverage, cast flow, and
//! float determinism, driven through the in-memory [`run_files`] core so
//! fixtures and mutated copies of the real tree can be linted without
//! touching disk.

use std::path::{Path, PathBuf};

use cloudtrain_lint::{collect_workspace, run_files, Config, FileInput, Report};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf()
}

fn input(rel_path: &str, crate_name: &str, src: &str) -> FileInput {
    FileInput {
        rel_path: rel_path.to_string(),
        src: src.to_string(),
        crate_name: crate_name.to_string(),
        features: Vec::new(),
    }
}

fn rule_hits<'a>(report: &'a Report, rule: &str) -> Vec<&'a cloudtrain_lint::Finding> {
    report.findings.iter().filter(|f| f.rule == rule).collect()
}

// ---------------------------------------------------------------- twin_drift

fn twin_config() -> Config {
    Config {
        twin_crates: vec!["fixture-collectives".to_string()],
        ..Config::default()
    }
}

#[test]
fn twin_drift_flags_a_twin_missing_a_base_hop() {
    let src = "\
fn hop_a() {}\n\
fn hop_b() {}\n\
fn begin_instance() {}\n\
pub fn reduce_pair(x: &mut [f32]) { hop_a(); hop_b(); }\n\
pub fn reduce_pair_resilient(x: &mut [f32]) { hop_a(); begin_instance(); }\n";
    let inputs = [input("crates/fix/src/lib.rs", "fixture-collectives", src)];
    let report = run_files(&inputs, &twin_config());
    let hits = rule_hits(&report, "twin_drift");
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(hits[0].message.contains("reduce_pair_resilient"));
    assert!(
        hits[0].message.contains("missing base calls [hop_b]"),
        "{}",
        hits[0].message
    );
    assert_eq!(report.twin_families, 1);
}

#[test]
fn twin_drift_flags_unsanctioned_extra_calls() {
    let src = "\
fn hop_a() {}\n\
fn hop_b() {}\n\
fn rogue_stage() {}\n\
pub fn reduce_pair(x: &mut [f32]) { hop_a(); hop_b(); }\n\
pub fn reduce_pair_scratch(x: &mut [f32]) { hop_a(); hop_b(); rogue_stage(); }\n";
    let inputs = [input("crates/fix/src/lib.rs", "fixture-collectives", src)];
    let report = run_files(&inputs, &twin_config());
    let hits = rule_hits(&report, "twin_drift");
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(
        hits[0]
            .message
            .contains("unsanctioned extra calls [rogue_stage]"),
        "{}",
        hits[0].message
    );
}

#[test]
fn twin_drift_accepts_declared_rewrites_and_neutral_plumbing() {
    // The resilient twin adds begin_instance (sanctioned for `resilient`)
    // and scratch-pool traffic (neutral); the scratch twin only swaps
    // allocation. Both are clean.
    let src = "\
fn hop_a() {}\n\
fn hop_b() {}\n\
fn begin_instance() {}\n\
fn take_f32() {}\n\
pub fn reduce_pair(x: &mut [f32]) { hop_a(); hop_b(); }\n\
pub fn reduce_pair_scratch(x: &mut [f32]) { take_f32(); hop_a(); hop_b(); }\n\
pub fn reduce_pair_resilient(x: &mut [f32]) { begin_instance(); hop_a(); hop_b(); }\n";
    let inputs = [input("crates/fix/src/lib.rs", "fixture-collectives", src)];
    let report = run_files(&inputs, &twin_config());
    assert_eq!(
        rule_hits(&report, "twin_drift").len(),
        0,
        "{:?}",
        report.findings
    );
    assert_eq!(report.twin_families, 2);
}

#[test]
fn twin_drift_follows_delegation_wrappers() {
    // The public twin delegates to an _impl; its skeleton must be the
    // impl's, so the missing hop still surfaces.
    let src = "\
fn hop_a() {}\n\
fn hop_b() {}\n\
fn reduce_impl(x: &mut [f32]) { hop_a(); hop_b(); }\n\
fn reduce_traced_impl(x: &mut [f32]) { hop_a(); }\n\
pub fn reduce_pair(x: &mut [f32]) { reduce_impl(x); }\n\
pub fn reduce_pair_traced(x: &mut [f32]) { reduce_traced_impl(x); }\n";
    let inputs = [input("crates/fix/src/lib.rs", "fixture-collectives", src)];
    let report = run_files(&inputs, &twin_config());
    let hits = rule_hits(&report, "twin_drift");
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(hits[0].message.contains("hop_b"), "{}", hits[0].message);
}

/// The acceptance-criterion mutation: drop a send hop from the base ring
/// ReduceScatter in the real tree and every twin that still carries the
/// hop must light up, while the shipped tree (see tests/workspace.rs)
/// stays clean.
#[test]
fn mutation_dropping_a_base_hop_flags_every_undrifted_twin() {
    let config = Config::default();
    let mut inputs = collect_workspace(&workspace_root(), &config).expect("walk");
    let ring = inputs
        .iter_mut()
        .find(|i| i.rel_path == "crates/collectives/src/ring.rs")
        .expect("ring.rs present");
    let hop = "peer.send_f32(right, send_chunk);";
    assert!(ring.src.contains(hop), "mutation anchor moved");
    // First occurrence is ring_reduce_scatter_scratch's hop (the all-gather
    // body repeats the line further down).
    ring.src = ring.src.replacen(hop, "let _ = (right, send_chunk);", 1);

    let report = run_files(&inputs, &config);
    let drift: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "twin_drift" && f.message.contains("send_f32"))
        .collect();
    for twin in ["ring_reduce_scatter_resilient", "ring_reduce_scatter_fused"] {
        assert!(
            drift.iter().any(|f| f.message.contains(twin)),
            "undrifted twin `{twin}` must be flagged; got {drift:?}"
        );
    }
}

// ----------------------------------------------------- coverage_conformance

fn coverage_fixture(with_rogue: bool) -> Vec<FileInput> {
    let report_src = "\
pub fn expected_pairings() -> Vec<(&'static str, &'static str)> {\n\
    let mut out = Vec::new();\n\
    for coll in [\"ring\"] { out.push((coll, \"-\")); }\n\
    for coll in [\"gtopk\"] {\n\
        for comp in crate::corpus::COMPRESSORS { out.push((coll, *comp)); }\n\
    }\n\
    out\n\
}\n";
    let corpus_src = "pub const COMPRESSORS: &[&str] = &[\"sorttopk\", \"dgc\"];\n";
    let oracle_src = "\
pub fn run(name: &str) -> u32 {\n\
    match name {\n\
        \"ring\" => 1,\n\
        \"gtopk\" => 2,\n\
        _ => 0,\n\
    }\n\
}\n";
    let mut coll_src = String::from(
        "pub fn ring_all_reduce(x: &mut [f32]) {}\npub fn gtopk_all_reduce(x: &mut [f32]) {}\n",
    );
    if with_rogue {
        coll_src.push_str("pub fn rogue_all_reduce(x: &mut [f32]) {}\n");
    }
    vec![
        input(
            "crates/conformance/src/report.rs",
            "fixture-conformance",
            report_src,
        ),
        input(
            "crates/conformance/src/corpus.rs",
            "fixture-conformance",
            corpus_src,
        ),
        input(
            "crates/conformance/src/oracle.rs",
            "fixture-conformance",
            oracle_src,
        ),
        input(
            "crates/collectives/src/lib.rs",
            "fixture-collectives",
            &coll_src,
        ),
    ]
}

fn coverage_config() -> Config {
    Config {
        collectives_crate: "fixture-collectives".to_string(),
        ..Config::default()
    }
}

#[test]
fn coverage_conformance_accepts_a_closed_matrix() {
    let report = run_files(&coverage_fixture(false), &coverage_config());
    assert_eq!(
        rule_hits(&report, "coverage_conformance").len(),
        0,
        "{:?}",
        report.findings
    );
    // 1 dense + 1 sparse tag x 2 compressors.
    assert_eq!(report.pairings, 3);
}

#[test]
fn coverage_conformance_flags_an_unregistered_collective() {
    let report = run_files(&coverage_fixture(true), &coverage_config());
    let hits = rule_hits(&report, "coverage_conformance");
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(hits[0].message.contains("rogue_all_reduce"));
    assert!(hits[0].message.contains("rogue"), "{}", hits[0].message);
}

#[test]
fn coverage_conformance_flags_a_tag_without_an_oracle_arm() {
    let mut inputs = coverage_fixture(false);
    // Disable the gtopk dispatch arm: its registered pairings can no
    // longer execute, and the renamed arm is unregistered — both fire.
    inputs[2].src = inputs[2].src.replace("\"gtopk\" =>", "\"gtopk_off\" =>");
    let report = run_files(&inputs, &coverage_config());
    let hits = rule_hits(&report, "coverage_conformance");
    assert!(
        hits.iter().any(|f| f.message.contains("no dispatch arm")),
        "{:?}",
        report.findings
    );
    assert!(
        hits.iter().any(|f| f.message.contains("does not register")),
        "{:?}",
        report.findings
    );
}

/// Acceptance criterion: the matrix the analyzer re-derives from source
/// matches the 84 pairings `BENCH_conformance.json` snapshots, and
/// deleting any one registration turns the lint red.
#[test]
fn real_tree_pairings_match_the_conformance_snapshot() {
    let root = workspace_root();
    let config = Config::default();
    let inputs = collect_workspace(&root, &config).expect("walk");
    let report = run_files(&inputs, &config);
    assert_eq!(report.pairings, 84, "re-derived matrix size drifted");

    let snapshot = std::fs::read_to_string(root.join("BENCH_conformance.json"))
        .expect("conformance snapshot present");
    let expected: usize = snapshot
        .split("\"coverage_expected\":")
        .nth(1)
        .and_then(|s| s.trim_start().split(&[',', '}'][..]).next())
        .and_then(|s| s.trim().parse().ok())
        .expect("snapshot has coverage_expected");
    assert_eq!(report.pairings, expected, "source and snapshot disagree");
}

#[test]
fn deleting_a_conformance_registration_turns_lint_red() {
    let root = workspace_root();
    let config = Config::default();
    let mut inputs = collect_workspace(&root, &config).expect("walk");
    let report_rs = inputs
        .iter_mut()
        .find(|i| i.rel_path == "crates/conformance/src/report.rs")
        .expect("report.rs present");
    assert!(report_rs.src.contains("\"ring_res\","), "anchor moved");
    report_rs.src = report_rs.src.replacen("\"ring_res\",", "", 1);

    let report = run_files(&inputs, &config);
    let hits = rule_hits(&report, "coverage_conformance");
    assert!(
        hits.iter().any(|f| f.message.contains("ring_res")),
        "dropping the ring_res registration must be caught: {:?}",
        report.findings
    );
}

// ------------------------------------------------------------------ cast_flow

#[test]
fn cast_flow_flags_unchecked_length_casts_into_sinks() {
    let src = "\
pub fn build(frame_len: u32, buf: &[u8]) -> Vec<u8> {\n\
    let n = frame_len as usize * 4;\n\
    let mut v = Vec::with_capacity(n);\n\
    let b = buf[n];\n\
    v.push(b);\n\
    v\n\
}\n";
    let inputs = [input("crates/fix/src/wire.rs", "fixture-net", src)];
    let report = run_files(&inputs, &Config::default());
    let hits = rule_hits(&report, "cast_flow");
    assert_eq!(hits.len(), 2, "{:?}", report.findings);
    assert!(hits.iter().any(|f| f.message.contains("with_capacity")));
    assert!(hits.iter().any(|f| f.message.contains("indexes a slice")));
}

#[test]
fn cast_flow_accepts_guarded_and_call_wrapped_casts() {
    let src = "\
fn owner_of(i: usize) -> usize { i }\n\
pub fn build(frame_len: u32, cap: usize) -> Vec<u8> {\n\
    let n = (frame_len as usize).min(cap);\n\
    let t = owner_of(frame_len as usize);\n\
    let mut v = Vec::with_capacity(n);\n\
    v.reserve(t);\n\
    v\n\
}\n";
    let inputs = [input("crates/fix/src/wire.rs", "fixture-net", src)];
    let report = run_files(&inputs, &Config::default());
    assert_eq!(
        rule_hits(&report, "cast_flow").len(),
        0,
        "{:?}",
        report.findings
    );
}

#[test]
fn cast_flow_leaves_decode_paths_to_checked_decode() {
    let src = "\
pub fn decode_frame(len_field: u32) -> Vec<u8> {\n\
    let n = len_field as usize;\n\
    Vec::with_capacity(n)\n\
}\n";
    let inputs = [input("crates/fix/src/wire.rs", "fixture-net", src)];
    let report = run_files(&inputs, &Config::default());
    assert_eq!(
        rule_hits(&report, "cast_flow").len(),
        0,
        "{:?}",
        report.findings
    );
}

// ---------------------------------------------------------- float_determinism

fn float_config() -> Config {
    Config {
        float_crates: vec!["fixture-tensor".to_string()],
        ..Config::default()
    }
}

#[test]
fn float_determinism_flags_adhoc_reduction_loops() {
    let src = "\
pub fn norm(x: &[f32]) -> f32 {\n\
    let mut acc = 0.0;\n\
    for v in x { acc += v * v; }\n\
    acc\n\
}\n\
pub fn total(x: &[f32]) -> f32 { x.iter().map(|v| v + 1.0).sum::<f32>() }\n";
    let inputs = [input("crates/fix/src/ops.rs", "fixture-tensor", src)];
    let report = run_files(&inputs, &float_config());
    let hits = rule_hits(&report, "float_determinism");
    assert_eq!(hits.len(), 2, "{:?}", report.findings);
    assert!(hits.iter().any(|f| f.message.contains("acc")));
    assert!(hits.iter().any(|f| f.message.contains("sum::<float>")));
}

#[test]
fn float_determinism_accepts_block_chunked_kernels_and_other_crates() {
    let sanctioned = "\
const REDUCE_BLOCK: usize = 65536;\n\
fn block_sum(b: &[f32]) -> f32 { b[0] }\n\
pub fn norm(x: &[f32]) -> f32 {\n\
    let mut acc = 0.0;\n\
    for b in x.chunks(REDUCE_BLOCK) { acc += block_sum(b); }\n\
    acc\n\
}\n";
    let inputs = [input("crates/fix/src/ops.rs", "fixture-tensor", sanctioned)];
    let report = run_files(&inputs, &float_config());
    assert_eq!(
        rule_hits(&report, "float_determinism").len(),
        0,
        "{:?}",
        report.findings
    );

    // Same ad-hoc loop outside the kernel crates: out of jurisdiction.
    let adhoc = "pub fn norm(x: &[f32]) -> f32 { let mut a = 0.0; for v in x { a += v; } a }\n";
    let inputs = [input("crates/fix/src/ops.rs", "fixture-other", adhoc)];
    let report = run_files(&inputs, &float_config());
    assert_eq!(rule_hits(&report, "float_determinism").len(), 0);
}

// ------------------------------------------------------------- self-metrics

#[test]
fn analyzer_self_metrics_reflect_the_real_tree() {
    let config = Config::default();
    let inputs = collect_workspace(&workspace_root(), &config).expect("walk");
    let report = run_files(&inputs, &config);
    assert!(
        report.symbols > 1000,
        "symbol table too small: {}",
        report.symbols
    );
    assert!(
        report.call_edges > 2000,
        "call graph too sparse: {}",
        report.call_edges
    );
    assert!(
        report.twin_families > 20,
        "twin discovery broke: {}",
        report.twin_families
    );
    let jsonl = report.to_jsonl();
    for counter in [
        "lint/symbols",
        "lint/call_edges",
        "lint/twin_families",
        "lint/pairings",
    ] {
        assert!(jsonl.contains(counter), "JSONL missing {counter}");
    }
}

#[test]
fn workspace_suppressions_cover_workspace_rules() {
    // A lint:allow at a fn flagged by a workspace rule must waive it like
    // any per-file rule finding.
    let src = "\
fn hop_a() {}\n\
fn hop_b() {}\n\
pub fn reduce_pair(x: &mut [f32]) { hop_a(); hop_b(); }\n\
// lint:allow(twin_drift, reason = \"fixture: intentional divergence\")\n\
pub fn reduce_pair_scratch(x: &mut [f32]) { hop_a(); }\n";
    let inputs = [input("crates/fix/src/lib.rs", "fixture-collectives", src)];
    let report = run_files(&inputs, &twin_config());
    assert_eq!(
        rule_hits(&report, "twin_drift").len(),
        0,
        "{:?}",
        report.findings
    );
    assert!(report.suppressed >= 1);
}
