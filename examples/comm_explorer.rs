//! Interactive-ish communication explorer: sweeps message sizes, cluster
//! shapes and densities over the four aggregation schemes on the simulated
//! fabric, and verifies the real (data-moving) collectives against a
//! sequential reference as it goes.
//!
//! ```text
//! cargo run --release --example comm_explorer [nodes] [gpus_per_node]
//! ```

use cloudtrain::compress::exact::SortTopK;
use cloudtrain::prelude::*;
use cloudtrain::simnet::collectives as simc;
use cloudtrain::tensor::{init, ops};

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let gpn: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let spec = cloudtrain::simnet::ClusterSpec {
        nodes,
        gpus_per_node: gpn,
        ..clouds::tencent(nodes)
    };
    println!(
        "cluster: {} nodes x {} GPUs, 25GbE inter / NVLink intra\n",
        nodes, gpn
    );

    // --- Simulated sweep over gradient sizes (FP16 wire, rho = 0.01). ---
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "elements", "NaiveAG", "TreeAR", "2DTAR", "HiTopKComm"
    );
    for d in [1usize << 21, 1 << 23, 25_000_000, 1 << 27] {
        let mut sim = NetSim::new(spec);
        let naive = simc::sim_naive_sparse_all_gather(&mut sim, &spec, d / 100).total;
        sim.reset();
        let tree = simc::sim_tree_all_reduce_hier(&mut sim, &spec, d * 2).total;
        sim.reset();
        let torus = simc::sim_torus_all_reduce(&mut sim, &spec, d * 2).total;
        sim.reset();
        let hitopk = simc::sim_hitopk(&mut sim, &spec, d, 2, 0.01, 1e-3).total;
        println!(
            "{:>10} {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>10.1}ms",
            d,
            naive * 1e3,
            tree * 1e3,
            torus * 1e3,
            hitopk * 1e3
        );
    }

    // --- Density sweep for HiTopKComm. ---
    println!("\nHiTopKComm total vs density (d = 25M, FP32):");
    for rho in [0.001, 0.01, 0.05, 0.1] {
        let mut sim = NetSim::new(spec);
        let t = simc::sim_hitopk(&mut sim, &spec, 25_000_000, 4, rho, 2e-3);
        println!("  rho = {:>5}: {:>8.2} ms", rho, t.total * 1e3);
    }

    // --- Cross-check: the real collectives move real bytes correctly. ---
    let check_world = (nodes.min(4)) * (gpn.min(4));
    let (m, n) = (nodes.min(4), gpn.min(4));
    println!(
        "\ncross-check on {} real worker threads ({}x{}):",
        check_world, m, n
    );
    let d = 10_000;
    let expect: Vec<f32> = {
        let mut acc = vec![0.0; d];
        for r in 0..check_world {
            let mut rng = init::rng_from_seed(900 + r as u64);
            ops::add_assign(
                &mut acc,
                init::uniform_tensor(d, -1.0, 1.0, &mut rng).as_slice(),
            );
        }
        acc
    };
    let results = run_on_group(check_world, |peer| {
        let mut rng = init::rng_from_seed(900 + peer.rank() as u64);
        let mut x = init::uniform_tensor(d, -1.0, 1.0, &mut rng).into_vec();
        cloudtrain::collectives::torus::torus_all_reduce(peer, &mut x, m, n);
        x
    });
    let max_err = results
        .iter()
        .map(|x| ops::linf_distance(x, &expect))
        .fold(0.0f32, f32::max);
    println!("  2DTAR vs sequential sum: max |err| = {max_err:.2e}");

    let results = run_on_group(check_world, |peer| {
        let mut rng = init::rng_from_seed(900 + peer.rank() as u64);
        let mut x = init::uniform_tensor(d, -1.0, 1.0, &mut rng).into_vec();
        let mut c = SortTopK;
        let rep = hitopk_all_reduce(peer, &mut x, m, n, 0.05, &mut c);
        (x, rep)
    });
    let all_same = results.windows(2).all(|w| w[0].0 == w[1].0);
    println!(
        "  HiTopKComm: all ranks bitwise identical = {}, k/shard = {}, nonzeros/shard = {}",
        all_same, results[0].1.k_per_shard, results[0].1.shard_nonzeros
    );
}
