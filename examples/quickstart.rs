//! Quickstart: train one model with all four aggregation strategies and
//! compare their convergence, then project cluster-scale throughput.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cloudtrain::prelude::*;

fn main() {
    println!("cloudtrain quickstart: 2 nodes x 4 workers, synthetic image task\n");

    let strategies = [
        Strategy::DenseTreeAr,
        Strategy::DenseTorus,
        Strategy::TopKNaiveAg { rho: 0.05 },
        Strategy::MsTopKHiTopK {
            rho: 0.05,
            samplings: 30,
        },
    ];

    println!(
        "{:<12} {:>10} {:>10} {:>10}  epochs(loss -> val acc)",
        "strategy", "loss", "top1", "top5"
    );
    for strategy in strategies {
        let cfg = DistConfig {
            epochs: 4,
            iters_per_epoch: 12,
            ..DistConfig::small(strategy, Workload::Mlp)
        };
        let report = DistTrainer::new(cfg).run();
        let last = report.epochs.last().expect("at least one epoch");
        let curve: Vec<String> = report
            .epochs
            .iter()
            .map(|e| format!("{:.2}->{:.0}%", e.train_loss, e.val_top1 * 100.0))
            .collect();
        println!(
            "{:<12} {:>10.3} {:>9.1}% {:>9.1}%  {}",
            report.strategy,
            last.train_loss,
            last.val_top1 * 100.0,
            last.val_top5 * 100.0,
            curve.join(" ")
        );
    }

    println!("\nProjected 128-GPU throughput on the paper's Tencent Cloud testbed");
    println!("(ResNet-50 @ 96x96, paper densities: rho = 0.01):");
    println!("{:<12} {:>16} {:>10}", "strategy", "samples/s", "scaling");
    for strategy in [
        Strategy::DenseTreeAr,
        Strategy::DenseTorus,
        Strategy::topk_default(),
        Strategy::mstopk_default(),
    ] {
        let model = IterationModel::new(
            clouds::tencent(16),
            SystemConfig {
                strategy,
                datacache: true,
                pto: true,
            },
            ModelProfile::resnet50_96(),
        );
        println!(
            "{:<12} {:>16.0} {:>9.1}%",
            strategy.label(),
            model.throughput(),
            model.scaling_efficiency() * 100.0
        );
    }
}
