//! Transformer training with sparsified gradients: the paper's NLP
//! workload in miniature — compares Dense-SGD, TopK-SGD and MSTopK-SGD
//! convergence on the synthetic sequence task and reports residual norms.
//!
//! ```text
//! cargo run --release --example transformer_wmt
//! ```

use cloudtrain::prelude::*;

fn main() {
    println!("Transformer on synthetic sequences: 2 nodes x 4 workers\n");

    let runs = [
        ("Dense-SGD (2DTAR)", Strategy::DenseTorus),
        ("TopK-SGD", Strategy::TopKNaiveAg { rho: 0.05 }),
        (
            "MSTopK-SGD",
            Strategy::MsTopKHiTopK {
                rho: 0.05,
                samplings: 30,
            },
        ),
    ];

    for (name, strategy) in runs {
        let cfg = DistConfig {
            epochs: 5,
            iters_per_epoch: 10,
            lr: 0.02,
            local_batch: 8,
            ..DistConfig::small(strategy, Workload::Transformer)
        };
        let report = DistTrainer::new(cfg).run();
        println!("{name}:");
        for e in &report.epochs {
            println!(
                "  epoch {}: loss {:.3}  val top-1 {:>5.1}%  residual |e| {:.3}",
                e.epoch,
                e.train_loss,
                e.val_top1 * 100.0,
                e.residual_norm
            );
        }
        println!();
    }

    // Communication picture for the real 110M-parameter Transformer.
    println!("Projected aggregation time for the 110M-parameter Transformer");
    println!("(16 nodes x 8 GPUs, 25GbE, rho = 0.01):\n");
    let spec = clouds::tencent(16);
    let d = ModelProfile::transformer().params;
    let mut sim = NetSim::new(spec);
    use cloudtrain::simnet::collectives as simc;
    let hitopk = simc::sim_hitopk(&mut sim, &spec, d, 4, 0.01, 2e-3);
    sim.reset();
    let torus = simc::sim_torus_all_reduce(&mut sim, &spec, d * 2);
    sim.reset();
    let tree = simc::sim_tree_all_reduce_hier(&mut sim, &spec, d * 4);
    sim.reset();
    let naive = simc::sim_naive_sparse_all_gather(&mut sim, &spec, d / 100);
    for (name, t) in [
        ("NaiveAG (TopK-SGD)", naive.total),
        ("TreeAR (Dense-SGD)", tree.total),
        ("2DTAR", torus.total),
        ("HiTopKComm (ours)", hitopk.total),
    ] {
        println!("  {:<20} {:>8.1} ms", name, t * 1e3);
    }
    println!("\nHiTopKComm step breakdown:");
    for p in &hitopk.phases {
        println!("  {:<22} {:>8.2} ms", p.label, p.seconds * 1e3);
    }
}
