//! The DAWNBench mechanic on the convergence plane: train the warmup
//! epochs with MSTopK-SGD, checkpoint, then resume with dense 2DTAR-SGD —
//! exactly how the paper's record run switches aggregation at epoch 13
//! ("we cannot fully use MSTopK-SGD in the whole of 28 epochs because it
//! would cause accuracy loss").
//!
//! ```text
//! cargo run --release --example strategy_switching
//! ```

use cloudtrain::engine::checkpoint::Checkpoint;
use cloudtrain::prelude::*;

fn main() {
    let ckpt_path =
        std::env::temp_dir().join(format!("cloudtrain-switch-{}.ckpt", std::process::id()));

    // Phase 1: sparse warmup (high throughput, slower convergence).
    println!("phase 1: MSTopK-SGD warmup (3 epochs)");
    let warmup_cfg = DistConfig {
        epochs: 3,
        iters_per_epoch: 12,
        ..DistConfig::small(
            Strategy::MsTopKHiTopK {
                rho: 0.05,
                samplings: 30,
            },
            Workload::Mlp,
        )
    };
    let warmup = DistTrainer::new(warmup_cfg.clone()).run();
    for e in &warmup.epochs {
        println!(
            "  epoch {}: loss {:.3}, val {:.1}%, residual |e| {:.2}",
            e.epoch,
            e.train_loss,
            e.val_top1 * 100.0,
            e.residual_norm
        );
    }

    // Checkpoint the run state (in a real deployment the trainer persists
    // params + velocity; here we demonstrate the artifact itself).
    let ckpt = Checkpoint::new(
        (warmup_cfg.epochs * warmup_cfg.iters_per_epoch) as u64,
        vec![0.25; 1000],
        vec![0.0; 1000],
    )
    .expect("dimension-consistent state");
    ckpt.save(&ckpt_path).expect("checkpoint save");
    let restored = Checkpoint::load(&ckpt_path).expect("checkpoint load");
    assert_eq!(ckpt, restored);
    println!(
        "\ncheckpoint written + verified ({} bytes) at step {}\n",
        std::fs::metadata(&ckpt_path).map(|m| m.len()).unwrap_or(0),
        restored.step
    );

    // The real mechanism: one run whose *same replicas* train through both
    // phases, with the error-feedback residual dropped at the switch.
    println!("combined run: 3 epochs MSTopK-SGD -> 2 epochs 2DTAR-SGD");
    let combined = DistTrainer::new(warmup_cfg.clone()).run_phases(&[
        (
            Strategy::MsTopKHiTopK {
                rho: 0.05,
                samplings: 30,
            },
            3,
        ),
        (Strategy::DenseTorus, 2),
    ]);
    for e in &combined.epochs {
        println!(
            "  epoch {}: loss {:.3}, val {:.1}%, residual |e| {:.2}",
            e.epoch,
            e.train_loss,
            e.val_top1 * 100.0,
            e.residual_norm
        );
    }

    // Why switch at all? The throughput side of the trade:
    println!("\nwhy switch (128-GPU model, ResNet-50):");
    for (profile, label) in [
        (ModelProfile::resnet50_96(), "96x96 (warmup)"),
        (ModelProfile::resnet50_224(), "224x224 (late)"),
    ] {
        let se = |strategy| {
            IterationModel::new(
                clouds::tencent(16),
                SystemConfig {
                    strategy,
                    datacache: true,
                    pto: true,
                },
                profile.clone(),
            )
            .scaling_efficiency()
        };
        println!(
            "  {:<16} MSTopK {:>5.1}%  vs  2DTAR {:>5.1}%",
            label,
            se(Strategy::mstopk_default()) * 100.0,
            se(Strategy::DenseTorus) * 100.0
        );
    }
    println!(
        "\nMSTopK dominates at the low-resolution warmup and the advantage\n\
         vanishes at full resolution — switch once compute can hide the\n\
         dense communication."
    );
    let _ = std::fs::remove_file(&ckpt_path);
}
