//! The DAWNBench case study (§5.6): evaluate the 28-epoch multi-resolution
//! schedule on several clouds and print the leaderboard comparison
//! (Tables 4 and 5).
//!
//! ```text
//! cargo run --release --example imagenet_dawnbench
//! ```

use cloudtrain::engine::dawnbench::{
    dense_only_schedule, evaluate_schedule, paper_schedule, published_leaderboard,
};
use cloudtrain::prelude::*;

fn main() {
    let tencent = clouds::tencent(16);

    println!("DAWNBench 28-epoch schedule on Tencent Cloud (16 x 8 V100, 25GbE)\n");
    println!(
        "{:<22} {:>7} {:>12} {:>14} {:>8} {:>10}",
        "stage", "epochs", "single-GPU", "128-GPU", "SE", "seconds"
    );
    let result = evaluate_schedule(tencent, &paper_schedule());
    for s in &result.stages {
        println!(
            "{:<22} {:>7} {:>12.0} {:>14.0} {:>7.0}% {:>10.1}",
            s.name,
            s.epochs,
            s.single_gpu,
            s.system_throughput,
            s.scaling_efficiency * 100.0,
            s.seconds
        );
    }
    println!("{:-<78}", "");
    println!("total time to 93% top-5: {:.0} s\n", result.total_seconds);

    // Ablation: what the warmup costs without MSTopK.
    let dense = evaluate_schedule(tencent, &dense_only_schedule());
    println!(
        "ablation: dense-only schedule takes {:.0} s (+{:.0}% vs MSTopK warmup)\n",
        dense.total_seconds,
        (dense.total_seconds / result.total_seconds - 1.0) * 100.0
    );

    // Cross-cloud comparison.
    println!("same schedule on other fabrics:");
    for (name, cluster) in [
        ("Tencent 25GbE", tencent),
        ("Aliyun 32GbE", clouds::aliyun(16)),
        ("100Gb InfiniBand", clouds::infiniband_100g(16)),
    ] {
        let r = evaluate_schedule(cluster, &paper_schedule());
        println!("  {:<18} {:>6.0} s", name, r.total_seconds);
    }

    println!("\nDAWNBench leaderboard (time to 93% top-5, 128 V100s):");
    println!(
        "{:<10} {:>10} {:>14} {:>8}",
        "team", "date", "interconnect", "time"
    );
    for e in published_leaderboard() {
        println!(
            "{:<10} {:>10} {:>14} {:>7.0}s",
            e.team, e.date, e.interconnect, e.seconds
        );
    }
    println!(
        "{:<10} {:>10} {:>14} {:>7.0}s  <- this reproduction (modelled)",
        "Ours", "Aug 2020", "25GbE", result.total_seconds
    );
}
