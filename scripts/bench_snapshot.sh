#!/usr/bin/env bash
# Regenerates the wall-clock benchmark snapshots:
#
#  * BENCH_topk.json — histogram vs naive MSTopK threshold search at
#    d = 1M and d = 25M (best-of-3 release-mode wall time).
#  * BENCH_e2e.json — end-to-end steps/sec matrix across the runtime
#    optimization axes (fusion buckets, fused compress–reduce). The lane
#    tier is a compile-time axis, so the snapshot binary is built twice:
#    the scalar build writes the baseline, and the simd build reads it
#    back to compute the cross-tier headline speedup.
#
# Usage: scripts/bench_snapshot.sh [topk-path] [e2e-path]
#        (defaults: BENCH_topk.json BENCH_e2e.json)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> BENCH_topk: histogram vs naive threshold search"
cargo build --release -q -p cloudtrain-bench --bin bench_topk_snapshot
cargo run --release -q -p cloudtrain-bench --bin bench_topk_snapshot -- \
    "${1:-BENCH_topk.json}"

e2e_baseline=$(mktemp)
trap 'rm -f "$e2e_baseline"' EXIT

echo "==> BENCH_e2e: scalar lane tier (baseline)"
cargo build --release -q -p cloudtrain-bench --bin e2e_snapshot
./target/release/e2e_snapshot "$e2e_baseline"

echo "==> BENCH_e2e: simd lane tier vs scalar baseline"
cargo build --release -q -p cloudtrain-bench --features simd --bin e2e_snapshot
./target/release/e2e_snapshot "${2:-BENCH_e2e.json}" "$e2e_baseline"
