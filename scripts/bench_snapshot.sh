#!/usr/bin/env bash
# Regenerates BENCH_topk.json: histogram vs naive MSTopK threshold search
# at d = 1M and d = 25M (best-of-3 release-mode wall time).
#
# Usage: scripts/bench_snapshot.sh [output-path]   (default: BENCH_topk.json)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p cloudtrain-bench --bin bench_topk_snapshot
exec cargo run --release -q -p cloudtrain-bench --bin bench_topk_snapshot -- "${1:-BENCH_topk.json}"
