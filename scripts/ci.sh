#!/usr/bin/env bash
# CI entry point: format check, lints, and the full test suite with the
# parallel kernel tier both off (default) and on.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (default features)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (parallel kernels)"
cargo clippy --workspace --all-targets --features cloudtrain-tensor/parallel -- -D warnings

echo "==> cargo test (default features)"
cargo test --workspace -q

echo "==> cargo test (parallel kernels)"
cargo test --workspace -q --features cloudtrain-tensor/parallel

echo "==> ci.sh: all green"
