#!/usr/bin/env bash
# CI entry point: format check, lints, docs, and the full test suite with
# the {simd} x {parallel} feature product plus a no-default-features build.
# Every mode ends with a per-stage timing table.
#
# Usage:
#   scripts/ci.sh            # fmt + clippy/test feature matrix + docs +
#                            # cloudtrain lint + no-default-features build
#   scripts/ci.sh lint       # cloudtrain lint only: runs the analyzer twice
#                            # with --deny and requires both the table and
#                            # the JSONL report to be byte-identical
#   scripts/ci.sh gauntlet   # deterministic fault gauntlet (8 seeds x
#                            # {drops, spikes, stragglers}); runs the
#                            # harness twice and requires byte-identical
#                            # output, then snapshots BENCH_faults.json;
#                            # then the observability snapshot, held to
#                            # the same twice-run byte-identical bar, and
#                            # snapshots BENCH_obs.json; then the e2e
#                            # steps/sec snapshot: scalar build run twice
#                            # (byte-identical fingerprints), simd build
#                            # compared against it (fingerprints must
#                            # match the scalar tier's bit for bit), and
#                            # the >= 1.5x headline speedup ceiling
#                            # enforced on BENCH_e2e.json, plus the
#                            # autotune routing floors (fused_speedup
#                            # >= 0.85, autotune_efficiency >= 0.9); the
#                            # autotuner snapshot: run twice with the full
#                            # stdout byte-compared, snapshots
#                            # BENCH_autotune.json, and asserts the real
#                            # O(k) collective moves fewer inter-node
#                            # bytes than HiTopKComm at every
#                            # model-predicted crossover point; then the tail
#                            # gauntlet: run twice (byte-identical),
#                            # snapshots BENCH_tails.json, and enforces
#                            # the pinned tail ceilings (clean dense
#                            # deadline twin bitwise, straggler dense p99
#                            # improvement >= 1.3x, reorder predicted
#                            # gain >= 1.2x); then the elastic gauntlet
#                            # (8 seeds x {evict, evict-join, rack-loss}
#                            # x {replay, reshard}): run twice with the
#                            # full stdout and the extracted JSONL block
#                            # byte-compared, snapshots BENCH_elastic.json,
#                            # and enforces checkpoint replay bitwise on
#                            # every replay row plus < 5% moved / < 5%
#                            # excess on every resharding event
#   scripts/ci.sh conformance # conformance harness over the shipped seed
#                            # corpus: `cloudtrain conformance --deny` run
#                            # twice (table + JSONL byte-compared), then
#                            # the snapshot binary run twice the same way,
#                            # and snapshots BENCH_conformance.json
set -euo pipefail
cd "$(dirname "$0")/.."

# --- per-stage timing -------------------------------------------------------
# stage "name" opens a stage (closing the previous one); timing_summary
# closes the last stage and prints the table. Uses bash's $SECONDS, so the
# table survives even when individual tools swallow their own timing.
STAGE_NAMES=()
STAGE_SECS=()
CURRENT_STAGE=""
STAGE_T0=0

stage_close() {
    if [[ -n "$CURRENT_STAGE" ]]; then
        STAGE_NAMES+=("$CURRENT_STAGE")
        STAGE_SECS+=("$((SECONDS - STAGE_T0))")
        CURRENT_STAGE=""
    fi
}

stage() {
    stage_close
    CURRENT_STAGE="$1"
    STAGE_T0=$SECONDS
    echo "==> $1"
}

timing_summary() {
    stage_close
    echo ""
    echo "per-stage timing:"
    local i total=0
    printf '  %-60s %6s\n' "stage" "secs"
    for i in "${!STAGE_NAMES[@]}"; do
        printf '  %-60s %5ds\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
        total=$((total + STAGE_SECS[i]))
    done
    printf '  %-60s %5ds\n' "total" "$total"
}

run_lint_gate() {
    stage "cloudtrain lint: build"
    cargo build --release -q -p cloudtrain-cli

    stage "cloudtrain lint: assert the baseline carries zero entries"
    # The baseline is shrink-only and has been paid down to empty; any
    # reappearing [[allow]] entry is new debt and fails CI outright.
    if grep -q '^\[\[allow\]\]' lint-baseline.toml; then
        echo "lint-baseline.toml has [[allow]] entries; fix findings at the source" >&2
        exit 1
    fi

    stage "cloudtrain lint: run twice with --deny, require byte-identical reports"
    lint_a=$(mktemp)
    lint_b=$(mktemp)
    trap 'rm -f "$lint_a" "$lint_b" "$lint_a.jsonl" "$lint_b.jsonl"' EXIT
    ./target/release/cloudtrain lint --root . --out "$lint_a.jsonl" --deny > "$lint_a"
    ./target/release/cloudtrain lint --root . --out "$lint_b.jsonl" --deny > "$lint_b"
    cmp "$lint_a" "$lint_b"
    cmp "$lint_a.jsonl" "$lint_b.jsonl"
    cat "$lint_a"
    # Keep the canonical JSONL for the workflow's artifact upload.
    mkdir -p target
    cp "$lint_a.jsonl" target/lint-report.jsonl

    # One timing row per rule so the table localises analyzer cost (the
    # workspace passes dominate; --rule skips the others).
    local rule
    for rule in twin_drift coverage_conformance cast_flow float_determinism; do
        stage "cloudtrain lint: --rule $rule"
        ./target/release/cloudtrain lint --root . --rule "$rule" --deny > /dev/null
    done
}

if [[ "${1:-}" == "lint" ]]; then
    run_lint_gate
    timing_summary
    echo "==> cloudtrain lint: green"
    exit 0
fi

if [[ "${1:-}" == "gauntlet" ]]; then
    stage "fault gauntlet: build"
    cargo build --release -q -p cloudtrain-bench --bin fault_gauntlet

    stage "fault gauntlet: run twice, require byte-identical output"
    out_a=$(mktemp)
    out_b=$(mktemp)
    trap 'rm -f "$out_a" "$out_b"' EXIT
    ./target/release/fault_gauntlet > "$out_a"
    ./target/release/fault_gauntlet > "$out_b"
    cmp "$out_a" "$out_b"

    stage "fault gauntlet: snapshot BENCH_faults.json"
    grep '^JSON fault_gauntlet ' "$out_a" | sed 's/^JSON fault_gauntlet //' \
        > BENCH_faults.json
    python3 -c 'import json,sys; rows=json.load(open("BENCH_faults.json")); \
print(f"  {len(rows)} gauntlet rows")' 2>/dev/null \
        || echo "  (python3 unavailable; snapshot written unvalidated)"

    stage "obs snapshot: build"
    cargo build --release -q -p cloudtrain-bench --bin obs_snapshot

    stage "obs snapshot: run twice, require byte-identical JSONL"
    obs_a=$(mktemp)
    obs_b=$(mktemp)
    trap 'rm -f "$out_a" "$out_b" "$obs_a" "$obs_b"' EXIT
    ./target/release/obs_snapshot > "$obs_a"
    ./target/release/obs_snapshot > "$obs_b"
    sed -n '/^OBS-BEGIN$/,/^OBS-END$/p' "$obs_a" > "$obs_a.jsonl"
    sed -n '/^OBS-BEGIN$/,/^OBS-END$/p' "$obs_b" > "$obs_b.jsonl"
    trap 'rm -f "$out_a" "$out_b" "$obs_a" "$obs_b" "$obs_a.jsonl" "$obs_b.jsonl"' EXIT
    cmp "$obs_a.jsonl" "$obs_b.jsonl"

    stage "obs snapshot: snapshot BENCH_obs.json"
    grep '^JSON obs_snapshot ' "$obs_a" | sed 's/^JSON obs_snapshot //' \
        > BENCH_obs.json
    python3 -c 'import json; s=json.load(open("BENCH_obs.json")); \
print("  {} trace lines, fnv1a {}".format(s["jsonl_lines"], s["jsonl_fnv1a"]))' 2>/dev/null \
        || echo "  (python3 unavailable; snapshot written unvalidated)"

    stage "e2e snapshot: build (scalar lane tier)"
    cargo build --release -q -p cloudtrain-bench --bin e2e_snapshot

    stage "e2e snapshot: scalar run twice, require byte-identical fingerprints"
    e2e_a=$(mktemp)
    e2e_b=$(mktemp)
    trap 'rm -f "$out_a" "$out_b" "$obs_a" "$obs_b" "$obs_a.jsonl" "$obs_b.jsonl" \
        "$e2e_a" "$e2e_b" "$e2e_a.json" "$e2e_b.json" "$e2e_a.fp" "$e2e_b.fp" \
        "$e2e_a.simd" "$e2e_a.simdfp"' EXIT
    ./target/release/e2e_snapshot "$e2e_a.json" > "$e2e_a"
    ./target/release/e2e_snapshot "$e2e_b.json" > "$e2e_b"
    sed -n '/^E2E-BEGIN$/,/^E2E-END$/p' "$e2e_a" > "$e2e_a.fp"
    sed -n '/^E2E-BEGIN$/,/^E2E-END$/p' "$e2e_b" > "$e2e_b.fp"
    cmp "$e2e_a.fp" "$e2e_b.fp"

    stage "e2e snapshot: build (simd lane tier)"
    cargo build --release -q -p cloudtrain-bench --features simd --bin e2e_snapshot

    stage "e2e snapshot: simd vs scalar baseline -> BENCH_e2e.json"
    ./target/release/e2e_snapshot BENCH_e2e.json "$e2e_a.json" > "$e2e_a.simd"
    sed -n '/^E2E-BEGIN$/,/^E2E-END$/p' "$e2e_a.simd" > "$e2e_a.simdfp"
    # The lane tiers must agree bit for bit on everything but the tier tag.
    cmp <(grep -v '^lane_tier=' "$e2e_a.fp") <(grep -v '^lane_tier=' "$e2e_a.simdfp")
    grep -E 'speedup|E2E' "$e2e_a.simd" | grep -v '^E2E-' || true

    stage "e2e snapshot: enforce the 1.5x steps/sec ceiling + autotune routing floors"
    if command -v python3 >/dev/null 2>&1; then
        python3 -c 'import json
s = json.load(open("BENCH_e2e.json"))
assert s["lane_tier"] == "simd" and s["baseline_lane_tier"] == "scalar", s
speedup = s["speedup_vs_baseline"]
assert speedup >= 1.5, f"headline speedup {speedup:.2f}x below the 1.5x ceiling"
print(f"  headline speedup {speedup:.2f}x (ceiling 1.5x)")
# Routing floors: the fused hop must never regress (the 0.67x bug this
# gate exists for), and the autotuned row must keep pace with the best
# hand-picked mstopk row. Both are same-semantics wall-clock ratios on a
# single-core host; the fused ratio crosses two configs so it eats the
# full 5-15% scheduler jitter (0.85 floor — the 0.67x bug sat far below
# it), while the autotuned row is bitwise one of the hand-picked rows,
# so 0.9 holds for it.
fused = s["fused_speedup"]
assert fused >= 0.85, f"fused compress-reduce speedup {fused:.2f}x below the 0.85x floor"
eff = s["autotune_efficiency"]
assert eff >= 0.9, f"autotuned mstopk at {eff:.2f}x of best hand-picked (floor 0.9x)"
tuned = s["autotune_fused"]
print(f"  fused compress-reduce speedup {fused:.2f}x (floor 0.85x)")
print(f"  autotuned vs best hand-picked {eff:.2f}x (floor 0.9x, tuner fuses: {tuned})")'
    else
        echo "  (python3 unavailable; ceiling not enforced)"
    fi

    stage "autotune snapshot: build"
    cargo build --release -q -p cloudtrain-bench --bin autotune_snapshot

    stage "autotune snapshot: run twice, require byte-identical output"
    at_a=$(mktemp)
    at_b=$(mktemp)
    trap 'rm -f "$out_a" "$out_b" "$obs_a" "$obs_b" "$obs_a.jsonl" "$obs_b.jsonl" \
        "$e2e_a" "$e2e_b" "$e2e_a.json" "$e2e_b.json" "$e2e_a.fp" "$e2e_b.fp" \
        "$e2e_a.simd" "$e2e_a.simdfp" "$at_a" "$at_b"' EXIT
    ./target/release/autotune_snapshot > "$at_a"
    ./target/release/autotune_snapshot > "$at_b"
    cmp "$at_a" "$at_b"

    stage "autotune snapshot: snapshot BENCH_autotune.json"
    grep '^JSON autotune_snapshot ' "$at_a" | sed 's/^JSON autotune_snapshot //' \
        > BENCH_autotune.json

    stage "autotune snapshot: enforce O(k) traffic wins at predicted crossovers"
    if command -v python3 >/dev/null 2>&1; then
        python3 -c 'import json
s = json.load(open("BENCH_autotune.json"))
n = s["crossover_points_validated"]
assert n >= 3, f"only {n} crossover points validated (need >= 3)"
for t in s["traffic"]:
    assert t["oksparse_wins"], t
    assert t["measured_oksparse_bytes"] < t["measured_hitopk_bytes"], t
    assert t["predicted_oksparse_bytes"] < t["predicted_hitopk_bytes"], t
cells = len(s["cells"])
print(f"  {cells} autotune cells, {n} O(k)-vs-HiTopKComm crossover points validated")'
    else
        echo "  (python3 unavailable; crossover gate not enforced)"
    fi

    stage "tail gauntlet: build"
    cargo build --release -q -p cloudtrain-bench --bin tail_gauntlet

    stage "tail gauntlet: run twice, require byte-identical output"
    tails_a=$(mktemp)
    tails_b=$(mktemp)
    trap 'rm -f "$out_a" "$out_b" "$obs_a" "$obs_b" "$obs_a.jsonl" "$obs_b.jsonl" \
        "$e2e_a" "$e2e_b" "$e2e_a.json" "$e2e_b.json" "$e2e_a.fp" "$e2e_b.fp" \
        "$e2e_a.simd" "$e2e_a.simdfp" "$at_a" "$at_b" "$tails_a" "$tails_b"' EXIT
    ./target/release/tail_gauntlet > "$tails_a"
    ./target/release/tail_gauntlet > "$tails_b"
    cmp "$tails_a" "$tails_b"

    stage "tail gauntlet: snapshot BENCH_tails.json"
    grep '^JSON tail_gauntlet ' "$tails_a" | sed 's/^JSON tail_gauntlet //' \
        > BENCH_tails.json

    stage "tail gauntlet: enforce the pinned tail ceilings"
    if command -v python3 >/dev/null 2>&1; then
        python3 -c 'import json
s = json.load(open("BENCH_tails.json"))
assert s["dense_deadline_clean_bitwise"] is True, "clean dense deadline twin diverged"
imp = s["straggler_dense_p99_improvement"]
assert imp >= 1.3, f"straggler dense p99 improvement {imp:.2f}x below the 1.3x ceiling"
gain = s["reorder"]["predicted_gain"]
assert gain >= 1.2, f"reorder predicted gain {gain:.2f}x below the 1.2x ceiling"
rows = s["rows"]
print(f"  {len(rows)} tail rows")
print(f"  straggler dense p99 improvement {imp:.2f}x (ceiling 1.3x)")
print(f"  reorder predicted gain {gain:.2f}x (ceiling 1.2x)")'
    else
        echo "  (python3 unavailable; ceilings not enforced)"
    fi

    stage "elastic gauntlet: build"
    cargo build --release -q -p cloudtrain-bench --bin elastic_gauntlet

    stage "elastic gauntlet: run twice, require byte-identical output"
    el_a=$(mktemp)
    el_b=$(mktemp)
    trap 'rm -f "$out_a" "$out_b" "$obs_a" "$obs_b" "$obs_a.jsonl" "$obs_b.jsonl" \
        "$e2e_a" "$e2e_b" "$e2e_a.json" "$e2e_b.json" "$e2e_a.fp" "$e2e_b.fp" \
        "$e2e_a.simd" "$e2e_a.simdfp" "$at_a" "$at_b" "$tails_a" "$tails_b" \
        "$el_a" "$el_b" "$el_a.jsonl" "$el_b.jsonl"' EXIT
    ./target/release/elastic_gauntlet > "$el_a"
    ./target/release/elastic_gauntlet > "$el_b"
    cmp "$el_a" "$el_b"
    sed -n '/^ELASTIC-JSONL-BEGIN$/,/^ELASTIC-JSONL-END$/p' "$el_a" > "$el_a.jsonl"
    sed -n '/^ELASTIC-JSONL-BEGIN$/,/^ELASTIC-JSONL-END$/p' "$el_b" > "$el_b.jsonl"
    cmp "$el_a.jsonl" "$el_b.jsonl"

    stage "elastic gauntlet: snapshot BENCH_elastic.json"
    grep '^JSON elastic_gauntlet ' "$el_a" | sed 's/^JSON elastic_gauntlet //' \
        > BENCH_elastic.json

    stage "elastic gauntlet: enforce replay-bitwise and the < 5% reshard bound"
    if command -v python3 >/dev/null 2>&1; then
        python3 -c 'import json
rows = json.load(open("BENCH_elastic.json"))
replay = [r for r in rows if r["mode"] == "replay"]
assert replay, "no replay rows in the snapshot"
for r in rows:
    assert r["max_moved_pct"] < 5.0, ("reshard moved >= 5% of the data set", r)
    assert r["max_excess_pct"] < 5.0, ("samples churned between survivors", r)
for r in replay:
    assert r["replay_bitwise"] is True, ("checkpoint replay diverged", r)
worst = max(r["max_moved_pct"] for r in rows)
print(f"  {len(rows)} rows ({len(replay)} replay), all bitwise; worst reshard {worst:.2f}% (< 5%)")'
    else
        echo "  (python3 unavailable; elastic gates not enforced)"
    fi

    timing_summary
    echo "==> fault gauntlet: green"
    exit 0
fi

if [[ "${1:-}" == "conformance" ]]; then
    stage "conformance: build"
    cargo build --release -q -p cloudtrain-cli
    cargo build --release -q -p cloudtrain-bench --bin conformance_snapshot

    stage "conformance: cloudtrain conformance --deny twice, require byte-identical reports"
    conf_a=$(mktemp)
    conf_b=$(mktemp)
    trap 'rm -f "$conf_a" "$conf_b" "$conf_a.jsonl" "$conf_b.jsonl"' EXIT
    ./target/release/cloudtrain conformance --deny --out "$conf_a.jsonl" > "$conf_a"
    ./target/release/cloudtrain conformance --deny --out "$conf_b.jsonl" > "$conf_b"
    cmp "$conf_a" "$conf_b"
    cmp "$conf_a.jsonl" "$conf_b.jsonl"
    cat "$conf_a"

    stage "conformance: snapshot twice, require byte-identical JSONL"
    snap_a=$(mktemp)
    snap_b=$(mktemp)
    trap 'rm -f "$conf_a" "$conf_b" "$conf_a.jsonl" "$conf_b.jsonl" \
        "$snap_a" "$snap_b" "$snap_a.jsonl" "$snap_b.jsonl"' EXIT
    ./target/release/conformance_snapshot > "$snap_a"
    ./target/release/conformance_snapshot > "$snap_b"
    sed -n '/^CONFORMANCE-BEGIN$/,/^CONFORMANCE-END$/p' "$snap_a" > "$snap_a.jsonl"
    sed -n '/^CONFORMANCE-BEGIN$/,/^CONFORMANCE-END$/p' "$snap_b" > "$snap_b.jsonl"
    cmp "$snap_a.jsonl" "$snap_b.jsonl"

    stage "conformance: snapshot BENCH_conformance.json"
    grep '^JSON conformance_snapshot ' "$snap_a" | sed 's/^JSON conformance_snapshot //' \
        > BENCH_conformance.json
    python3 -c 'import json; s=json.load(open("BENCH_conformance.json")); \
assert s["divergences"] == 0 and s["coverage_missing"] == 0, s; \
print("  {} cases, {} checks, fnv1a {}".format(s["cases"], s["checks"], s["jsonl_fnv1a"]))' 2>/dev/null \
        || echo "  (python3 unavailable; snapshot written unvalidated)"

    timing_summary
    echo "==> conformance: green"
    exit 0
fi

run_lint_gate

stage "cargo fmt --check"
cargo fmt --all -- --check

stage "cargo build (no default features)"
cargo build --workspace -q --no-default-features

stage "cargo clippy (default features)"
cargo clippy --workspace --all-targets -- -D warnings

stage "cargo clippy (parallel kernels)"
cargo clippy --workspace --all-targets --features cloudtrain-tensor/parallel -- -D warnings

stage "cargo clippy (simd lane tier)"
cargo clippy --workspace --all-targets --features cloudtrain/simd -- -D warnings

stage "cargo clippy (simd + parallel)"
cargo clippy --workspace --all-targets \
    --features cloudtrain/simd,cloudtrain-tensor/parallel -- -D warnings

stage "cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

stage "cargo test --doc"
cargo test --workspace --doc -q

stage "cargo test (default features)"
cargo test --workspace -q

stage "cargo test (parallel kernels)"
cargo test --workspace -q --features cloudtrain-tensor/parallel

stage "cargo test (simd lane tier)"
cargo test --workspace -q --features cloudtrain/simd

stage "cargo test (simd + parallel)"
cargo test --workspace -q --features cloudtrain/simd,cloudtrain-tensor/parallel

timing_summary
echo "==> ci.sh: all green"
