#!/usr/bin/env bash
# CI entry point: format check, lints, docs, and the full test suite with
# the parallel kernel tier both off (default) and on.
#
# Usage:
#   scripts/ci.sh            # fmt + clippy + docs + tests + cloudtrain lint
#   scripts/ci.sh lint       # cloudtrain lint only: runs the analyzer twice
#                            # with --deny and requires both the table and
#                            # the JSONL report to be byte-identical
#   scripts/ci.sh gauntlet   # deterministic fault gauntlet (8 seeds x
#                            # {drops, spikes, stragglers}); runs the
#                            # harness twice and requires byte-identical
#                            # output, then snapshots BENCH_faults.json;
#                            # then the observability snapshot, held to
#                            # the same twice-run byte-identical bar, and
#                            # snapshots BENCH_obs.json; then the e2e
#                            # steps/sec snapshot: scalar build run twice
#                            # (byte-identical fingerprints), simd build
#                            # compared against it (fingerprints must
#                            # match the scalar tier's bit for bit), and
#                            # the >= 1.5x headline speedup ceiling
#                            # enforced on BENCH_e2e.json
#   scripts/ci.sh conformance # conformance harness over the shipped seed
#                            # corpus: `cloudtrain conformance --deny` run
#                            # twice (table + JSONL byte-compared), then
#                            # the snapshot binary run twice the same way,
#                            # and snapshots BENCH_conformance.json
set -euo pipefail
cd "$(dirname "$0")/.."

run_lint_gate() {
    echo "==> cloudtrain lint: build"
    cargo build --release -q -p cloudtrain-cli

    echo "==> cloudtrain lint: run twice with --deny, require byte-identical reports"
    lint_a=$(mktemp)
    lint_b=$(mktemp)
    trap 'rm -f "$lint_a" "$lint_b" "$lint_a.jsonl" "$lint_b.jsonl"' EXIT
    ./target/release/cloudtrain lint --root . --out "$lint_a.jsonl" --deny > "$lint_a"
    ./target/release/cloudtrain lint --root . --out "$lint_b.jsonl" --deny > "$lint_b"
    cmp "$lint_a" "$lint_b"
    cmp "$lint_a.jsonl" "$lint_b.jsonl"
    cat "$lint_a"
}

if [[ "${1:-}" == "lint" ]]; then
    run_lint_gate
    echo "==> cloudtrain lint: green"
    exit 0
fi

if [[ "${1:-}" == "gauntlet" ]]; then
    echo "==> fault gauntlet: build"
    cargo build --release -q -p cloudtrain-bench --bin fault_gauntlet

    echo "==> fault gauntlet: run twice, require byte-identical output"
    out_a=$(mktemp)
    out_b=$(mktemp)
    trap 'rm -f "$out_a" "$out_b"' EXIT
    ./target/release/fault_gauntlet > "$out_a"
    ./target/release/fault_gauntlet > "$out_b"
    cmp "$out_a" "$out_b"

    echo "==> fault gauntlet: snapshot BENCH_faults.json"
    grep '^JSON fault_gauntlet ' "$out_a" | sed 's/^JSON fault_gauntlet //' \
        > BENCH_faults.json
    python3 -c 'import json,sys; rows=json.load(open("BENCH_faults.json")); \
print(f"  {len(rows)} gauntlet rows")' 2>/dev/null \
        || echo "  (python3 unavailable; snapshot written unvalidated)"

    echo "==> obs snapshot: build"
    cargo build --release -q -p cloudtrain-bench --bin obs_snapshot

    echo "==> obs snapshot: run twice, require byte-identical JSONL"
    obs_a=$(mktemp)
    obs_b=$(mktemp)
    trap 'rm -f "$out_a" "$out_b" "$obs_a" "$obs_b"' EXIT
    ./target/release/obs_snapshot > "$obs_a"
    ./target/release/obs_snapshot > "$obs_b"
    sed -n '/^OBS-BEGIN$/,/^OBS-END$/p' "$obs_a" > "$obs_a.jsonl"
    sed -n '/^OBS-BEGIN$/,/^OBS-END$/p' "$obs_b" > "$obs_b.jsonl"
    trap 'rm -f "$out_a" "$out_b" "$obs_a" "$obs_b" "$obs_a.jsonl" "$obs_b.jsonl"' EXIT
    cmp "$obs_a.jsonl" "$obs_b.jsonl"

    echo "==> obs snapshot: snapshot BENCH_obs.json"
    grep '^JSON obs_snapshot ' "$obs_a" | sed 's/^JSON obs_snapshot //' \
        > BENCH_obs.json
    python3 -c 'import json; s=json.load(open("BENCH_obs.json")); \
print("  {} trace lines, fnv1a {}".format(s["jsonl_lines"], s["jsonl_fnv1a"]))' 2>/dev/null \
        || echo "  (python3 unavailable; snapshot written unvalidated)"

    echo "==> e2e snapshot: build (scalar lane tier)"
    cargo build --release -q -p cloudtrain-bench --bin e2e_snapshot

    echo "==> e2e snapshot: scalar run twice, require byte-identical fingerprints"
    e2e_a=$(mktemp)
    e2e_b=$(mktemp)
    trap 'rm -f "$out_a" "$out_b" "$obs_a" "$obs_b" "$obs_a.jsonl" "$obs_b.jsonl" \
        "$e2e_a" "$e2e_b" "$e2e_a.json" "$e2e_b.json" "$e2e_a.fp" "$e2e_b.fp" \
        "$e2e_a.simd" "$e2e_a.simdfp"' EXIT
    ./target/release/e2e_snapshot "$e2e_a.json" > "$e2e_a"
    ./target/release/e2e_snapshot "$e2e_b.json" > "$e2e_b"
    sed -n '/^E2E-BEGIN$/,/^E2E-END$/p' "$e2e_a" > "$e2e_a.fp"
    sed -n '/^E2E-BEGIN$/,/^E2E-END$/p' "$e2e_b" > "$e2e_b.fp"
    cmp "$e2e_a.fp" "$e2e_b.fp"

    echo "==> e2e snapshot: build (simd lane tier)"
    cargo build --release -q -p cloudtrain-bench --features simd --bin e2e_snapshot

    echo "==> e2e snapshot: simd vs scalar baseline -> BENCH_e2e.json"
    ./target/release/e2e_snapshot BENCH_e2e.json "$e2e_a.json" > "$e2e_a.simd"
    sed -n '/^E2E-BEGIN$/,/^E2E-END$/p' "$e2e_a.simd" > "$e2e_a.simdfp"
    # The lane tiers must agree bit for bit on everything but the tier tag.
    cmp <(grep -v '^lane_tier=' "$e2e_a.fp") <(grep -v '^lane_tier=' "$e2e_a.simdfp")
    grep -E 'speedup|E2E' "$e2e_a.simd" | grep -v '^E2E-' || true

    echo "==> e2e snapshot: enforce the 1.5x steps/sec ceiling"
    if command -v python3 >/dev/null 2>&1; then
        python3 -c 'import json
s = json.load(open("BENCH_e2e.json"))
assert s["lane_tier"] == "simd" and s["baseline_lane_tier"] == "scalar", s
speedup = s["speedup_vs_baseline"]
assert speedup >= 1.5, f"headline speedup {speedup:.2f}x below the 1.5x ceiling"
print(f"  headline speedup {speedup:.2f}x (ceiling 1.5x)")'
    else
        echo "  (python3 unavailable; ceiling not enforced)"
    fi

    echo "==> fault gauntlet: green"
    exit 0
fi

if [[ "${1:-}" == "conformance" ]]; then
    echo "==> conformance: build"
    cargo build --release -q -p cloudtrain-cli
    cargo build --release -q -p cloudtrain-bench --bin conformance_snapshot

    echo "==> conformance: cloudtrain conformance --deny twice, require byte-identical reports"
    conf_a=$(mktemp)
    conf_b=$(mktemp)
    trap 'rm -f "$conf_a" "$conf_b" "$conf_a.jsonl" "$conf_b.jsonl"' EXIT
    ./target/release/cloudtrain conformance --deny --out "$conf_a.jsonl" > "$conf_a"
    ./target/release/cloudtrain conformance --deny --out "$conf_b.jsonl" > "$conf_b"
    cmp "$conf_a" "$conf_b"
    cmp "$conf_a.jsonl" "$conf_b.jsonl"
    cat "$conf_a"

    echo "==> conformance: snapshot twice, require byte-identical JSONL"
    snap_a=$(mktemp)
    snap_b=$(mktemp)
    trap 'rm -f "$conf_a" "$conf_b" "$conf_a.jsonl" "$conf_b.jsonl" \
        "$snap_a" "$snap_b" "$snap_a.jsonl" "$snap_b.jsonl"' EXIT
    ./target/release/conformance_snapshot > "$snap_a"
    ./target/release/conformance_snapshot > "$snap_b"
    sed -n '/^CONFORMANCE-BEGIN$/,/^CONFORMANCE-END$/p' "$snap_a" > "$snap_a.jsonl"
    sed -n '/^CONFORMANCE-BEGIN$/,/^CONFORMANCE-END$/p' "$snap_b" > "$snap_b.jsonl"
    cmp "$snap_a.jsonl" "$snap_b.jsonl"

    echo "==> conformance: snapshot BENCH_conformance.json"
    grep '^JSON conformance_snapshot ' "$snap_a" | sed 's/^JSON conformance_snapshot //' \
        > BENCH_conformance.json
    python3 -c 'import json; s=json.load(open("BENCH_conformance.json")); \
assert s["divergences"] == 0 and s["coverage_missing"] == 0, s; \
print("  {} cases, {} checks, fnv1a {}".format(s["cases"], s["checks"], s["jsonl_fnv1a"]))' 2>/dev/null \
        || echo "  (python3 unavailable; snapshot written unvalidated)"

    echo "==> conformance: green"
    exit 0
fi

run_lint_gate

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (default features)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (parallel kernels)"
cargo clippy --workspace --all-targets --features cloudtrain-tensor/parallel -- -D warnings

echo "==> cargo clippy (simd lane tier)"
cargo clippy --workspace --all-targets --features cloudtrain/simd -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo test --doc"
cargo test --workspace --doc -q

echo "==> cargo test (default features)"
cargo test --workspace -q

echo "==> cargo test (parallel kernels)"
cargo test --workspace -q --features cloudtrain-tensor/parallel

echo "==> cargo test (simd lane tier)"
cargo test --workspace -q --features cloudtrain/simd

echo "==> ci.sh: all green"
