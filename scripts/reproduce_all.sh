#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus all ablations.
# Output goes to stdout; machine-readable `JSON <experiment> {...}` lines
# are interleaved (grep '^JSON' to collect them).
#
# Usage: scripts/reproduce_all.sh [--fast]
#   --fast skips the real-training harnesses (fig10, table2, the
#   convergence ablations), which dominate the runtime.

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run() {
    echo
    echo "================================================================"
    echo ">>> $1"
    echo "================================================================"
    cargo run --release -q -p cloudtrain-bench --bin "$1"
}

cargo build --release -q -p cloudtrain-bench

# Performance-plane harnesses (seconds each).
run fig1_breakdown
run fig6_topk
run fig7_aggregation
run fig8_hitopk_breakdown
run fig9_datacache
run table3_throughput
run table4_resolutions
run table5_dawnbench
run ablation_mstopk_n
run ablation_pto
run ablation_stragglers
run ablation_tuner
run ablation_fusion
run fault_gauntlet

# Convergence-plane harnesses (minutes: real distributed training).
if [[ "$FAST" -eq 0 ]]; then
    run fig10_convergence
    run table2_validation
    run ablation_density
    run ablation_compressors
    run dawnbench_convergence
fi

echo
echo "all harnesses completed"
