//! Minimal in-repo stand-in for the `bytes` crate: a cheaply cloneable
//! immutable byte buffer ([`Bytes`]), a growable builder ([`BytesMut`]) and
//! the [`BufMut`] write trait — only the surface this workspace uses.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer (reference-counted).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Wraps a static byte slice (copies it into a shared buffer; the real
    /// crate borrows, but callers only rely on value semantics).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Write-side extension trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(7);
        b.put_u8(0xAB);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 5);
        assert_eq!(&frozen[..4], &7u32.to_le_bytes());
        assert_eq!(frozen[4], 0xAB);
    }

    #[test]
    fn value_equality_and_clone() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(a, b);
        let c = a.clone();
        assert_eq!(c[1], 2);
    }
}
