//! Derive macros for the in-repo `serde` shim.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input item is
//! parsed directly from the `proc_macro` token stream, and the generated
//! impls are built as strings and re-parsed. Supported item shapes — the only
//! ones this workspace derives on:
//!
//! * structs with named fields,
//! * enums whose variants are unit or struct-like (named fields).
//!
//! Anything else (tuple structs, generics, tuple variants) panics at compile
//! time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree construction).
///
/// The `serde` helper attribute is accepted (so items can carry
/// `#[serde(default)]` for the Deserialize derive) and ignored here.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (value-tree destructuring).
///
/// Fields marked `#[serde(default)]` fall back to `Default::default()`
/// when the serialized object lacks them — the only helper-attribute
/// behaviour this shim implements.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

/// One named field: its name and whether `#[serde(default)]` marks it.
type Field = (String, bool);

enum Body {
    /// Struct with named fields.
    Struct(Vec<Field>),
    /// Enum: (variant name, None for unit | Some(fields) for struct variant).
    Enum(Vec<(String, Option<Vec<Field>>)>),
}

struct Item {
    name: String,
    body: Body,
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (including doc comments) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (deriving on `{name}`)");
        }
    }
    let body_group = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!(
            "serde shim derive: `{name}` must have a braced body (tuple/unit items unsupported), got {other:?}"
        ),
    };

    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_named_fields(body_group.stream())),
        "enum" => Body::Enum(parse_variants(body_group.stream())),
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    Item { name, body }
}

/// Parses `{ attr* vis? name : type , ... }` into the field list,
/// noting which fields carry `#[serde(default)]`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name, remembering
        // whether one of the attributes was `#[serde(default)]`.
        let mut has_default = false;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.next() {
                        has_default |= is_serde_default(&g);
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(field) = tree else {
            panic!("serde shim derive: expected field name, got {tree:?}");
        };
        fields.push((field.to_string(), has_default));
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field, got {other:?}"),
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tree in tokens.by_ref() {
            match &tree {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Returns whether the attribute group (the `[...]` after `#`) is
/// `[serde(default)]`.
fn is_serde_default(g: &proc_macro::Group) -> bool {
    let mut tokens = g.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Parses enum variants: `attr* Name` optionally followed by `{ fields }`.
fn parse_variants(stream: TokenStream) -> Vec<(String, Option<Vec<Field>>)> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(variant) = tree else {
            panic!("serde shim derive: expected variant name, got {tree:?}");
        };
        let name = variant.to_string();
        let mut fields = None;
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let TokenTree::Group(g) = tokens.next().unwrap() else {
                    unreachable!()
                };
                fields = Some(parse_named_fields(g.stream()));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive: tuple variant `{name}` is not supported");
            }
            _ => {}
        }
        variants.push((name, fields));
        // Optional trailing comma (and discriminants are unsupported anyway).
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
    }
    variants
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut pushes = String::new();
            for (f, _) in fields {
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(fields)"
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"
                    )),
                    Some(fs) => {
                        let bindings = fs
                            .iter()
                            .map(|(f, _)| f.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut pushes = String::new();
                        for (f, _) in fs {
                            pushes.push_str(&format!(
                                "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {bindings} }} => {{\n\
                             let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n{pushes}\
                             ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(fields))])\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn getter(has_default: bool) -> &'static str {
    if has_default {
        "::serde::from_field_or_default"
    } else {
        "::serde::from_field"
    }
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut inits = String::new();
            for (f, has_default) in fields {
                inits.push_str(&format!("{f}: {}(v, \"{f}\")?,\n", getter(*has_default)));
            }
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut struct_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    None => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                    )),
                    Some(fs) => {
                        let mut inits = String::new();
                        for (f, has_default) in fs {
                            inits.push_str(&format!(
                                "{f}: {}(inner, \"{f}\")?,\n",
                                getter(*has_default)
                            ));
                        }
                        struct_arms.push_str(&format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error(format!(\
                 \"unknown {name} variant `{{other}}`\"))),\n}},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n{struct_arms}\
                 other => ::std::result::Result::Err(::serde::Error(format!(\
                 \"unknown {name} variant `{{other}}`\"))),\n}}\n}},\n\
                 other => ::std::result::Result::Err(::serde::Error(format!(\
                 \"expected {name}, got {{other:?}}\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
