//! Minimal in-repo stand-in for `serde_json`: converts between JSON text and
//! the `serde` shim's [`Value`] tree. Supports exactly what the workspace
//! uses: [`to_string`] and [`from_str`].

#![forbid(unsafe_code)]

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes a value to compact JSON text.
///
/// # Errors
/// Returns [`Error`] for non-finite floats, which JSON cannot represent.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parses JSON text into a value of type `T`.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_value(&value)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {f}")));
            }
            // Rust's float Display is shortest-roundtrip; ensure a decimal
            // point or exponent so the token re-parses as a float.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            // Surrogate pairs are not needed by this workspace;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8 in string".to_string()))?;
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number bytes".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::I64(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::U64(n))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert!(from_str::<bool>(" true ").unwrap());
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("42 x").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }
}
