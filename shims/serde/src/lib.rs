//! Minimal in-repo stand-in for `serde`.
//!
//! Instead of serde's visitor-based zero-copy architecture, this shim uses a
//! self-describing [`Value`] tree: types serialize *into* a `Value` and
//! deserialize *from* one. `serde_json` (also shimmed) converts between
//! `Value` and JSON text. The derive macros ([`Serialize`]/[`Deserialize`],
//! re-exported from `serde_derive`) generate field-by-field conversions for
//! structs with named fields and for enums with unit or struct variants —
//! exactly the shapes this workspace uses.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Ordered key-value map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Builds the value-tree representation.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds the type from its value-tree representation.
    ///
    /// # Errors
    /// Returns [`Error`] when the value shape does not match the type.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up `name` in an object value and deserializes it — the helper the
/// derive macros call for every struct field.
///
/// # Errors
/// Returns [`Error`] if `v` is not an object, the field is missing, or the
/// field fails to deserialize.
pub fn from_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Object(entries) => entries
            .iter()
            .find(|(k, _)| k == name)
            .ok_or_else(|| Error(format!("missing field `{name}`")))
            .and_then(|(_, fv)| T::from_value(fv)),
        other => Err(Error(format!(
            "expected object with field `{name}`, got {other:?}"
        ))),
    }
}

/// Like [`from_field`], but a missing field yields `T::default()` — the
/// backing of `#[serde(default)]`, so configs serialized before a field
/// existed keep deserializing.
pub fn from_field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Object(entries) => entries
            .iter()
            .find(|(k, _)| k == name)
            .map_or_else(|| Ok(T::default()), |(_, fv)| T::from_value(fv)),
        other => Err(Error(format!(
            "expected object with field `{name}`, got {other:?}"
        ))),
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(clippy::cast_lossless)]
                if (*self as i128) >= 0 && (*self as i128) <= i64::MAX as i128 {
                    Value::I64(*self as i64)
                } else if (*self as i128) > 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range"))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range"))),
                    other => Err(Error(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            other => Err(Error(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string to satisfy the `'static` lifetime. Intended
    /// for small report/leaderboard tables only.
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*s.leak())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()),
            Ok(vec![1, 2])
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn from_field_reports_missing() {
        let obj = Value::Object(vec![("a".to_string(), Value::I64(1))]);
        assert_eq!(from_field::<i64>(&obj, "a"), Ok(1));
        assert!(from_field::<i64>(&obj, "b").is_err());
    }
}
