//! Minimal in-repo stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `Throughput`,
//! `sample_size`, the `criterion_group!`/`criterion_main!` macros) with a
//! simple wall-clock measurement loop: a short calibration pass sizes the
//! iteration batch, then the median over `sample_size` samples is reported
//! as ns/iter on stdout. No statistical analysis, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock duration of a single measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// Top-level harness handle; created by `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// How to express throughput for a benchmark's reported time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and an input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }
}

/// A named set of benchmarks sharing sample-count and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of measurement samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the throughput used when reporting rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no explicit input parameter.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.report(id, &bencher);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.report(&id.id, &bencher);
        self
    }

    /// Ends the group (reporting already happened per-benchmark).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let ns = bencher.median_ns();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{}/{id}: {ns:.0} ns/iter{rate}", self.name);
    }
}

/// Measures closures: calibrates a batch size, then times samples.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    sample_ns: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            sample_ns: Vec::new(),
        }
    }

    /// Times `f`, storing per-iteration nanoseconds for each sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: how many iterations fit in one sample window?
        let start = Instant::now();
        let mut calib_iters = 0u64;
        while start.elapsed() < SAMPLE_TARGET / 4 && calib_iters < 1_000_000 {
            std::hint::black_box(f());
            calib_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / calib_iters as f64;
        let batch = ((SAMPLE_TARGET.as_secs_f64() / per_iter) as u64).clamp(1, 10_000_000);

        self.sample_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let total = t0.elapsed().as_secs_f64();
            self.sample_ns.push(total * 1e9 / batch as f64);
        }
    }

    fn median_ns(&self) -> f64 {
        if self.sample_ns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.sample_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted[sorted.len() / 2]
    }
}

/// Declares a function that runs the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(16));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
