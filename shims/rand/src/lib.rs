//! Minimal in-repo stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! exact API surface the workspace uses: a seedable deterministic [`rngs::StdRng`],
//! the [`SeedableRng`] constructor trait, and the [`RngExt`] extension trait
//! with `random::<T>()` and `random_range(..)`.
//!
//! The generator is SplitMix64 feeding a xorshift-style finaliser — fast,
//! small-state, and statistically solid for test/benchmark workloads. It is
//! NOT the upstream `StdRng` stream; determinism within this repo is the only
//! contract (every consumer seeds explicitly and compares against outputs
//! produced by this same generator).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed, expanding it into the full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core entropy source: a stream of 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic 64-bit PRNG (SplitMix64).
    ///
    /// One `u64` of state; each step adds the Weyl constant and applies a
    /// 64-bit avalanche finaliser. Passes BigCrush-level statistics for the
    /// scales used here and is trivially reproducible.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix the seed once so small seeds (0, 1, 2...) do not start
            // in nearby states.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types that can be sampled uniformly from an RNG's bit stream.
pub trait FromRng: Sized {
    /// Draws one uniform sample.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

macro_rules! impl_from_rng_cast {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_from_rng_cast!(u8, u16, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl FromRng for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased-enough integer sampling in `[0, n)` via 128-bit widening multiply
/// (Lemire's method without the rejection step; bias is < 2^-64 per draw).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return <$t as FromRng>::from_rng(rng);
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // Work in the unsigned domain; two's-complement wrapping adds
                // the offset back correctly even across zero.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(below(rng, span) as $u as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    return <$t as FromRng>::from_rng(rng);
                }
                lo.wrapping_add(below(rng, span + 1) as $u as $t)
            }
        }
    )*};
}

impl_signed_range!((i8, u8), (i16, u16), (i32, u32), (i64, u64), (isize, usize));

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as FromRng>::from_rng(rng);
                let v = self.start + u * (self.end - self.start);
                // Floating-point rounding can land exactly on `end`; fold it
                // back to keep the half-open contract.
                if v < self.end { v } else { self.end.next_down() }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

impl FromRng for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Extension methods available on every [`RngCore`] (mirrors rand's `Rng`).
pub trait RngExt: RngCore {
    /// Draws a uniform sample of type `T`.
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws a uniform sample from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f32 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.random();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.random_range(-1.5f32..0.25);
            assert!((-1.5..0.25).contains(&f));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..=5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
