//! Minimal in-repo stand-in for `crossbeam` — just the `channel` module, with
//! multi-producer multi-consumer semantics (both [`channel::Sender`] and
//! [`channel::Receiver`] are `Clone`), built on a mutex-guarded deque with
//! condition variables.

#![forbid(unsafe_code)]

/// MPMC channels (`unbounded` / `bounded`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent value is returned inside.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while a bounded channel is full.
        ///
        /// # Errors
        /// Returns [`SendError`] carrying the value if every receiver has
        /// been dropped.
        ///
        /// # Panics
        /// Panics if the channel mutex was poisoned by a panicking peer.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match state.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.inner.not_full.wait(state).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a value, blocking while the channel is empty.
        ///
        /// # Errors
        /// Returns [`RecvError`] once the channel is empty and every sender
        /// has been dropped.
        ///
        /// # Panics
        /// Panics if the channel mutex was poisoned by a panicking peer.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).expect("channel poisoned");
            }
        }

        /// Receives a value if one is immediately available.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] if the channel has no queued value,
        /// [`TryRecvError::Disconnected`] if additionally all senders are
        /// gone.
        ///
        /// # Panics
        /// Panics if the channel mutex was poisoned by a panicking peer.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").senders += 1;
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").receivers += 1;
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            state.senders -= 1;
            let wake = state.senders == 0;
            drop(state);
            if wake {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            state.receivers -= 1;
            let wake = state.receivers == 0;
            drop(state);
            if wake {
                self.inner.not_full.notify_all();
            }
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Creates a channel with no capacity limit.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a channel that holds at most `cap` queued values.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
    }

    #[test]
    fn disconnects_propagate() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
        let (tx, rx) = channel::unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = channel::bounded(2);
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn receiver_clone_shares_queue() {
        let (tx, rx) = channel::unbounded();
        let rx2 = rx.clone();
        tx.send(5).unwrap();
        assert_eq!(rx2.recv(), Ok(5));
    }
}
