//! Minimal in-repo stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! range strategies over integers and floats, [`prop::collection::vec`],
//! [`any`], tuple strategies, and the `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! its inputs printed), and cases are generated from a fixed per-test seed so
//! every run is deterministic. `.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Runner configuration: how many random cases each property executes.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of a given type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.start..self.end)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.start..self.end)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.start..self.end)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<bool>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full range of values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        marker: std::marker::PhantomData,
    }
}

/// Combinator namespace mirrored from real proptest (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{StdRng, Strategy};
        use rand::RngExt;
        use std::ops::Range;

        /// Strategy producing `Vec`s with lengths drawn from `sizes` and
        /// elements drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            sizes: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let len = rng.random_range(self.sizes.start..self.sizes.end);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Builds a [`VecStrategy`].
        pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, sizes }
        }
    }
}

/// Drives one property: owns the RNG and draws case inputs.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner whose RNG is seeded from the property's name, so
    /// every run generates the same case sequence.
    #[must_use]
    pub fn new_for(test_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one value from a strategy.
    pub fn draw<S: Strategy>(&mut self, strategy: &S) -> S::Value {
        strategy.generate(&mut self.rng)
    }
}

/// Everything a property-test module needs, mirroring proptest's prelude.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Real proptest rejects the case and draws a replacement (with a global
/// rejection cap); this shim simply moves on to the next case, so heavy
/// filtering thins the effective case count instead of erroring. Only
/// valid inside a [`proptest!`] body (it expands to `continue` targeting
/// the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a condition inside a property, with optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property, with optional format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property, with optional format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $pat = runner.draw(&$strategy);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut runner = crate::TestRunner::new_for("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = runner.draw(&(3usize..17));
            assert!((3..17).contains(&v));
            let f = runner.draw(&(-2.0f32..5.0));
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut runner = crate::TestRunner::new_for("vec_strategy_respects_sizes");
        for _ in 0..200 {
            let v = runner.draw(&prop::collection::vec((0u64..20, any::<bool>()), 1..100));
            assert!((1..100).contains(&v.len()));
            assert!(v.iter().all(|(n, _)| *n < 20));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself works end to end.
        #[test]
        fn macro_roundtrip(a in 0usize..10, flag in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(flag as usize <= 1, true);
        }
    }
}
